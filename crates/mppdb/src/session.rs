//! Client sessions: the JDBC-connection analog.
//!
//! A session is pinned to one cluster node — exactly like a JDBC
//! connection to one host — which is what makes the connector's
//! locality story meaningful: a task that connects to node `n` and asks
//! only for node-`n`-local hash ranges induces no internal shuffle.

use std::sync::Arc;

use common::Row;

use crate::cluster::Cluster;
use crate::copy::{run_copy, CopyOptions, CopyResult, CopySource};
use crate::error::{DbError, DbResult};
use crate::query::{execute_table_scan, resolve_epoch, ExecCtx, QueryResult, QuerySpec};
use crate::sql::exec::{execute_statement, SqlResult};
use crate::sql::parser::parse_statement;
use crate::txn::TxnHandle;
use netsim::record::NodeRef;

/// An open client session against one node.
pub struct Session {
    cluster: Arc<Cluster>,
    node: usize,
    /// The node's kill generation when this session connected. If the
    /// node dies (even if it is later restored) the generation moves on
    /// and every subsequent operation here fails with
    /// [`DbError::ConnectionLost`] — a dead TCP connection does not
    /// come back just because the server did.
    generation: u64,
    pub(crate) txn: Option<TxnHandle>,
    task_tag: Option<u64>,
    pool: String,
    /// Parent for the session's `db.copy` / `db.query` spans; NONE (the
    /// default) keeps the session untraced.
    trace: obs::TraceCtx,
}

impl Session {
    pub(crate) fn new(cluster: Arc<Cluster>, node: usize) -> Session {
        let generation = cluster.node_generation(node);
        Session {
            cluster,
            node,
            generation,
            txn: None,
            task_tag: None,
            pool: "general".to_string(),
            trace: obs::TraceCtx::NONE,
        }
    }

    /// Fail with `ConnectionLost` if the pinned node died since connect.
    fn ensure_connected(&self) -> DbResult<()> {
        if !self.cluster.is_node_up(self.node)
            || self.cluster.node_generation(self.node) != self.generation
        {
            return Err(DbError::ConnectionLost { node: self.node });
        }
        Ok(())
    }

    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    pub fn node(&self) -> usize {
        self.node
    }

    /// Attribute subsequent recorded work to a logical task (partition).
    pub fn set_task_tag(&mut self, tag: Option<u64>) {
        self.task_tag = tag;
    }

    pub fn task_tag(&self) -> Option<u64> {
        self.task_tag
    }

    /// Parent subsequent `db.copy` / `db.query` spans under `trace`
    /// (the caller's current span). [`obs::TraceCtx::NONE`] disables.
    pub fn set_trace(&mut self, trace: obs::TraceCtx) {
        self.trace = trace;
    }

    /// Switch the session's resource pool (must exist).
    pub fn set_resource_pool(&mut self, name: &str) -> DbResult<()> {
        if self.cluster.resource_pool(name).is_none() {
            return Err(DbError::Execution(format!("no such resource pool: {name}")));
        }
        self.pool = name.to_string();
        Ok(())
    }

    pub fn resource_pool_name(&self) -> &str {
        &self.pool
    }

    // ----- transactions ---------------------------------------------

    pub fn in_txn(&self) -> bool {
        self.txn.is_some()
    }

    pub fn begin(&mut self) -> DbResult<()> {
        self.ensure_connected()?;
        if self.txn.is_some() {
            return Err(DbError::TxnState("transaction already open".into()));
        }
        self.txn = Some(self.cluster.begin_txn());
        Ok(())
    }

    /// Commit the open transaction, returning its commit epoch.
    pub fn commit(&mut self) -> DbResult<u64> {
        // Liveness first: if the node is gone, leave the transaction in
        // place so Drop aborts it, exactly as the server's session reaper
        // would.
        self.ensure_connected()?;
        let txn = self
            .txn
            .take()
            .ok_or_else(|| DbError::TxnState("no open transaction".into()))?;
        self.record_commit(!txn.touched.is_empty());
        let epoch = self.cluster.commit_txn(txn);
        if self
            .cluster
            .faults()
            .should_fire(crate::fault::FaultSite::PostCommit, self.node)
        {
            // The commit landed; only the acknowledgement is lost
            // (Sec. 2.2.2's indistinguishable-outcome hazard).
            return Err(DbError::ConnectionLost { node: self.node });
        }
        Ok(epoch)
    }

    /// Commits serialize on the engine's global commit/epoch path; the
    /// cost model charges each writing commit against that shared
    /// resource.
    fn record_commit(&self, wrote: bool) {
        if wrote {
            self.cluster
                .recorder()
                .work(self.task_tag, NodeRef::Db(self.node), "db_commit", 1, 0);
        }
    }

    pub fn rollback(&mut self) -> DbResult<()> {
        let txn = self
            .txn
            .take()
            .ok_or_else(|| DbError::TxnState("no open transaction".into()))?;
        self.cluster.abort_txn(txn);
        Ok(())
    }

    /// Run `op` inside the open transaction or an auto-commit one. On
    /// error in auto-commit mode the implicit transaction is aborted.
    pub(crate) fn with_txn<T>(
        &mut self,
        op: impl FnOnce(&Cluster, &mut TxnHandle, usize, Option<u64>) -> DbResult<T>,
    ) -> DbResult<T> {
        self.ensure_connected()?;
        let node = self.node;
        let tag = self.task_tag;
        if let Some(txn) = self.txn.as_mut() {
            return op(&self.cluster, txn, node, tag);
        }
        let mut txn = self.cluster.begin_txn();
        match op(&self.cluster, &mut txn, node, tag) {
            Ok(v) => {
                self.record_commit(!txn.touched.is_empty());
                self.cluster.commit_txn(txn);
                if self
                    .cluster
                    .faults()
                    .should_fire(crate::fault::FaultSite::PostCommit, node)
                {
                    return Err(DbError::ConnectionLost { node });
                }
                Ok(v)
            }
            Err(e) => {
                self.cluster.abort_txn(txn);
                Err(e)
            }
        }
    }

    // ----- data operations -------------------------------------------

    /// Insert rows (routed by segmentation, replicated per k-safety).
    pub fn insert(&mut self, table: &str, rows: Vec<Row>) -> DbResult<u64> {
        self.with_txn(|cluster, txn, node, tag| {
            cluster.insert_rows(txn, node, tag, table, rows, false)
        })
    }

    /// Bulk load (the COPY utility).
    pub fn copy(
        &mut self,
        table: &str,
        source: CopySource,
        options: CopyOptions,
    ) -> DbResult<CopyResult> {
        let span = obs::global().span_start("db.copy", self.trace);
        let node = self.node;
        let result = self.with_txn(|cluster, txn, node, tag| {
            run_copy(cluster, txn, node, tag, table, source, &options)
        });
        obs::global().span_finish(span, |s| {
            s.node = Some(node as u64);
            match &result {
                Ok(copy) => {
                    s.rows = copy.loaded;
                    s.detail = format!("COPY {table} ({} rejected)", copy.rejected);
                }
                Err(e) => {
                    s.failed = true;
                    s.detail = format!("COPY {table}: {e}");
                }
            }
        });
        result
    }

    /// Execute a programmatic read. Outside a transaction this is a
    /// pure epoch-snapshot read and never blocks; inside one it takes
    /// the table lock for serializability and sees the transaction's
    /// own writes.
    pub fn query(&mut self, spec: &QuerySpec) -> DbResult<QueryResult> {
        self.query_inner(spec, false)
    }

    /// Execute a programmatic read, keeping table-scan results in
    /// columnar form ([`QueryResult::batch`]) instead of materializing
    /// rows. The connector uses this so rows only exist at the Spark
    /// partition boundary. Views and system tables still come back
    /// row-materialized.
    pub fn query_batched(&mut self, spec: &QuerySpec) -> DbResult<QueryResult> {
        self.query_inner(spec, true)
    }

    fn query_inner(&mut self, spec: &QuerySpec, want_batch: bool) -> DbResult<QueryResult> {
        let span = obs::global().span_start("db.query", self.trace);
        let node = self.node;
        let result = self.query_unspanned(spec, want_batch);
        obs::global().span_finish(span, |s| {
            s.node = Some(node as u64);
            match &result {
                Ok(r) => {
                    s.rows = r.num_rows() as u64;
                    s.detail = format!("scan {}", spec.table);
                }
                Err(e) => {
                    s.failed = true;
                    s.detail = format!("scan {}: {e}", spec.table);
                }
            }
        });
        result
    }

    fn query_unspanned(&mut self, spec: &QuerySpec, want_batch: bool) -> DbResult<QueryResult> {
        self.ensure_connected()?;
        let _admission = match self.cluster.resource_pool(&self.pool) {
            Some(pool) => Some(pool.try_admit()?),
            None => None,
        };
        self.cluster
            .faults()
            .apply_latency(crate::fault::LatencySite::Scan, self.node);
        // System tables are read-only catalog views.
        if let Some((schema, rows)) = crate::system::scan_system_table(&self.cluster, &spec.table) {
            if spec.hash_range.is_some() {
                return Err(DbError::Execution(format!(
                    "hash ranges do not apply to system table {}",
                    spec.table
                )));
            }
            let epoch = self.resolve_epoch(spec.as_of_epoch)?;
            return crate::query::apply_spec_to_rows(schema, rows, spec, epoch);
        }
        // Views route through the SQL executor.
        let is_view = self.cluster.catalog.read().view(&spec.table).is_some();
        if is_view {
            return crate::sql::exec::execute_view_scan(self, spec);
        }
        let txn_id = if let Some(txn) = self.txn.as_mut() {
            self.cluster
                .lock_table(txn, &spec.table, crate::txn::LockMode::Exclusive)?;
            txn.touched.insert(crate::catalog::normalize(&spec.table));
            Some(txn.id)
        } else {
            None
        };
        // Per-segment scan fan-out is bounded by the session's resource
        // pool (its concurrency knob governs intra- as well as
        // inter-statement parallelism) and the host's core count.
        let parallelism = self
            .cluster
            .resource_pool(&self.pool)
            .map(|p| p.max_concurrency())
            .unwrap_or(1)
            .min(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            );
        let ctx = ExecCtx {
            cluster: &self.cluster,
            node: self.node,
            task: self.task_tag,
            txn: txn_id,
            parallelism,
        };
        execute_table_scan(ctx, spec, want_batch)
    }

    /// Parse and execute one SQL statement.
    pub fn execute(&mut self, sql: &str) -> DbResult<SqlResult> {
        self.ensure_connected()?;
        let stmt = parse_statement(sql)?;
        execute_statement(self, stmt)
    }

    /// The last committed epoch visible to this session.
    pub fn current_epoch(&self) -> u64 {
        self.cluster.current_epoch()
    }

    /// Validate an epoch request against the current epoch.
    pub fn resolve_epoch(&self, requested: Option<u64>) -> DbResult<u64> {
        resolve_epoch(&self.cluster, requested)
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // A dropped session aborts any open transaction — exactly what a
        // failed client (a killed Spark task) does to its connection.
        if let Some(txn) = self.txn.take() {
            self.cluster.abort_txn(txn);
        }
        self.cluster.close_session(self.node);
    }
}
