//! SQL abstract syntax trees.

use common::{DataType, Value};

/// Binary operators at the SQL level (superset of the shared expression
/// operators; lowering maps them 1:1).
pub use common::expr::BinaryOp;

/// A SQL scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprAst {
    Column {
        qualifier: Option<String>,
        name: String,
    },
    Literal(Value),
    Binary {
        left: Box<ExprAst>,
        op: BinaryOp,
        right: Box<ExprAst>,
    },
    Not(Box<ExprAst>),
    Neg(Box<ExprAst>),
    IsNull(Box<ExprAst>),
    IsNotNull(Box<ExprAst>),
    Like {
        expr: Box<ExprAst>,
        pattern: String,
    },
    /// Function call: an aggregate (COUNT/SUM/AVG/MIN/MAX), or a scalar
    /// UDx, optionally with `USING PARAMETERS k='v', ...`.
    FuncCall {
        name: String,
        args: Vec<ExprAst>,
        parameters: Vec<(String, Value)>,
    },
    /// `*` — only valid inside `COUNT(*)` or as a bare select item.
    Star,
}

impl ExprAst {
    pub fn col(name: impl Into<String>) -> ExprAst {
        ExprAst::Column {
            qualifier: None,
            name: name.into(),
        }
    }

    pub fn lit(v: impl Into<Value>) -> ExprAst {
        ExprAst::Literal(v.into())
    }

    /// Whether this expression (recursively) contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            ExprAst::FuncCall { name, args, .. } => {
                is_aggregate_name(name) || args.iter().any(|a| a.contains_aggregate())
            }
            ExprAst::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            ExprAst::Not(e) | ExprAst::Neg(e) | ExprAst::IsNull(e) | ExprAst::IsNotNull(e) => {
                e.contains_aggregate()
            }
            ExprAst::Like { expr, .. } => expr.contains_aggregate(),
            _ => false,
        }
    }
}

/// Names treated as built-in aggregates by the executor.
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(
        name.to_ascii_uppercase().as_str(),
        "COUNT" | "SUM" | "AVG" | "MIN" | "MAX"
    )
}

/// One item of a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// An expression with an optional alias.
    Expr {
        expr: ExprAst,
        alias: Option<String>,
    },
}

/// A table reference with an optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub table: String,
    pub alias: Option<String>,
}

/// An inner join.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub table: TableRef,
    pub on: ExprAst,
}

/// One ORDER BY key: an output column name or 1-based position, with
/// direction.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    pub key: OrderTarget,
    pub descending: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub enum OrderTarget {
    Column(String),
    Position(usize),
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub items: Vec<SelectItem>,
    pub from: Option<TableRef>,
    pub joins: Vec<Join>,
    pub predicate: Option<ExprAst>,
    pub group_by: Vec<ExprAst>,
    pub order_by: Vec<OrderKey>,
    /// `AT EPOCH n` — pin the read to a specific epoch; `AT EPOCH
    /// LATEST` / absent reads the last committed epoch.
    pub at_epoch: Option<u64>,
    pub limit: Option<u64>,
}

impl SelectStmt {
    /// `SELECT * FROM table` — convenience for tests and view setup.
    pub fn simple_scan(table: impl Into<String>) -> SelectStmt {
        SelectStmt {
            items: vec![SelectItem::Star],
            from: Some(TableRef {
                table: table.into(),
                alias: None,
            }),
            joins: Vec::new(),
            predicate: None,
            group_by: Vec::new(),
            order_by: Vec::new(),
            at_epoch: None,
            limit: None,
        }
    }
}

/// Column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub dtype: DataType,
    pub not_null: bool,
}

/// Segmentation clause of CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub enum SegmentationClause {
    /// Default: hash of all columns.
    Default,
    /// `SEGMENTED BY HASH(col, ...) ALL NODES`
    ByHash(Vec<String>),
    /// `UNSEGMENTED ALL NODES`
    Unsegmented,
}

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    CreateTable {
        name: String,
        columns: Vec<ColumnDef>,
        segmentation: SegmentationClause,
        if_not_exists: bool,
        temp: bool,
    },
    DropTable {
        name: String,
        if_exists: bool,
    },
    CreateView {
        name: String,
        select: SelectStmt,
    },
    DropView {
        name: String,
    },
    Insert {
        table: String,
        columns: Option<Vec<String>>,
        rows: Vec<Vec<ExprAst>>,
    },
    /// `INSERT INTO table SELECT ...`
    InsertSelect {
        table: String,
        select: SelectStmt,
    },
    Update {
        table: String,
        assignments: Vec<(String, ExprAst)>,
        predicate: Option<ExprAst>,
    },
    Delete {
        table: String,
        predicate: Option<ExprAst>,
    },
    Select(SelectStmt),
    /// `EXPLAIN SELECT ...` — describe the plan without executing it.
    Explain(SelectStmt),
    Begin,
    Commit,
    Rollback,
}
