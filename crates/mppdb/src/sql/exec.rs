//! SQL statement execution.

use common::expr::BinaryOp;
use common::{DataType, Expr, Field, Row, Schema, Value};
use netsim::record::NodeRef;

use crate::catalog::{Segmentation, TableDef};
use crate::error::{DbError, DbResult};
use crate::query::{QueryResult, QuerySpec};
use crate::session::Session;
use crate::sql::ast::{
    is_aggregate_name, ExprAst, OrderTarget, SegmentationClause, SelectItem, SelectStmt, Statement,
};
use crate::udf::UdfParams;

/// Result of executing one SQL statement.
#[derive(Debug, Clone)]
pub enum SqlResult {
    /// SELECT output.
    Rows(QueryResult),
    /// DML row count.
    Affected(u64),
    /// DDL / transaction control.
    Ok,
}

impl SqlResult {
    /// The rows of a SELECT result; errors for non-SELECT statements.
    pub fn rows(self) -> DbResult<QueryResult> {
        match self {
            SqlResult::Rows(r) => Ok(r),
            other => Err(DbError::Execution(format!(
                "statement did not produce rows: {other:?}"
            ))),
        }
    }

    pub fn affected(self) -> DbResult<u64> {
        match self {
            SqlResult::Affected(n) => Ok(n),
            SqlResult::Rows(r) => Ok(r.count),
            SqlResult::Ok => Ok(0),
        }
    }
}

/// Maximum view-in-view nesting.
const MAX_VIEW_DEPTH: usize = 16;

/// Describe a SELECT's plan (EXPLAIN) as one text row per plan line.
fn explain_select(session: &mut Session, select: &SelectStmt) -> DbResult<QueryResult> {
    let cluster = session.cluster();
    let epoch = session.resolve_epoch(select.at_epoch)?;
    let mut lines: Vec<String> = Vec::new();
    lines.push(format!("epoch: {epoch} (pinned snapshot)"));

    let aggregating = !select.group_by.is_empty()
        || select.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            SelectItem::Star => false,
        });

    if let Some(from) = &select.from {
        let name = &from.table;
        if crate::system::scan_system_table(cluster, name).is_some() {
            lines.push(format!("scan: system table {name}"));
        } else if cluster.catalog.read().view(name).is_some() {
            lines.push(format!(
                "scan: view {name} (executed at epoch {epoch}; synthetic row ranges available)"
            ));
        } else {
            let def = cluster.table_def(name)?;
            if def.is_segmented() {
                let map = cluster.segment_map();
                lines.push(format!(
                    "scan: table {} over {} hash segments (map v{}, locality-aware node-local ranges)",
                    def.name,
                    map.segments().len(),
                    map.version()
                ));
                for (s, seg) in map.segments().iter().enumerate() {
                    lines.push(format!(
                        "  segment {s} on node {}: [{:016x}, {})",
                        seg.owner,
                        seg.range.start,
                        seg.range
                            .end
                            .map(|e| format!("{e:016x}"))
                            .unwrap_or_else(|| "2^64".into())
                    ));
                }
            } else {
                lines.push(format!(
                    "scan: unsegmented table {} (served from the session's local replica)",
                    def.name
                ));
            }
        }
    } else {
        lines.push("scan: none (constant select)".to_string());
    }

    for join in &select.joins {
        lines.push(format!(
            "join: {} ON {:?} (hash join on simple equality, else nested loop)",
            join.table.table, join.on
        ));
    }
    if let Some(pred) = &select.predicate {
        match lower_scalar(pred) {
            Ok(e) if select.joins.is_empty() && !aggregating => {
                lines.push(format!("filter: {} [pushed down to storage]", e.to_sql()));
            }
            Ok(e) => lines.push(format!(
                "filter: {} [applied after join/aggregate]",
                e.to_sql()
            )),
            Err(_) => lines.push("filter: (contains functions; evaluated in the executor)".into()),
        }
    }
    if aggregating {
        lines.push(format!(
            "aggregate: {} group key(s), {} output item(s)",
            select.group_by.len(),
            select.items.len()
        ));
    } else {
        let all_plain = select.items.iter().all(|i| {
            matches!(i, SelectItem::Star)
                || matches!(
                    i,
                    SelectItem::Expr {
                        expr: ExprAst::Column { .. },
                        ..
                    }
                )
        });
        if all_plain && select.joins.is_empty() {
            lines.push("projection: [pushed down to storage]".to_string());
        } else {
            lines.push("projection: evaluated in the executor".to_string());
        }
    }
    if !select.order_by.is_empty() {
        lines.push(format!("sort: {} key(s)", select.order_by.len()));
    }
    if let Some(limit) = select.limit {
        lines.push(format!("limit: {limit}"));
    }

    let schema = Schema::from_pairs(&[("plan", DataType::Varchar)]);
    let rows: Vec<Row> = lines
        .into_iter()
        .map(|l| Row::new(vec![Value::Varchar(l)]))
        .collect();
    Ok(QueryResult {
        count: rows.len() as u64,
        schema,
        rows,
        epoch,
        batch: None,
    })
}

pub(crate) fn execute_statement(session: &mut Session, stmt: Statement) -> DbResult<SqlResult> {
    match stmt {
        Statement::CreateTable {
            name,
            columns,
            segmentation,
            if_not_exists,
            temp,
        } => {
            if if_not_exists && session.cluster().has_table(&name) {
                return Ok(SqlResult::Ok);
            }
            let schema = Schema::new(
                columns
                    .into_iter()
                    .map(|c| Field {
                        name: c.name,
                        dtype: c.dtype,
                        nullable: !c.not_null,
                    })
                    .collect(),
            );
            let seg = match segmentation {
                SegmentationClause::Default => Segmentation::ByHash(vec![]),
                SegmentationClause::ByHash(cols) => Segmentation::ByHash(cols),
                SegmentationClause::Unsegmented => Segmentation::Unsegmented,
            };
            let mut def = TableDef::new(name, schema, seg)?;
            if temp {
                def = def.temp();
            }
            session.cluster().create_table(def)?;
            Ok(SqlResult::Ok)
        }
        Statement::DropTable { name, if_exists } => match session.cluster().drop_table(&name) {
            Ok(()) => Ok(SqlResult::Ok),
            Err(DbError::UnknownTable(_)) if if_exists => Ok(SqlResult::Ok),
            Err(e) => Err(e),
        },
        Statement::CreateView { name, select } => {
            session.cluster().create_view(&name, select)?;
            Ok(SqlResult::Ok)
        }
        Statement::DropView { name } => {
            session.cluster().drop_view(&name)?;
            Ok(SqlResult::Ok)
        }
        Statement::Insert {
            table,
            columns,
            rows,
        } => execute_insert(session, &table, columns, rows),
        Statement::InsertSelect { table, select } => {
            let def = session.cluster().table_def(&table)?;
            let result = execute_select(session, &select, 0)?;
            if !def.schema.compatible_with(&result.schema) {
                return Err(DbError::Execution(format!(
                    "INSERT SELECT: query schema {} incompatible with table {}",
                    result.schema, def.schema
                )));
            }
            let n = session.insert(&table, result.rows)?;
            Ok(SqlResult::Affected(n))
        }
        Statement::Update {
            table,
            assignments,
            predicate,
        } => execute_update(session, &table, assignments, predicate),
        Statement::Delete { table, predicate } => {
            let def = session.cluster().table_def(&table)?;
            let pred = predicate
                .map(|p| lower_scalar(&p).and_then(|e| e.bind(&def.schema).map_err(DbError::Data)))
                .transpose()?;
            let n = session.with_txn(|cluster, txn, node, tag| {
                cluster.delete_where(txn, node, tag, &table, pred.as_ref())
            })?;
            Ok(SqlResult::Affected(n))
        }
        Statement::Select(select) => Ok(SqlResult::Rows(execute_select(session, &select, 0)?)),
        Statement::Explain(select) => Ok(SqlResult::Rows(explain_select(session, &select)?)),
        Statement::Begin => {
            session.begin()?;
            Ok(SqlResult::Ok)
        }
        Statement::Commit => {
            session.commit()?;
            Ok(SqlResult::Ok)
        }
        Statement::Rollback => {
            session.rollback()?;
            Ok(SqlResult::Ok)
        }
    }
}

fn execute_insert(
    session: &mut Session,
    table: &str,
    columns: Option<Vec<String>>,
    value_rows: Vec<Vec<ExprAst>>,
) -> DbResult<SqlResult> {
    let def = session.cluster().table_def(table)?;
    // Map provided columns to schema ordinals.
    let target_idx: Vec<usize> = match &columns {
        Some(cols) => cols
            .iter()
            .map(|c| def.schema.index_of(c))
            .collect::<Result<Vec<_>, _>>()
            .map_err(DbError::Data)?,
        None => (0..def.schema.len()).collect(),
    };
    let mut rows = Vec::with_capacity(value_rows.len());
    for exprs in value_rows {
        if exprs.len() != target_idx.len() {
            return Err(DbError::Execution(format!(
                "INSERT has {} values for {} columns",
                exprs.len(),
                target_idx.len()
            )));
        }
        let mut values = vec![Value::Null; def.schema.len()];
        for (expr, &idx) in exprs.iter().zip(&target_idx) {
            values[idx] = eval_const(expr)?;
        }
        rows.push(Row::new(values));
    }
    let n = session.insert(table, rows)?;
    Ok(SqlResult::Affected(n))
}

fn execute_update(
    session: &mut Session,
    table: &str,
    assignments: Vec<(String, ExprAst)>,
    predicate: Option<ExprAst>,
) -> DbResult<SqlResult> {
    let def = session.cluster().table_def(table)?;
    let pred = predicate
        .map(|p| lower_scalar(&p).and_then(|e| e.bind(&def.schema).map_err(DbError::Data)))
        .transpose()?;
    let assigns: Vec<(usize, Expr)> = assignments
        .iter()
        .map(|(col, e)| {
            let idx = def.schema.index_of(col).map_err(DbError::Data)?;
            let expr = lower_scalar(e)?.bind(&def.schema).map_err(DbError::Data)?;
            Ok((idx, expr))
        })
        .collect::<DbResult<Vec<_>>>()?;

    let n = session.with_txn(|cluster, txn, node, tag| {
        cluster.lock_table(txn, table, crate::txn::LockMode::Exclusive)?;
        // Collect the matched primary rows before deleting them.
        let as_of = cluster.current_epoch();
        let mut updated: Vec<Row> = Vec::new();
        // Read each logical row from its first *live* holder — the same
        // attribution `delete_where` uses — so the read and delete sides
        // agree even when nodes are down.
        for row in cluster.scan_primary_live(&def, as_of, Some(txn.id))? {
            let matched = match &pred {
                Some(p) => p.matches(&row).map_err(DbError::Data)?,
                None => true,
            };
            if !matched {
                continue;
            }
            let mut values = row.into_values();
            let original = Row::new(values.clone());
            for (idx, expr) in &assigns {
                values[*idx] = expr.eval(&original).map_err(DbError::Data)?;
            }
            updated.push(Row::new(values));
        }
        let deleted = cluster.delete_where(txn, node, tag, table, pred.as_ref())?;
        debug_assert_eq!(deleted as usize, updated.len());
        cluster.insert_rows(txn, node, tag, table, updated, false)?;
        Ok(deleted)
    })?;
    Ok(SqlResult::Affected(n))
}

// ----- SELECT ------------------------------------------------------

/// Column scope for name resolution over a (possibly joined) row.
struct Scope {
    /// `(qualifier, column name, data type)` per position.
    cols: Vec<(Option<String>, String, DataType)>,
}

impl Scope {
    fn from_schema(alias: Option<&str>, schema: &Schema) -> Scope {
        Scope {
            cols: schema
                .fields()
                .iter()
                .map(|f| (alias.map(str::to_string), f.name.clone(), f.dtype))
                .collect(),
        }
    }

    fn extend(&mut self, other: Scope) {
        self.cols.extend(other.cols);
    }

    fn resolve(&self, qualifier: Option<&str>, name: &str) -> DbResult<usize> {
        let matches: Vec<usize> = self
            .cols
            .iter()
            .enumerate()
            .filter(|(_, (q, n, _))| {
                n.eq_ignore_ascii_case(name)
                    && match qualifier {
                        Some(want) => q
                            .as_deref()
                            .is_some_and(|have| have.eq_ignore_ascii_case(want)),
                        None => true,
                    }
            })
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            0 => Err(DbError::Execution(format!(
                "unknown column {}{name}",
                qualifier.map(|q| format!("{q}.")).unwrap_or_default()
            ))),
            1 => Ok(matches[0]),
            _ => Err(DbError::Execution(format!(
                "ambiguous column reference {name}"
            ))),
        }
    }
}

pub(crate) fn execute_select(
    session: &mut Session,
    select: &SelectStmt,
    depth: usize,
) -> DbResult<QueryResult> {
    if depth > MAX_VIEW_DEPTH {
        return Err(DbError::Execution("view nesting too deep".into()));
    }
    let epoch = session.resolve_epoch(select.at_epoch)?;

    // SELECT without FROM: constant expressions, one row.
    let Some(from) = &select.from else {
        let mut values = Vec::new();
        let mut names = Vec::new();
        for (i, item) in select.items.iter().enumerate() {
            let SelectItem::Expr { expr, alias } = item else {
                return Err(DbError::Execution("SELECT * requires FROM".into()));
            };
            values.push(eval_const(expr)?);
            names.push(output_name(expr, alias.as_deref(), i));
        }
        let schema = infer_schema(&names, std::slice::from_ref(&Row::new(values.clone())));
        return Ok(QueryResult {
            schema,
            rows: vec![Row::new(values)],
            count: 1,
            epoch,
            batch: None,
        });
    };

    let aggregating = !select.group_by.is_empty()
        || select.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            SelectItem::Star => false,
        });

    // Fast path with pushdown: single table, no aggregation, no
    // ordering (ORDER BY needs the materialized output).
    if select.joins.is_empty() && !aggregating && select.order_by.is_empty() {
        if let Some(result) =
            try_pushdown_select(session, select, from.alias.as_deref(), &from.table, depth)?
        {
            return Ok(result);
        }
    }

    // General path: materialize the base relation(s).
    let (mut rows, mut scope) = load_relation(
        session,
        &from.table,
        from.alias.as_deref(),
        select.at_epoch,
        depth,
    )?;

    for join in &select.joins {
        let (right_rows, right_scope) = load_relation(
            session,
            &join.table.table,
            join.table.alias.as_deref(),
            select.at_epoch,
            depth,
        )?;
        rows = execute_join(session, rows, &scope, right_rows, &right_scope, &join.on)?;
        scope.extend(right_scope);
    }

    // WHERE.
    if let Some(pred) = &select.predicate {
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            if matches!(eval_ast(session, pred, &scope, &row)?, Value::Boolean(true)) {
                kept.push(row);
            }
        }
        rows = kept;
    }

    let mut result = if aggregating {
        execute_aggregate(session, select, &scope, rows, epoch)?
    } else {
        project_rows(session, &select.items, &scope, rows, epoch)?
    };

    apply_order_by(&mut result, &select.order_by)?;
    if let Some(limit) = select.limit {
        result.rows.truncate(limit as usize);
        result.count = result.rows.len() as u64;
    }
    Ok(result)
}

/// Sort the output rows by the ORDER BY keys (output-column names or
/// 1-based positions; SQL semantics: NULLs sort last ascending).
fn apply_order_by(
    result: &mut QueryResult,
    order_by: &[crate::sql::ast::OrderKey],
) -> DbResult<()> {
    if order_by.is_empty() {
        return Ok(());
    }
    let mut keys = Vec::with_capacity(order_by.len());
    for k in order_by {
        let idx = match &k.key {
            OrderTarget::Column(name) => result.schema.index_of(name).map_err(DbError::Data)?,
            OrderTarget::Position(p) => {
                if *p == 0 || *p > result.schema.len() {
                    return Err(DbError::Execution(format!(
                        "ORDER BY position {p} out of range"
                    )));
                }
                p - 1
            }
        };
        keys.push((idx, k.descending));
    }
    result.rows.sort_by(|a, b| {
        for &(idx, descending) in &keys {
            let (va, vb) = (a.get(idx), b.get(idx));
            // NULLs sort last in either direction.
            let ord = match (va.is_null(), vb.is_null()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => std::cmp::Ordering::Greater,
                (false, true) => std::cmp::Ordering::Less,
                (false, false) => {
                    let cmp = va.sql_cmp(vb).unwrap_or(std::cmp::Ordering::Equal);
                    if descending {
                        cmp.reverse()
                    } else {
                        cmp
                    }
                }
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(())
}

/// Pushdown-eligible single-table select: plain column projection (or
/// `*`), a lowerable predicate, optional COUNT(*). Returns `None` when
/// the shape doesn't fit and the general path must run.
fn try_pushdown_select(
    session: &mut Session,
    select: &SelectStmt,
    alias: Option<&str>,
    table: &str,
    depth: usize,
) -> DbResult<Option<QueryResult>> {
    let _ = depth;
    // COUNT(*) alone?
    if select.items.len() == 1 {
        if let SelectItem::Expr {
            expr: ExprAst::FuncCall { name, args, .. },
            alias: out_alias,
        } = &select.items[0]
        {
            {
                if name.eq_ignore_ascii_case("count")
                    && args.len() == 1
                    && matches!(args[0], ExprAst::Star)
                {
                    let mut spec = QuerySpec::scan(table).count();
                    spec.as_of_epoch = select.at_epoch;
                    if let Some(p) = &select.predicate {
                        match lower_scalar_qualified(p, alias) {
                            Ok(e) => spec.predicate = Some(e),
                            Err(_) => return Ok(None),
                        }
                    }
                    let r = session.query(&spec)?;
                    let name = out_alias.clone().unwrap_or_else(|| "count".to_string());
                    return Ok(Some(QueryResult {
                        schema: Schema::from_pairs(&[(name.as_str(), DataType::Int64)]),
                        rows: vec![Row::new(vec![Value::Int64(r.count as i64)])],
                        count: 1,
                        epoch: r.epoch,
                        batch: None,
                    }));
                }
            }
        }
    }

    // Plain projection?
    let mut projection: Option<Vec<String>> = Some(Vec::new());
    for item in &select.items {
        match item {
            SelectItem::Star => {
                projection = None;
                if select.items.len() != 1 {
                    return Ok(None); // mixed * and expressions: general path
                }
                break;
            }
            SelectItem::Expr {
                expr: ExprAst::Column { qualifier, name },
                alias: item_alias,
            } if item_alias.is_none()
                && qualifier
                    .as_deref()
                    .is_none_or(|q| Some(q) == alias || q.eq_ignore_ascii_case(table)) =>
            {
                if let Some(p) = projection.as_mut() {
                    p.push(name.clone());
                }
            }
            _ => return Ok(None),
        }
    }

    let mut spec = QuerySpec::scan(table);
    spec.projection = projection;
    spec.as_of_epoch = select.at_epoch;
    spec.limit = select.limit;
    if let Some(p) = &select.predicate {
        match lower_scalar_qualified(p, alias) {
            Ok(e) => spec.predicate = Some(e),
            Err(_) => return Ok(None),
        }
    }
    session.query(&spec).map(Some)
}

/// Load a table or view as rows plus a resolution scope.
fn load_relation(
    session: &mut Session,
    name: &str,
    alias: Option<&str>,
    at_epoch: Option<u64>,
    depth: usize,
) -> DbResult<(Vec<Row>, Scope)> {
    let view_select = session
        .cluster()
        .catalog
        .read()
        .view(name)
        .map(|v| v.select.clone());
    if let Some(mut vsel) = view_select {
        if vsel.at_epoch.is_none() {
            vsel.at_epoch = at_epoch;
        }
        let r = execute_select(session, &vsel, depth + 1)?;
        let scope = Scope::from_schema(alias.or(Some(name)), &r.schema);
        return Ok((r.rows, scope));
    }
    let mut spec = QuerySpec::scan(name);
    spec.as_of_epoch = at_epoch;
    let r = session.query(&spec)?;
    let scope = Scope::from_schema(alias.or(Some(name)), &r.schema);
    Ok((r.rows, scope))
}

/// Inner join. Uses a hash join when the ON clause is a simple equality
/// of one left and one right column; falls back to a nested loop.
fn execute_join(
    session: &mut Session,
    left: Vec<Row>,
    left_scope: &Scope,
    right: Vec<Row>,
    right_scope: &Scope,
    on: &ExprAst,
) -> DbResult<Vec<Row>> {
    // Detect `l.col = r.col`.
    if let ExprAst::Binary {
        left: le,
        op: BinaryOp::Eq,
        right: re,
    } = on
    {
        if let (
            ExprAst::Column {
                qualifier: q1,
                name: n1,
            },
            ExprAst::Column {
                qualifier: q2,
                name: n2,
            },
        ) = (le.as_ref(), re.as_ref())
        {
            let l1 = left_scope.resolve(q1.as_deref(), n1);
            let r2 = right_scope.resolve(q2.as_deref(), n2);
            let (li, ri) = match (l1, r2) {
                (Ok(l), Ok(r)) => (Some(l), Some(r)),
                _ => {
                    // Try the swapped orientation.
                    match (
                        left_scope.resolve(q2.as_deref(), n2),
                        right_scope.resolve(q1.as_deref(), n1),
                    ) {
                        (Ok(l), Ok(r)) => (Some(l), Some(r)),
                        _ => (None, None),
                    }
                }
            };
            if let (Some(li), Some(ri)) = (li, ri) {
                return Ok(hash_join(left, li, right, ri));
            }
        }
    }

    // Nested loop with full ON evaluation.
    let mut combined_scope = Scope {
        cols: left_scope.cols.clone(),
    };
    combined_scope.extend(Scope {
        cols: right_scope.cols.clone(),
    });
    let mut out = Vec::new();
    for l in &left {
        for r in &right {
            let mut values = l.values().to_vec();
            values.extend_from_slice(r.values());
            let row = Row::new(values);
            if matches!(
                eval_ast(session, on, &combined_scope, &row)?,
                Value::Boolean(true)
            ) {
                out.push(row);
            }
        }
    }
    Ok(out)
}

fn hash_join(left: Vec<Row>, li: usize, right: Vec<Row>, ri: usize) -> Vec<Row> {
    use std::collections::HashMap;
    let mut index: HashMap<String, Vec<&Row>> = HashMap::new();
    for r in &right {
        let key = r.get(ri);
        if key.is_null() {
            continue; // NULL never joins
        }
        index.entry(join_key(key)).or_default().push(r);
    }
    let mut out = Vec::new();
    for l in &left {
        let key = l.get(li);
        if key.is_null() {
            continue;
        }
        if let Some(matches) = index.get(&join_key(key)) {
            for r in matches {
                let mut values = l.values().to_vec();
                values.extend_from_slice(r.values());
                out.push(Row::new(values));
            }
        }
    }
    out
}

fn join_key(v: &Value) -> String {
    // Int64 and Float64 compare equal cross-type in SQL; normalize
    // integral values to one spelling.
    match v {
        Value::Int64(i) => format!("n:{}", *i as f64),
        Value::Float64(f) => format!("n:{f}"),
        Value::Boolean(b) => format!("b:{b}"),
        Value::Varchar(s) => format!("s:{s}"),
        Value::Null => unreachable!("nulls filtered before keying"),
    }
}

// ----- aggregation ---------------------------------------------------

enum AggKind {
    CountStar,
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

fn execute_aggregate(
    session: &mut Session,
    select: &SelectStmt,
    scope: &Scope,
    rows: Vec<Row>,
    epoch: u64,
) -> DbResult<QueryResult> {
    use std::collections::HashMap;

    // Group rows.
    let mut groups: Vec<(Vec<Value>, Vec<Row>)> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    for row in rows {
        let key: Vec<Value> = select
            .group_by
            .iter()
            .map(|e| eval_ast(session, e, scope, &row))
            .collect::<DbResult<_>>()?;
        let key_str = key
            .iter()
            .map(|v| format!("{}:{v}|", v.type_name()))
            .collect::<String>();
        let slot = *index.entry(key_str).or_insert_with(|| {
            groups.push((key.clone(), Vec::new()));
            groups.len() - 1
        });
        groups[slot].1.push(row);
    }
    // A global aggregate over zero rows still yields one group.
    if groups.is_empty() && select.group_by.is_empty() {
        groups.push((Vec::new(), Vec::new()));
    }

    let mut names = Vec::new();
    let mut out_rows = Vec::new();
    for (key, group_rows) in &groups {
        let mut values = Vec::new();
        for (i, item) in select.items.iter().enumerate() {
            let SelectItem::Expr { expr, alias } = item else {
                return Err(DbError::Execution(
                    "SELECT * cannot be combined with GROUP BY".into(),
                ));
            };
            if out_rows.is_empty() {
                names.push(output_name(expr, alias.as_deref(), i));
            }
            values.push(eval_agg_item(
                session, expr, select, scope, key, group_rows,
            )?);
        }
        out_rows.push(Row::new(values));
    }
    let schema = infer_schema(&names, &out_rows);
    Ok(QueryResult {
        count: out_rows.len() as u64,
        schema,
        rows: out_rows,
        epoch,
        batch: None,
    })
}

fn eval_agg_item(
    session: &mut Session,
    expr: &ExprAst,
    select: &SelectStmt,
    scope: &Scope,
    key: &[Value],
    group_rows: &[Row],
) -> DbResult<Value> {
    // A grouping expression: return the key.
    if let Some(pos) = select.group_by.iter().position(|g| g == expr) {
        return Ok(key[pos].clone());
    }
    // An aggregate call.
    if let ExprAst::FuncCall { name, args, .. } = expr {
        if is_aggregate_name(name) {
            let kind = match name.to_ascii_uppercase().as_str() {
                "COUNT" if args.len() == 1 && matches!(args[0], ExprAst::Star) => {
                    AggKind::CountStar
                }
                "COUNT" => AggKind::Count,
                "SUM" => AggKind::Sum,
                "AVG" => AggKind::Avg,
                "MIN" => AggKind::Min,
                "MAX" => AggKind::Max,
                _ => unreachable!(),
            };
            if !matches!(kind, AggKind::CountStar) && args.len() != 1 {
                return Err(DbError::Execution(format!(
                    "{name} takes exactly one argument"
                )));
            }
            return compute_aggregate(session, kind, args.first(), scope, group_rows);
        }
    }
    Err(DbError::Execution(format!(
        "select item must be a grouping expression or an aggregate: {expr:?}"
    )))
}

fn compute_aggregate(
    session: &mut Session,
    kind: AggKind,
    arg: Option<&ExprAst>,
    scope: &Scope,
    rows: &[Row],
) -> DbResult<Value> {
    if matches!(kind, AggKind::CountStar) {
        return Ok(Value::Int64(rows.len() as i64));
    }
    let arg = arg.ok_or_else(|| DbError::Execution("aggregate missing argument".into()))?;
    let mut non_null: Vec<Value> = Vec::new();
    for row in rows {
        let v = eval_ast(session, arg, scope, row)?;
        if !v.is_null() {
            non_null.push(v);
        }
    }
    Ok(match kind {
        AggKind::CountStar => unreachable!(),
        AggKind::Count => Value::Int64(non_null.len() as i64),
        AggKind::Sum => {
            if non_null.is_empty() {
                Value::Null
            } else if non_null.iter().all(|v| matches!(v, Value::Int64(_))) {
                let mut total = 0i64;
                for v in &non_null {
                    total += v.as_i64().map_err(DbError::Data)?;
                }
                Value::Int64(total)
            } else {
                let mut total = 0.0;
                for v in &non_null {
                    total += v.as_f64().map_err(DbError::Data)?;
                }
                Value::Float64(total)
            }
        }
        AggKind::Avg => {
            if non_null.is_empty() {
                Value::Null
            } else {
                let mut total = 0.0;
                for v in &non_null {
                    total += v.as_f64().map_err(DbError::Data)?;
                }
                Value::Float64(total / non_null.len() as f64)
            }
        }
        AggKind::Min | AggKind::Max => {
            let want_less = matches!(kind, AggKind::Min);
            let mut best: Option<Value> = None;
            for v in non_null {
                best = Some(match best {
                    None => v,
                    Some(b) => match v.sql_cmp(&b) {
                        Some(std::cmp::Ordering::Less) if want_less => v,
                        Some(std::cmp::Ordering::Greater) if !want_less => v,
                        _ => b,
                    },
                });
            }
            best.unwrap_or(Value::Null)
        }
    })
}

// ----- projection ----------------------------------------------------

fn project_rows(
    session: &mut Session,
    items: &[SelectItem],
    scope: &Scope,
    rows: Vec<Row>,
    epoch: u64,
) -> DbResult<QueryResult> {
    // Pure `SELECT *`.
    if items.len() == 1 && matches!(items[0], SelectItem::Star) {
        let schema = Schema::new(
            scope
                .cols
                .iter()
                .map(|(_, name, dtype)| Field::new(name.clone(), *dtype))
                .collect(),
        );
        return Ok(QueryResult {
            count: rows.len() as u64,
            schema,
            rows,
            epoch,
            batch: None,
        });
    }
    let mut names = Vec::new();
    let mut out_rows = Vec::with_capacity(rows.len());
    for (ri, row) in rows.iter().enumerate() {
        let mut values = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            match item {
                SelectItem::Star => {
                    if ri == 0 {
                        return Err(DbError::Execution(
                            "SELECT * cannot be mixed with expressions".into(),
                        ));
                    }
                    unreachable!()
                }
                SelectItem::Expr { expr, alias } => {
                    if ri == 0 {
                        names.push(output_name(expr, alias.as_deref(), i));
                    }
                    values.push(eval_ast(session, expr, scope, row)?);
                }
            }
        }
        out_rows.push(Row::new(values));
    }
    if rows.is_empty() {
        for (i, item) in items.iter().enumerate() {
            match item {
                SelectItem::Expr { expr, alias } => {
                    names.push(output_name(expr, alias.as_deref(), i))
                }
                SelectItem::Star => {
                    return Err(DbError::Execution(
                        "SELECT * cannot be mixed with expressions".into(),
                    ))
                }
            }
        }
    }
    let schema = infer_schema(&names, &out_rows);
    Ok(QueryResult {
        count: out_rows.len() as u64,
        schema,
        rows: out_rows,
        epoch,
        batch: None,
    })
}

// ----- expression evaluation ------------------------------------------

/// Lower an AST expression to a shared [`Expr`] (no UDFs, no
/// aggregates, no qualifiers). Errors when the expression isn't a pure
/// scalar over unqualified columns.
pub(crate) fn lower_scalar(ast: &ExprAst) -> DbResult<Expr> {
    lower_scalar_qualified(ast, None)
}

/// Like [`lower_scalar`] but strips a known table alias off qualified
/// column references.
fn lower_scalar_qualified(ast: &ExprAst, alias: Option<&str>) -> DbResult<Expr> {
    Ok(match ast {
        ExprAst::Column { qualifier, name } => match qualifier {
            None => Expr::Column(name.clone()),
            Some(q) if alias.is_some_and(|a| a.eq_ignore_ascii_case(q)) => {
                Expr::Column(name.clone())
            }
            Some(q) => {
                return Err(DbError::Execution(format!(
                    "cannot lower qualified column {q}.{name}"
                )))
            }
        },
        ExprAst::Literal(v) => Expr::Literal(v.clone()),
        ExprAst::Binary { left, op, right } => Expr::Binary {
            left: Box::new(lower_scalar_qualified(left, alias)?),
            op: *op,
            right: Box::new(lower_scalar_qualified(right, alias)?),
        },
        ExprAst::Not(e) => Expr::Not(Box::new(lower_scalar_qualified(e, alias)?)),
        ExprAst::Neg(e) => Expr::Neg(Box::new(lower_scalar_qualified(e, alias)?)),
        ExprAst::IsNull(e) => Expr::IsNull(Box::new(lower_scalar_qualified(e, alias)?)),
        ExprAst::IsNotNull(e) => Expr::IsNotNull(Box::new(lower_scalar_qualified(e, alias)?)),
        ExprAst::Like { expr, pattern } => Expr::Like {
            expr: Box::new(lower_scalar_qualified(expr, alias)?),
            pattern: pattern.clone(),
        },
        ExprAst::FuncCall { name, .. } => {
            return Err(DbError::Execution(format!(
                "function {name} cannot be lowered to a storage predicate"
            )))
        }
        ExprAst::Star => return Err(DbError::Execution("* is not a scalar expression".into())),
    })
}

/// Evaluate a constant expression (no column references).
fn eval_const(expr: &ExprAst) -> DbResult<Value> {
    let lowered = lower_scalar(expr)?;
    let empty_schema = Schema::new(vec![]);
    let bound = lowered.bind(&empty_schema).map_err(|_| {
        DbError::Execution("expression must be constant (no column references)".into())
    })?;
    bound.eval(&Row::new(vec![])).map_err(DbError::Data)
}

/// Evaluate an AST expression over a scoped row; handles UDF calls.
fn eval_ast(session: &mut Session, expr: &ExprAst, scope: &Scope, row: &Row) -> DbResult<Value> {
    match expr {
        ExprAst::Column { qualifier, name } => {
            let idx = scope.resolve(qualifier.as_deref(), name)?;
            Ok(row.get(idx).clone())
        }
        ExprAst::Literal(v) => Ok(v.clone()),
        ExprAst::Binary { left, op, right } => {
            // Reuse the shared evaluator by building a tiny bound tree.
            let l = eval_ast(session, left, scope, row)?;
            let r = eval_ast(session, right, scope, row)?;
            let e = Expr::Binary {
                left: Box::new(Expr::Literal(l)),
                op: *op,
                right: Box::new(Expr::Literal(r)),
            };
            e.eval(&Row::new(vec![])).map_err(DbError::Data)
        }
        ExprAst::Not(e) => {
            let v = eval_ast(session, e, scope, row)?;
            Expr::Not(Box::new(Expr::Literal(v)))
                .eval(&Row::new(vec![]))
                .map_err(DbError::Data)
        }
        ExprAst::Neg(e) => {
            let v = eval_ast(session, e, scope, row)?;
            Expr::Neg(Box::new(Expr::Literal(v)))
                .eval(&Row::new(vec![]))
                .map_err(DbError::Data)
        }
        ExprAst::IsNull(e) => Ok(Value::Boolean(eval_ast(session, e, scope, row)?.is_null())),
        ExprAst::IsNotNull(e) => Ok(Value::Boolean(!eval_ast(session, e, scope, row)?.is_null())),
        ExprAst::Like { expr, pattern } => {
            let v = eval_ast(session, expr, scope, row)?;
            Expr::Like {
                expr: Box::new(Expr::Literal(v)),
                pattern: pattern.clone(),
            }
            .eval(&Row::new(vec![]))
            .map_err(DbError::Data)
        }
        ExprAst::FuncCall {
            name,
            args,
            parameters,
        } => {
            if is_aggregate_name(name) {
                return Err(DbError::Execution(format!(
                    "aggregate {name} not allowed here"
                )));
            }
            let udf = session
                .cluster()
                .udf(name)
                .ok_or_else(|| DbError::Udf(format!("unknown function: {name}")))?;
            let arg_values: Vec<Value> = args
                .iter()
                .map(|a| eval_ast(session, a, scope, row))
                .collect::<DbResult<_>>()?;
            let params = UdfParams::new(parameters);
            let out = udf.eval(&arg_values, &params)?;
            session.cluster().recorder().work(
                session.task_tag(),
                NodeRef::Db(session.node()),
                "udf_eval",
                1,
                0,
            );
            Ok(out)
        }
        ExprAst::Star => Err(DbError::Execution("* is not a scalar expression".into())),
    }
}

fn output_name(expr: &ExprAst, alias: Option<&str>, idx: usize) -> String {
    if let Some(a) = alias {
        return a.to_string();
    }
    match expr {
        ExprAst::Column { name, .. } => name.clone(),
        ExprAst::FuncCall { name, .. } => name.to_ascii_lowercase(),
        _ => format!("col{idx}"),
    }
}

/// Infer an output schema from names and the first rows' value types.
fn infer_schema(names: &[String], rows: &[Row]) -> Schema {
    let fields = names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let dtype = rows
                .iter()
                .find_map(|r| r.get(i).data_type())
                .unwrap_or(DataType::Varchar);
            Field::new(name.clone(), dtype)
        })
        .collect();
    Schema::new(fields)
}

/// Scan a view through the programmatic query API: execute the stored
/// select, then apply the spec's synthetic row range, filter,
/// projection, count, and limit (paper Sec. 3.1.1's view loading).
pub(crate) fn execute_view_scan(session: &mut Session, spec: &QuerySpec) -> DbResult<QueryResult> {
    if spec.hash_range.is_some() {
        return Err(DbError::Execution(format!(
            "hash ranges do not apply to view {}; use row ranges",
            spec.table
        )));
    }
    let select = session
        .cluster()
        .catalog
        .read()
        .view(&spec.table)
        .map(|v| v.select.clone())
        .ok_or_else(|| DbError::UnknownTable(spec.table.clone()))?;
    let mut vsel = select;
    if vsel.at_epoch.is_none() {
        vsel.at_epoch = spec.as_of_epoch;
    }
    let base = execute_select(session, &vsel, 1)?;

    let mut rows = base.rows;
    if let Some((start, end)) = spec.row_range {
        let start = (start as usize).min(rows.len());
        let end = (end as usize).min(rows.len());
        rows = rows[start..end].to_vec();
    }
    if let Some(pred) = &spec.predicate {
        let bound = pred.bind(&base.schema).map_err(DbError::Data)?;
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            if bound.matches(&row).map_err(DbError::Data)? {
                kept.push(row);
            }
        }
        rows = kept;
    }
    let (schema, rows) = match &spec.projection {
        Some(cols) => {
            let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
            let schema = base.schema.project(&refs).map_err(DbError::Data)?;
            let idx: Vec<usize> = cols
                .iter()
                .map(|c| base.schema.index_of(c))
                .collect::<Result<_, _>>()
                .map_err(DbError::Data)?;
            (
                schema,
                rows.into_iter().map(|r| r.into_projected(&idx)).collect(),
            )
        }
        None => (base.schema, rows),
    };
    let count = rows.len() as u64;
    if spec.count_only {
        return Ok(QueryResult {
            schema,
            rows: Vec::new(),
            count,
            epoch: base.epoch,
            batch: None,
        });
    }
    let mut rows = rows;
    if let Some(limit) = spec.limit {
        rows.truncate(limit as usize);
    }
    Ok(QueryResult {
        count: rows.len() as u64,
        schema,
        rows,
        epoch: base.epoch,
        batch: None,
    })
}
