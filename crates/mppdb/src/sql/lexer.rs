//! SQL tokenizer.

use crate::error::{DbError, DbResult};

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (unquoted, stored as written).
    Ident(String),
    /// `"quoted identifier"`.
    QuotedIdent(String),
    /// Numeric literal text (parsed later as int or float).
    Number(String),
    /// `'string literal'` with `''` escapes resolved.
    String(String),
    Symbol(Symbol),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol {
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Semicolon,
}

impl Token {
    /// Keyword check, case-insensitive (identifiers double as keywords).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize a SQL string.
pub fn tokenize(input: &str) -> DbResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            // Consume one UTF-8 character.
                            let rest = &input[i..];
                            let ch = match rest.chars().next() {
                                Some(ch) => ch,
                                None => {
                                    return Err(DbError::Syntax(
                                        "unterminated string literal".into(),
                                    ))
                                }
                            };
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                        None => return Err(DbError::Syntax("unterminated string literal".into())),
                    }
                }
                tokens.push(Token::String(s));
            }
            b'"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        Some(b'"') if bytes.get(i + 1) == Some(&b'"') => {
                            s.push('"');
                            i += 2;
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(&c) => {
                            s.push(c as char);
                            i += 1;
                        }
                        None => {
                            return Err(DbError::Syntax("unterminated quoted identifier".into()))
                        }
                    }
                }
                tokens.push(Token::QuotedIdent(s));
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && matches!(bytes.get(i - 1), Some(b'e' | b'E'))))
                {
                    i += 1;
                }
                tokens.push(Token::Number(input[start..i].to_string()));
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            b'(' => {
                tokens.push(Token::Symbol(Symbol::LParen));
                i += 1;
            }
            b')' => {
                tokens.push(Token::Symbol(Symbol::RParen));
                i += 1;
            }
            b',' => {
                tokens.push(Token::Symbol(Symbol::Comma));
                i += 1;
            }
            b'.' => {
                tokens.push(Token::Symbol(Symbol::Dot));
                i += 1;
            }
            b'*' => {
                tokens.push(Token::Symbol(Symbol::Star));
                i += 1;
            }
            b'+' => {
                tokens.push(Token::Symbol(Symbol::Plus));
                i += 1;
            }
            b'-' => {
                tokens.push(Token::Symbol(Symbol::Minus));
                i += 1;
            }
            b'/' => {
                tokens.push(Token::Symbol(Symbol::Slash));
                i += 1;
            }
            b'%' => {
                tokens.push(Token::Symbol(Symbol::Percent));
                i += 1;
            }
            b';' => {
                tokens.push(Token::Symbol(Symbol::Semicolon));
                i += 1;
            }
            b'=' => {
                tokens.push(Token::Symbol(Symbol::Eq));
                i += 1;
            }
            b'!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::Symbol(Symbol::NotEq));
                i += 2;
            }
            b'<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(Token::Symbol(Symbol::LtEq));
                    i += 2;
                }
                Some(b'>') => {
                    tokens.push(Token::Symbol(Symbol::NotEq));
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Symbol(Symbol::Lt));
                    i += 1;
                }
            },
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Symbol(Symbol::GtEq));
                    i += 2;
                } else {
                    tokens.push(Token::Symbol(Symbol::Gt));
                    i += 1;
                }
            }
            other => {
                return Err(DbError::Syntax(format!(
                    "unexpected character {:?} at byte {i}",
                    other as char
                )))
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_numbers_strings() {
        let toks = tokenize("SELECT a, 'o''brien', 1.5e-3 FROM t WHERE x >= 10").unwrap();
        assert!(toks[0].is_kw("select"));
        assert_eq!(toks[1], Token::Ident("a".into()));
        assert_eq!(toks[3], Token::String("o'brien".into()));
        assert_eq!(toks[5], Token::Number("1.5e-3".into()));
        assert!(toks.contains(&Token::Symbol(Symbol::GtEq)));
    }

    #[test]
    fn operators_and_comments() {
        let toks = tokenize("a <> b -- comment\n <= >= != < >").unwrap();
        let syms: Vec<&Token> = toks
            .iter()
            .filter(|t| matches!(t, Token::Symbol(_)))
            .collect();
        assert_eq!(
            syms,
            vec![
                &Token::Symbol(Symbol::NotEq),
                &Token::Symbol(Symbol::LtEq),
                &Token::Symbol(Symbol::GtEq),
                &Token::Symbol(Symbol::NotEq),
                &Token::Symbol(Symbol::Lt),
                &Token::Symbol(Symbol::Gt),
            ]
        );
    }

    #[test]
    fn quoted_identifiers() {
        let toks = tokenize("\"weird name\" \"with\"\"quote\"").unwrap();
        assert_eq!(toks[0], Token::QuotedIdent("weird name".into()));
        assert_eq!(toks[1], Token::QuotedIdent("with\"quote".into()));
    }

    #[test]
    fn unterminated_literals_error() {
        assert!(tokenize("'abc").is_err());
        assert!(tokenize("\"abc").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        let toks = tokenize("'κόσμος'").unwrap();
        assert_eq!(toks[0], Token::String("κόσμος".into()));
    }

    #[test]
    fn unexpected_character() {
        assert!(tokenize("SELECT @x").is_err());
    }
}
