//! The SQL layer: lexer, AST, parser, and executor.
//!
//! Dialect coverage is driven by the paper: DDL with segmentation
//! clauses (`SEGMENTED BY HASH(...) ALL NODES` / `UNSEGMENTED ALL
//! NODES`), INSERT/UPDATE/DELETE for the S2V protocol tables, epoch-
//! pinned SELECT (`AT EPOCH n`) with filters and projections for V2S
//! pushdown, joins and grouped aggregates (so views can embody the
//! pushdowns the Data Source API cannot express, Sec. 3.1.1), scalar
//! UDx invocation with `USING PARAMETERS` (the `PMMLPredict` example of
//! Sec. 3.3), and transaction control.

pub mod ast;
pub mod exec;
pub mod lexer;
pub mod parser;

pub use ast::{ExprAst, SelectStmt, Statement};
pub use exec::SqlResult;
pub use parser::parse_statement;
