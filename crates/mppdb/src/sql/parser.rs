//! Recursive-descent SQL parser.

use common::{DataType, Value};

use crate::error::{DbError, DbResult};
use crate::sql::ast::{
    BinaryOp, ColumnDef, ExprAst, Join, OrderKey, OrderTarget, SegmentationClause, SelectItem,
    SelectStmt, Statement, TableRef,
};
use crate::sql::lexer::{tokenize, Symbol, Token};

/// Parse a single SQL statement (an optional trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> DbResult<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.parse_statement()?;
    p.eat_symbol(Symbol::Semicolon);
    if p.pos != p.tokens.len() {
        return Err(DbError::Syntax(format!(
            "unexpected trailing tokens after statement: {:?}",
            &p.tokens[p.pos..]
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_kw(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> DbResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(DbError::Syntax(format!(
                "expected keyword {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_symbol(&mut self, sym: Symbol) -> bool {
        if self.peek() == Some(&Token::Symbol(sym)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: Symbol) -> DbResult<()> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(DbError::Syntax(format!(
                "expected {sym:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_ident(&mut self) -> DbResult<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            Some(Token::QuotedIdent(s)) => Ok(s),
            other => Err(DbError::Syntax(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn expect_number_u64(&mut self) -> DbResult<u64> {
        match self.next() {
            Some(Token::Number(n)) => n
                .parse::<u64>()
                .map_err(|e| DbError::Syntax(format!("bad integer {n}: {e}"))),
            other => Err(DbError::Syntax(format!("expected number, found {other:?}"))),
        }
    }

    fn parse_statement(&mut self) -> DbResult<Statement> {
        if self.eat_kw("explain") {
            // EXPLAIN [AT EPOCH n] SELECT ...
            let inner = self.parse_statement()?;
            return match inner {
                Statement::Select(select) => Ok(Statement::Explain(select)),
                other => Err(DbError::Syntax(format!(
                    "EXPLAIN supports SELECT statements, got {other:?}"
                ))),
            };
        }
        // Optional Vertica-style epoch prefix: AT EPOCH n SELECT ...
        if self.peek_kw("at") {
            self.pos += 1;
            self.expect_kw("epoch")?;
            let epoch = if self.eat_kw("latest") {
                None
            } else {
                Some(self.expect_number_u64()?)
            };
            self.expect_kw("select")?;
            let mut select = self.parse_select_body()?;
            select.at_epoch = epoch;
            return Ok(Statement::Select(select));
        }
        if self.eat_kw("select") {
            return Ok(Statement::Select(self.parse_select_body()?));
        }
        if self.eat_kw("create") {
            return self.parse_create();
        }
        if self.eat_kw("drop") {
            if self.eat_kw("view") {
                let name = self.expect_ident()?;
                return Ok(Statement::DropView { name });
            }
            self.expect_kw("table")?;
            let if_exists = if self.eat_kw("if") {
                self.expect_kw("exists")?;
                true
            } else {
                false
            };
            let name = self.expect_ident()?;
            return Ok(Statement::DropTable { name, if_exists });
        }
        if self.eat_kw("insert") {
            return self.parse_insert();
        }
        if self.eat_kw("update") {
            return self.parse_update();
        }
        if self.eat_kw("delete") {
            self.expect_kw("from")?;
            let table = self.expect_ident()?;
            let predicate = if self.eat_kw("where") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            return Ok(Statement::Delete { table, predicate });
        }
        if self.eat_kw("begin") {
            self.eat_kw("work");
            self.eat_kw("transaction");
            return Ok(Statement::Begin);
        }
        if self.eat_kw("commit") {
            self.eat_kw("work");
            return Ok(Statement::Commit);
        }
        if self.eat_kw("rollback") || self.eat_kw("abort") {
            self.eat_kw("work");
            return Ok(Statement::Rollback);
        }
        Err(DbError::Syntax(format!(
            "unrecognized statement start: {:?}",
            self.peek()
        )))
    }

    fn parse_create(&mut self) -> DbResult<Statement> {
        let temp = self.eat_kw("temp") || self.eat_kw("temporary");
        if self.eat_kw("view") {
            let name = self.expect_ident()?;
            self.expect_kw("as")?;
            self.expect_kw("select")?;
            let select = self.parse_select_body()?;
            return Ok(Statement::CreateView { name, select });
        }
        self.expect_kw("table")?;
        let if_not_exists = if self.eat_kw("if") {
            self.expect_kw("not")?;
            self.expect_kw("exists")?;
            true
        } else {
            false
        };
        let name = self.expect_ident()?;
        self.expect_symbol(Symbol::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.expect_ident()?;
            let type_name = self.expect_ident()?;
            let dtype =
                DataType::from_sql_name(&type_name).map_err(|e| DbError::Syntax(e.to_string()))?;
            // Optional VARCHAR(n) length, accepted and ignored.
            if self.eat_symbol(Symbol::LParen) {
                self.expect_number_u64()?;
                self.expect_symbol(Symbol::RParen)?;
            }
            let not_null = if self.eat_kw("not") {
                self.expect_kw("null")?;
                true
            } else {
                false
            };
            columns.push(ColumnDef {
                name: col_name,
                dtype,
                not_null,
            });
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        self.expect_symbol(Symbol::RParen)?;

        let segmentation = if self.eat_kw("segmented") {
            self.expect_kw("by")?;
            self.expect_kw("hash")?;
            self.expect_symbol(Symbol::LParen)?;
            let mut cols = Vec::new();
            loop {
                cols.push(self.expect_ident()?);
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
            self.expect_symbol(Symbol::RParen)?;
            self.expect_kw("all")?;
            self.expect_kw("nodes")?;
            SegmentationClause::ByHash(cols)
        } else if self.eat_kw("unsegmented") {
            self.expect_kw("all")?;
            self.expect_kw("nodes")?;
            SegmentationClause::Unsegmented
        } else {
            SegmentationClause::Default
        };

        Ok(Statement::CreateTable {
            name,
            columns,
            segmentation,
            if_not_exists,
            temp,
        })
    }

    fn parse_insert(&mut self) -> DbResult<Statement> {
        self.expect_kw("into")?;
        let table = self.expect_ident()?;
        // INSERT INTO t SELECT ...
        if self.eat_kw("select") {
            let select = self.parse_select_body()?;
            return Ok(Statement::InsertSelect { table, select });
        }
        let columns = if self.eat_symbol(Symbol::LParen) {
            let mut cols = Vec::new();
            loop {
                cols.push(self.expect_ident()?);
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
            self.expect_symbol(Symbol::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol(Symbol::LParen)?;
            let mut exprs = Vec::new();
            loop {
                exprs.push(self.parse_expr()?);
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
            self.expect_symbol(Symbol::RParen)?;
            rows.push(exprs);
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn parse_update(&mut self) -> DbResult<Statement> {
        let table = self.expect_ident()?;
        self.expect_kw("set")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.expect_ident()?;
            self.expect_symbol(Symbol::Eq)?;
            assignments.push((col, self.parse_expr()?));
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        let predicate = if self.eat_kw("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            predicate,
        })
    }

    fn parse_select_body(&mut self) -> DbResult<SelectStmt> {
        let mut items = Vec::new();
        loop {
            if self.eat_symbol(Symbol::Star) {
                items.push(SelectItem::Star);
            } else {
                let expr = self.parse_expr()?;
                let alias = if self.eat_kw("as") {
                    Some(self.expect_ident()?)
                } else {
                    match self.peek() {
                        // Bare alias (identifier that is not a clause
                        // keyword).
                        Some(Token::Ident(s)) if !is_clause_keyword(s) => {
                            Some(self.expect_ident()?)
                        }
                        _ => None,
                    }
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }

        let from = if self.eat_kw("from") {
            Some(self.parse_table_ref()?)
        } else {
            None
        };

        let mut joins = Vec::new();
        while self.eat_kw("join")
            || (self.peek_kw("inner") && {
                self.pos += 1;
                self.expect_kw("join")?;
                true
            })
        {
            let table = self.parse_table_ref()?;
            self.expect_kw("on")?;
            let on = self.parse_expr()?;
            joins.push(Join { table, on });
        }

        let predicate = if self.eat_kw("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
        }

        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let key = match self.peek() {
                    Some(Token::Number(_)) => {
                        OrderTarget::Position(self.expect_number_u64()? as usize)
                    }
                    _ => OrderTarget::Column(self.expect_ident()?),
                };
                let descending = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderKey { key, descending });
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
        }

        let limit = if self.eat_kw("limit") {
            Some(self.expect_number_u64()?)
        } else {
            None
        };

        Ok(SelectStmt {
            items,
            from,
            joins,
            predicate,
            group_by,
            order_by,
            at_epoch: None,
            limit,
        })
    }

    fn parse_table_ref(&mut self) -> DbResult<TableRef> {
        let table = self.expect_ident()?;
        let alias = if self.eat_kw("as") {
            Some(self.expect_ident()?)
        } else {
            match self.peek() {
                Some(Token::Ident(s)) if !is_clause_keyword(s) => Some(self.expect_ident()?),
                _ => None,
            }
        };
        Ok(TableRef { table, alias })
    }

    // Expression grammar, lowest to highest precedence.
    fn parse_expr(&mut self) -> DbResult<ExprAst> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> DbResult<ExprAst> {
        let mut left = self.parse_and()?;
        while self.eat_kw("or") {
            let right = self.parse_and()?;
            left = ExprAst::Binary {
                left: Box::new(left),
                op: BinaryOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> DbResult<ExprAst> {
        let mut left = self.parse_not()?;
        while self.eat_kw("and") {
            let right = self.parse_not()?;
            left = ExprAst::Binary {
                left: Box::new(left),
                op: BinaryOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> DbResult<ExprAst> {
        if self.eat_kw("not") {
            Ok(ExprAst::Not(Box::new(self.parse_not()?)))
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> DbResult<ExprAst> {
        let left = self.parse_additive()?;
        // IS [NOT] NULL
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(if negated {
                ExprAst::IsNotNull(Box::new(left))
            } else {
                ExprAst::IsNull(Box::new(left))
            });
        }
        if self.eat_kw("like") {
            let pattern = match self.next() {
                Some(Token::String(s)) => s,
                other => {
                    return Err(DbError::Syntax(format!(
                        "LIKE pattern must be a string literal, found {other:?}"
                    )))
                }
            };
            return Ok(ExprAst::Like {
                expr: Box::new(left),
                pattern,
            });
        }
        let op = match self.peek() {
            Some(Token::Symbol(Symbol::Eq)) => Some(BinaryOp::Eq),
            Some(Token::Symbol(Symbol::NotEq)) => Some(BinaryOp::NotEq),
            Some(Token::Symbol(Symbol::Lt)) => Some(BinaryOp::Lt),
            Some(Token::Symbol(Symbol::LtEq)) => Some(BinaryOp::LtEq),
            Some(Token::Symbol(Symbol::Gt)) => Some(BinaryOp::Gt),
            Some(Token::Symbol(Symbol::GtEq)) => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.parse_additive()?;
            return Ok(ExprAst::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> DbResult<ExprAst> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Symbol::Plus)) => BinaryOp::Add,
                Some(Token::Symbol(Symbol::Minus)) => BinaryOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = ExprAst::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> DbResult<ExprAst> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Symbol::Star)) => BinaryOp::Mul,
                Some(Token::Symbol(Symbol::Slash)) => BinaryOp::Div,
                Some(Token::Symbol(Symbol::Percent)) => BinaryOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = ExprAst::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> DbResult<ExprAst> {
        if self.eat_symbol(Symbol::Minus) {
            return Ok(ExprAst::Neg(Box::new(self.parse_unary()?)));
        }
        if self.eat_symbol(Symbol::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> DbResult<ExprAst> {
        match self.next() {
            Some(Token::Number(n)) => {
                if n.contains(['.', 'e', 'E']) {
                    n.parse::<f64>()
                        .map(|f| ExprAst::Literal(Value::Float64(f)))
                        .map_err(|e| DbError::Syntax(format!("bad float {n}: {e}")))
                } else {
                    n.parse::<i64>()
                        .map(|i| ExprAst::Literal(Value::Int64(i)))
                        .map_err(|e| DbError::Syntax(format!("bad integer {n}: {e}")))
                }
            }
            Some(Token::String(s)) => Ok(ExprAst::Literal(Value::Varchar(s))),
            Some(Token::Symbol(Symbol::LParen)) => {
                let e = self.parse_expr()?;
                self.expect_symbol(Symbol::RParen)?;
                Ok(e)
            }
            Some(Token::Symbol(Symbol::Star)) => Ok(ExprAst::Star),
            Some(Token::Ident(name)) => self.parse_ident_expr(name),
            Some(Token::QuotedIdent(name)) => self.parse_ident_expr(name),
            other => Err(DbError::Syntax(format!(
                "unexpected token in expression: {other:?}"
            ))),
        }
    }

    fn parse_ident_expr(&mut self, name: String) -> DbResult<ExprAst> {
        // Literals spelled as keywords.
        if name.eq_ignore_ascii_case("true") {
            return Ok(ExprAst::Literal(Value::Boolean(true)));
        }
        if name.eq_ignore_ascii_case("false") {
            return Ok(ExprAst::Literal(Value::Boolean(false)));
        }
        if name.eq_ignore_ascii_case("null") {
            return Ok(ExprAst::Literal(Value::Null));
        }
        // Reserved clause keywords cannot start an expression; quote
        // them to use as column names.
        if is_clause_keyword(&name) {
            return Err(DbError::Syntax(format!(
                "unexpected keyword {name} in expression"
            )));
        }
        // Function call.
        if self.eat_symbol(Symbol::LParen) {
            let mut args = Vec::new();
            let mut parameters = Vec::new();
            if !self.eat_symbol(Symbol::RParen) {
                loop {
                    if !self.peek_kw("using") {
                        args.push(self.parse_expr()?);
                        if self.eat_symbol(Symbol::Comma) {
                            continue;
                        }
                        if !self.peek_kw("using") {
                            self.expect_symbol(Symbol::RParen)?;
                            break;
                        }
                    }
                    {
                        self.pos += 1;
                        self.expect_kw("parameters")?;
                        loop {
                            let key = self.expect_ident()?;
                            self.expect_symbol(Symbol::Eq)?;
                            let value = match self.next() {
                                Some(Token::String(s)) => Value::Varchar(s),
                                Some(Token::Number(n)) => {
                                    if n.contains('.') {
                                        Value::Float64(n.parse().map_err(|e| {
                                            DbError::Syntax(format!("bad parameter {n}: {e}"))
                                        })?)
                                    } else {
                                        Value::Int64(n.parse().map_err(|e| {
                                            DbError::Syntax(format!("bad parameter {n}: {e}"))
                                        })?)
                                    }
                                }
                                other => {
                                    return Err(DbError::Syntax(format!(
                                        "bad USING PARAMETERS value: {other:?}"
                                    )))
                                }
                            };
                            parameters.push((key, value));
                            if !self.eat_symbol(Symbol::Comma) {
                                break;
                            }
                        }
                        self.expect_symbol(Symbol::RParen)?;
                        break;
                    }
                }
            }
            return Ok(ExprAst::FuncCall {
                name,
                args,
                parameters,
            });
        }
        // Qualified column.
        if self.eat_symbol(Symbol::Dot) {
            let col = self.expect_ident()?;
            return Ok(ExprAst::Column {
                qualifier: Some(name),
                name: col,
            });
        }
        Ok(ExprAst::Column {
            qualifier: None,
            name,
        })
    }
}

fn is_clause_keyword(s: &str) -> bool {
    [
        "from", "where", "group", "limit", "join", "inner", "on", "as", "at", "and", "or", "not",
        "like", "is", "values", "set", "order", "using",
    ]
    .iter()
    .any(|k| s.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::ast::SelectItem;

    #[test]
    fn parse_create_table_segmented() {
        let stmt = parse_statement(
            "CREATE TABLE t (id INT NOT NULL, x FLOAT, name VARCHAR(80)) \
             SEGMENTED BY HASH(id) ALL NODES",
        )
        .unwrap();
        let Statement::CreateTable {
            name,
            columns,
            segmentation,
            temp,
            ..
        } = stmt
        else {
            panic!()
        };
        assert_eq!(name, "t");
        assert_eq!(columns.len(), 3);
        assert!(columns[0].not_null);
        assert!(!columns[1].not_null);
        assert_eq!(segmentation, SegmentationClause::ByHash(vec!["id".into()]));
        assert!(!temp);
    }

    #[test]
    fn parse_create_temp_unsegmented() {
        let stmt = parse_statement("CREATE TEMP TABLE s (a INT) UNSEGMENTED ALL NODES;").unwrap();
        let Statement::CreateTable {
            segmentation, temp, ..
        } = stmt
        else {
            panic!()
        };
        assert_eq!(segmentation, SegmentationClause::Unsegmented);
        assert!(temp);
    }

    #[test]
    fn parse_insert_multi_row() {
        let stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)").unwrap();
        let Statement::Insert {
            table,
            columns,
            rows,
        } = stmt
        else {
            panic!()
        };
        assert_eq!(table, "t");
        assert_eq!(columns, Some(vec!["a".into(), "b".into()]));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1][1], ExprAst::Literal(Value::Null));
    }

    #[test]
    fn parse_select_with_everything() {
        let stmt = parse_statement(
            "SELECT a, t.b AS bee, COUNT(*) FROM t JOIN u ON t.id = u.id \
             WHERE x > 1.5 AND name LIKE 'ab%' GROUP BY a, t.b LIMIT 10",
        )
        .unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.items.len(), 3);
        assert!(matches!(
            &s.items[1],
            SelectItem::Expr { alias: Some(a), .. } if a == "bee"
        ));
        assert_eq!(s.joins.len(), 1);
        assert!(s.predicate.is_some());
        assert_eq!(s.group_by.len(), 2);
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn parse_at_epoch_prefix() {
        let stmt = parse_statement("AT EPOCH 7 SELECT * FROM t").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.at_epoch, Some(7));
        let stmt = parse_statement("AT EPOCH LATEST SELECT * FROM t").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.at_epoch, None);
    }

    #[test]
    fn parse_udf_with_parameters() {
        let stmt = parse_statement(
            "SELECT PMMLPredict(sepal_length, sepal_width USING PARAMETERS \
             model_name='regression', version=2) FROM IrisTable",
        )
        .unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        let SelectItem::Expr {
            expr:
                ExprAst::FuncCall {
                    name,
                    args,
                    parameters,
                },
            ..
        } = &s.items[0]
        else {
            panic!()
        };
        assert_eq!(name, "PMMLPredict");
        assert_eq!(args.len(), 2);
        assert_eq!(
            parameters[0],
            (
                "model_name".to_string(),
                Value::Varchar("regression".into())
            )
        );
        assert_eq!(parameters[1], ("version".to_string(), Value::Int64(2)));
    }

    #[test]
    fn parse_update_delete_txn() {
        assert!(matches!(
            parse_statement("UPDATE s SET done = TRUE WHERE task_id = 3").unwrap(),
            Statement::Update { .. }
        ));
        assert!(matches!(
            parse_statement("DELETE FROM s WHERE done").unwrap(),
            Statement::Delete { .. }
        ));
        assert_eq!(parse_statement("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(parse_statement("COMMIT WORK").unwrap(), Statement::Commit);
        assert_eq!(parse_statement("ROLLBACK").unwrap(), Statement::Rollback);
    }

    #[test]
    fn parse_operator_precedence() {
        let stmt = parse_statement("SELECT 1 + 2 * 3 FROM t").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        let SelectItem::Expr { expr, .. } = &s.items[0] else {
            panic!()
        };
        // Must parse as 1 + (2 * 3).
        let ExprAst::Binary {
            op: BinaryOp::Add,
            right,
            ..
        } = expr
        else {
            panic!("expected Add at top: {expr:?}")
        };
        assert!(matches!(
            **right,
            ExprAst::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn parse_errors() {
        assert!(parse_statement("SELEC * FROM t").is_err());
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_statement("CREATE TABLE t (a BLOB)").is_err());
        assert!(parse_statement("SELECT * FROM t extra garbage !").is_err());
    }

    #[test]
    fn parse_views() {
        let stmt = parse_statement("CREATE VIEW v AS SELECT a, SUM(b) FROM t GROUP BY a").unwrap();
        assert!(matches!(stmt, Statement::CreateView { .. }));
        assert!(matches!(
            parse_statement("DROP VIEW v").unwrap(),
            Statement::DropView { .. }
        ));
    }
}
