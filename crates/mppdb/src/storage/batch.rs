//! Columnar batches: the unit of data flowing through the vectorized
//! scan pipeline.
//!
//! A [`ColumnBatch`] holds typed column vectors (one Rust `Vec` per
//! column, not a `Vec` of `Value` enums), a validity bitmap per column
//! for SQL NULLs, and the per-row segmentation hashes. Scans build
//! batches with *late materialization*: visibility and hash-range
//! filtering run over selection vectors of row positions, the pushed
//! down predicate decodes only its referenced columns, and only the
//! surviving positions of the projected columns are ever decoded into
//! the output batch.
//!
//! The batch keeps the engine's row-oriented cost accounting exact:
//! [`ColumnBatch::wire_size`] and [`ColumnBatch::text_wire_size`] are
//! byte-identical to summing [`common::Row::wire_size`] /
//! [`common::Row::text_wire_size`] over the materialized rows, so the
//! netsim `Recorder` volumes do not shift when a path switches from
//! rows to batches.

use common::{DataType, Error, Result, Row, Value};

/// A growable bitmap; bit `i` set means position `i` is valid (non-NULL).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    pub fn new() -> Bitmap {
        Bitmap::default()
    }

    pub fn with_capacity(bits: usize) -> Bitmap {
        Bitmap {
            words: Vec::with_capacity(bits.div_ceil(64)),
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn push(&mut self, valid: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if valid {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    pub fn get(&self, idx: usize) -> bool {
        debug_assert!(idx < self.len);
        self.words[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Number of set (valid) bits.
    pub fn count_valid(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub fn truncate(&mut self, len: usize) {
        if len >= self.len {
            return;
        }
        self.words.truncate(len.div_ceil(64));
        // Clear the tail bits of the last word so count_valid stays right.
        if !len.is_multiple_of(64) {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << (len % 64)) - 1;
            }
        }
        self.len = len;
    }

    pub fn append(&mut self, other: &Bitmap) {
        for i in 0..other.len {
            self.push(other.get(i));
        }
    }
}

/// One typed column vector with a validity bitmap. Invalid positions
/// hold an arbitrary default in `data` and decode as [`Value::Null`].
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnVec {
    Boolean { data: Vec<bool>, validity: Bitmap },
    Int64 { data: Vec<i64>, validity: Bitmap },
    Float64 { data: Vec<f64>, validity: Bitmap },
    Varchar { data: Vec<String>, validity: Bitmap },
}

impl ColumnVec {
    pub fn new(dtype: DataType) -> ColumnVec {
        match dtype {
            DataType::Boolean => ColumnVec::Boolean {
                data: Vec::new(),
                validity: Bitmap::new(),
            },
            DataType::Int64 => ColumnVec::Int64 {
                data: Vec::new(),
                validity: Bitmap::new(),
            },
            DataType::Float64 => ColumnVec::Float64 {
                data: Vec::new(),
                validity: Bitmap::new(),
            },
            DataType::Varchar => ColumnVec::Varchar {
                data: Vec::new(),
                validity: Bitmap::new(),
            },
        }
    }

    pub fn dtype(&self) -> DataType {
        match self {
            ColumnVec::Boolean { .. } => DataType::Boolean,
            ColumnVec::Int64 { .. } => DataType::Int64,
            ColumnVec::Float64 { .. } => DataType::Float64,
            ColumnVec::Varchar { .. } => DataType::Varchar,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            ColumnVec::Boolean { data, .. } => data.len(),
            ColumnVec::Int64 { data, .. } => data.len(),
            ColumnVec::Float64 { data, .. } => data.len(),
            ColumnVec::Varchar { data, .. } => data.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn validity(&self) -> &Bitmap {
        match self {
            ColumnVec::Boolean { validity, .. }
            | ColumnVec::Int64 { validity, .. }
            | ColumnVec::Float64 { validity, .. }
            | ColumnVec::Varchar { validity, .. } => validity,
        }
    }

    /// Append one value. NULL is storable in any column; `Int64` widens
    /// to `Float64` exactly as the row insert path coerces.
    pub fn push(&mut self, value: Value) -> Result<()> {
        match (self, value) {
            (ColumnVec::Boolean { data, validity }, Value::Boolean(b)) => {
                data.push(b);
                validity.push(true);
            }
            (ColumnVec::Int64 { data, validity }, Value::Int64(i)) => {
                data.push(i);
                validity.push(true);
            }
            (ColumnVec::Float64 { data, validity }, Value::Float64(f)) => {
                data.push(f);
                validity.push(true);
            }
            (ColumnVec::Float64 { data, validity }, Value::Int64(i)) => {
                data.push(i as f64);
                validity.push(true);
            }
            (ColumnVec::Varchar { data, validity }, Value::Varchar(s)) => {
                data.push(s);
                validity.push(true);
            }
            (col, Value::Null) => {
                match col {
                    ColumnVec::Boolean { data, validity } => {
                        data.push(false);
                        validity.push(false);
                    }
                    ColumnVec::Int64 { data, validity } => {
                        data.push(0);
                        validity.push(false);
                    }
                    ColumnVec::Float64 { data, validity } => {
                        data.push(0.0);
                        validity.push(false);
                    }
                    ColumnVec::Varchar { data, validity } => {
                        data.push(String::new());
                        validity.push(false);
                    }
                };
            }
            (col, v) => {
                return Err(Error::TypeMismatch {
                    expected: col.dtype().sql_name().to_string(),
                    found: v.type_name().to_string(),
                })
            }
        }
        Ok(())
    }

    /// Decode position `idx` into a [`Value`] (clones strings).
    pub fn value(&self, idx: usize) -> Value {
        if !self.validity().get(idx) {
            return Value::Null;
        }
        match self {
            ColumnVec::Boolean { data, .. } => Value::Boolean(data[idx]),
            ColumnVec::Int64 { data, .. } => Value::Int64(data[idx]),
            ColumnVec::Float64 { data, .. } => Value::Float64(data[idx]),
            ColumnVec::Varchar { data, .. } => Value::Varchar(data[idx].clone()),
        }
    }

    /// Move position `idx` out (strings are taken, not cloned). The
    /// position decodes as NULL-ish garbage afterwards — only used by
    /// the consuming [`ColumnBatch::into_rows`].
    fn take_value(&mut self, idx: usize) -> Value {
        if !self.validity().get(idx) {
            return Value::Null;
        }
        match self {
            ColumnVec::Boolean { data, .. } => Value::Boolean(data[idx]),
            ColumnVec::Int64 { data, .. } => Value::Int64(data[idx]),
            ColumnVec::Float64 { data, .. } => Value::Float64(data[idx]),
            ColumnVec::Varchar { data, .. } => Value::Varchar(std::mem::take(&mut data[idx])),
        }
    }

    /// Binary wire size: byte-identical to summing `Value::wire_size`.
    pub fn wire_size(&self) -> usize {
        let nulls = self.len() - self.validity().count_valid();
        match self {
            ColumnVec::Boolean { data, .. } => data.len(), // 1 byte either way
            ColumnVec::Int64 { data, .. } => nulls + (data.len() - nulls) * 8,
            ColumnVec::Float64 { data, .. } => nulls + (data.len() - nulls) * 8,
            ColumnVec::Varchar { data, validity } => {
                let mut total = nulls;
                for (i, s) in data.iter().enumerate() {
                    if validity.get(i) {
                        total += 4 + s.len();
                    }
                }
                total
            }
        }
    }

    /// Textual (JDBC result set) wire size: byte-identical to summing
    /// `Value::text_wire_size`.
    pub fn text_wire_size(&self) -> usize {
        const FRAMING: usize = 6;
        let mut total = self.len() * FRAMING;
        match self {
            ColumnVec::Boolean { data, validity } => {
                for i in 0..data.len() {
                    if validity.get(i) {
                        total += 5;
                    }
                }
            }
            ColumnVec::Int64 { data, validity } => {
                for (i, v) in data.iter().enumerate() {
                    if validity.get(i) {
                        total += Value::Int64(*v).text_wire_size() - FRAMING;
                    }
                }
            }
            ColumnVec::Float64 { data, validity } => {
                for i in 0..data.len() {
                    if validity.get(i) {
                        total += 17;
                    }
                }
            }
            ColumnVec::Varchar { data, validity } => {
                for (i, s) in data.iter().enumerate() {
                    if validity.get(i) {
                        total += s.len();
                    }
                }
            }
        }
        total
    }

    pub fn truncate(&mut self, len: usize) {
        match self {
            ColumnVec::Boolean { data, validity } => {
                data.truncate(len);
                validity.truncate(len);
            }
            ColumnVec::Int64 { data, validity } => {
                data.truncate(len);
                validity.truncate(len);
            }
            ColumnVec::Float64 { data, validity } => {
                data.truncate(len);
                validity.truncate(len);
            }
            ColumnVec::Varchar { data, validity } => {
                data.truncate(len);
                validity.truncate(len);
            }
        }
    }

    pub fn append(&mut self, other: ColumnVec) -> Result<()> {
        match (self, other) {
            (
                ColumnVec::Boolean { data, validity },
                ColumnVec::Boolean {
                    data: od,
                    validity: ov,
                },
            ) => {
                data.extend(od);
                validity.append(&ov);
            }
            (
                ColumnVec::Int64 { data, validity },
                ColumnVec::Int64 {
                    data: od,
                    validity: ov,
                },
            ) => {
                data.extend(od);
                validity.append(&ov);
            }
            (
                ColumnVec::Float64 { data, validity },
                ColumnVec::Float64 {
                    data: od,
                    validity: ov,
                },
            ) => {
                data.extend(od);
                validity.append(&ov);
            }
            (
                ColumnVec::Varchar { data, validity },
                ColumnVec::Varchar {
                    data: od,
                    validity: ov,
                },
            ) => {
                data.extend(od);
                validity.append(&ov);
            }
            (me, other) => {
                return Err(Error::TypeMismatch {
                    expected: me.dtype().sql_name().to_string(),
                    found: other.dtype().sql_name().to_string(),
                })
            }
        }
        Ok(())
    }
}

/// A batch of rows in columnar form, plus the per-row segmentation
/// hashes (kept so hash-range filtering and re-routing never decode a
/// data column).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnBatch {
    columns: Vec<ColumnVec>,
    hashes: Vec<u64>,
}

impl ColumnBatch {
    pub fn new(dtypes: &[DataType]) -> ColumnBatch {
        ColumnBatch {
            columns: dtypes.iter().map(|&t| ColumnVec::new(t)).collect(),
            hashes: Vec::new(),
        }
    }

    pub fn num_rows(&self) -> usize {
        self.hashes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.num_rows() == 0
    }

    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    pub fn column(&self, idx: usize) -> &ColumnVec {
        &self.columns[idx]
    }

    pub fn hashes(&self) -> &[u64] {
        &self.hashes
    }

    /// Append one value to column `col`. Callers fill whole columns for
    /// a run of rows and then push the hashes; [`ColumnBatch::push_hash`]
    /// closes each row group.
    pub fn push(&mut self, col: usize, value: Value) -> Result<()> {
        self.columns[col].push(value)
    }

    pub fn push_hash(&mut self, hash: u64) {
        self.hashes.push(hash);
    }

    /// Decode row `idx` into an owned [`Row`].
    pub fn row(&self, idx: usize) -> Row {
        Row::new(self.columns.iter().map(|c| c.value(idx)).collect())
    }

    /// Materialize all rows, moving values out of the batch (strings
    /// are not cloned). This is the batch → row boundary.
    pub fn into_rows(self) -> Vec<Row> {
        let n = self.num_rows();
        let ncols = self.columns.len();
        let mut values: Vec<Vec<Value>> = (0..n).map(|_| Vec::with_capacity(ncols)).collect();
        let mut columns = self.columns;
        for col in &mut columns {
            debug_assert_eq!(col.len(), n);
            for (i, row) in values.iter_mut().enumerate() {
                row.push(col.take_value(i));
            }
        }
        values.into_iter().map(Row::new).collect()
    }

    /// Binary wire size of the batch; equals the sum of
    /// `Row::wire_size` over [`ColumnBatch::into_rows`].
    pub fn wire_size(&self) -> usize {
        self.columns.iter().map(ColumnVec::wire_size).sum()
    }

    /// Textual wire size of the batch; equals the sum of
    /// `Row::text_wire_size` over [`ColumnBatch::into_rows`].
    pub fn text_wire_size(&self) -> usize {
        let per_row_overhead = self.columns.len() + 10;
        self.columns
            .iter()
            .map(ColumnVec::text_wire_size)
            .sum::<usize>()
            + self.num_rows() * per_row_overhead
    }

    pub fn truncate(&mut self, len: usize) {
        for col in &mut self.columns {
            col.truncate(len);
        }
        self.hashes.truncate(len);
    }

    /// Append another batch of the same layout (deterministic segment
    /// merge: pieces are appended in segment order).
    pub fn append(&mut self, other: ColumnBatch) -> Result<()> {
        debug_assert_eq!(self.columns.len(), other.columns.len());
        for (col, ocol) in self.columns.iter_mut().zip(other.columns) {
            col.append(ocol)?;
        }
        self.hashes.extend(other.hashes);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::row;

    #[test]
    fn bitmap_push_get_truncate() {
        let mut b = Bitmap::new();
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        for i in 0..130 {
            assert_eq!(b.get(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(b.count_valid(), (0..130).filter(|i| i % 3 == 0).count());
        b.truncate(65);
        assert_eq!(b.len(), 65);
        assert_eq!(b.count_valid(), (0..65).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn column_vec_round_trip_with_nulls() {
        let mut c = ColumnVec::new(DataType::Varchar);
        c.push(Value::Varchar("a".into())).unwrap();
        c.push(Value::Null).unwrap();
        c.push(Value::Varchar("bc".into())).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.value(0), Value::Varchar("a".into()));
        assert_eq!(c.value(1), Value::Null);
        assert_eq!(c.value(2), Value::Varchar("bc".into()));
        // wire sizes equal the row-at-a-time sums.
        assert_eq!(
            c.wire_size(),
            Value::Varchar("a".into()).wire_size()
                + Value::Null.wire_size()
                + Value::Varchar("bc".into()).wire_size()
        );
        assert_eq!(
            c.text_wire_size(),
            Value::Varchar("a".into()).text_wire_size()
                + Value::Null.text_wire_size()
                + Value::Varchar("bc".into()).text_wire_size()
        );
    }

    #[test]
    fn column_vec_type_checked_with_widening() {
        let mut c = ColumnVec::new(DataType::Float64);
        c.push(Value::Int64(3)).unwrap();
        assert_eq!(c.value(0), Value::Float64(3.0));
        assert!(c.push(Value::Varchar("x".into())).is_err());
    }

    #[test]
    fn batch_into_rows_matches_layout() {
        let mut b = ColumnBatch::new(&[DataType::Int64, DataType::Varchar]);
        for i in [1i64, 2] {
            b.push(0, Value::Int64(i)).unwrap();
        }
        for s in ["a", "b"] {
            b.push(1, Value::Varchar(s.to_string())).unwrap();
        }
        b.push_hash(10);
        b.push_hash(20);
        assert_eq!(b.num_rows(), 2);
        assert_eq!(b.row(1), row![2i64, "b"]);
        let rows = b.into_rows();
        assert_eq!(rows, vec![row![1i64, "a"], row![2i64, "b"]]);
    }

    #[test]
    fn batch_wire_sizes_match_rows() {
        let mut b = ColumnBatch::new(&[DataType::Int64, DataType::Varchar, DataType::Float64]);
        let rows = vec![
            row![1i64, "alpha", 1.5f64],
            Row::new(vec![Value::Null, Value::Null, Value::Null]),
            row![-42i64, "", 0.0f64],
        ];
        for r in &rows {
            for (c, v) in r.values().iter().enumerate() {
                b.push(c, v.clone()).unwrap();
            }
            b.push_hash(0);
        }
        assert_eq!(
            b.wire_size(),
            rows.iter().map(Row::wire_size).sum::<usize>()
        );
        assert_eq!(
            b.text_wire_size(),
            rows.iter().map(Row::text_wire_size).sum::<usize>()
        );
    }

    #[test]
    fn batch_append_and_truncate() {
        let mut a = ColumnBatch::new(&[DataType::Int64]);
        a.push(0, Value::Int64(1)).unwrap();
        a.push_hash(1);
        let mut b = ColumnBatch::new(&[DataType::Int64]);
        b.push(0, Value::Int64(2)).unwrap();
        b.push_hash(2);
        b.push(0, Value::Int64(3)).unwrap();
        b.push_hash(3);
        a.append(b).unwrap();
        assert_eq!(a.num_rows(), 3);
        assert_eq!(a.hashes(), &[1, 2, 3]);
        a.truncate(2);
        assert_eq!(a.num_rows(), 2);
        assert_eq!(a.row(1), row![2i64]);
    }
}
