//! Column encodings for ROS containers.
//!
//! The engine's read-optimized storage keeps each column encoded. Three
//! encodings cover the usual analytic cases:
//!
//! * **Plain** — values as-is; the fallback for high-entropy data
//!   (dataset D1's random floats).
//! * **Rle** — run-length `(value, count)` pairs; wins for sorted or
//!   low-variation columns.
//! * **Dictionary** — distinct values plus per-row codes; wins for
//!   low-cardinality strings.
//!
//! `encode_auto` samples cardinality and run structure to choose.

use common::{DataType, Value};

/// An encoded column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum EncodedColumn {
    Plain(Vec<Value>),
    Rle(Vec<(Value, u32)>),
    Dictionary { dict: Vec<Value>, codes: Vec<u32> },
}

impl EncodedColumn {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            EncodedColumn::Plain(v) => v.len(),
            EncodedColumn::Rle(runs) => runs.iter().map(|(_, c)| *c as usize).sum(),
            EncodedColumn::Dictionary { codes, .. } => codes.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decode the full column.
    pub fn decode(&self) -> Vec<Value> {
        match self {
            EncodedColumn::Plain(v) => v.clone(),
            EncodedColumn::Rle(runs) => {
                let mut out = Vec::with_capacity(self.len());
                for (v, count) in runs {
                    for _ in 0..*count {
                        out.push(v.clone());
                    }
                }
                out
            }
            EncodedColumn::Dictionary { dict, codes } => {
                codes.iter().map(|&c| dict[c as usize].clone()).collect()
            }
        }
    }

    /// Random access to row `idx` (used by point visibility checks).
    pub fn get(&self, idx: usize) -> Value {
        match self {
            EncodedColumn::Plain(v) => v[idx].clone(),
            EncodedColumn::Rle(runs) => {
                let mut remaining = idx;
                for (v, count) in runs {
                    if remaining < *count as usize {
                        return v.clone();
                    }
                    remaining -= *count as usize;
                }
                panic!("row index {idx} out of range");
            }
            EncodedColumn::Dictionary { dict, codes } => dict[codes[idx] as usize].clone(),
        }
    }

    /// Gather the values at `positions` (which must be sorted
    /// ascending) in one forward pass over the encoding.
    ///
    /// This is the late-materialization decode: for RLE the run cursor
    /// advances monotonically so each run is located once no matter how
    /// many surviving positions it covers, and for dictionary columns
    /// only the selected codes are looked up. Cost is
    /// `O(positions + runs)` instead of `O(positions * runs)` for
    /// repeated [`EncodedColumn::get`] calls.
    pub fn gather_sorted(&self, positions: &[u32]) -> Vec<Value> {
        let mut out = Vec::with_capacity(positions.len());
        match self {
            EncodedColumn::Plain(v) => {
                for &p in positions {
                    out.push(v[p as usize].clone());
                }
            }
            EncodedColumn::Rle(runs) => {
                let mut run = 0usize;
                // First row index of `runs[run]`.
                let mut run_start = 0usize;
                for &p in positions {
                    let p = p as usize;
                    debug_assert!(p >= run_start, "positions must be sorted");
                    while run < runs.len() && p >= run_start + runs[run].1 as usize {
                        run_start += runs[run].1 as usize;
                        run += 1;
                    }
                    assert!(run < runs.len(), "row index {p} out of range");
                    out.push(runs[run].0.clone());
                }
            }
            EncodedColumn::Dictionary { dict, codes } => {
                for &p in positions {
                    out.push(dict[codes[p as usize] as usize].clone());
                }
            }
        }
        out
    }

    /// A readable name of the encoding, surfaced in storage stats.
    pub fn encoding_name(&self) -> &'static str {
        match self {
            EncodedColumn::Plain(_) => "plain",
            EncodedColumn::Rle(_) => "rle",
            EncodedColumn::Dictionary { .. } => "dictionary",
        }
    }

    /// Approximate encoded size in bytes (for storage stats and
    /// compression-ratio reporting).
    pub fn encoded_size(&self) -> usize {
        match self {
            EncodedColumn::Plain(v) => v.iter().map(Value::wire_size).sum(),
            EncodedColumn::Rle(runs) => runs.iter().map(|(v, _)| v.wire_size() + 4).sum(),
            EncodedColumn::Dictionary { dict, codes } => {
                // Codes are bit-packed on disk: ceil(log2(|dict|)) bits each.
                let bits = usize::BITS - (dict.len().max(2) - 1).leading_zeros();
                dict.iter().map(Value::wire_size).sum::<usize>()
                    + (codes.len() * bits as usize).div_ceil(8)
            }
        }
    }
}

/// Encode with run-length encoding.
pub fn encode_rle(values: &[Value]) -> EncodedColumn {
    let mut runs: Vec<(Value, u32)> = Vec::new();
    for v in values {
        match runs.last_mut() {
            Some((last, count)) if last == v && *count < u32::MAX => *count += 1,
            _ => runs.push((v.clone(), 1)),
        }
    }
    EncodedColumn::Rle(runs)
}

/// Encode with dictionary encoding. Returns `None` when the dictionary
/// would exceed `u32` codes (never in practice here).
pub fn encode_dictionary(values: &[Value]) -> EncodedColumn {
    let mut dict: Vec<Value> = Vec::new();
    let mut codes = Vec::with_capacity(values.len());
    for v in values {
        // Linear probe: dictionaries only pay off when tiny, and
        // `encode_auto` only picks this path for low cardinality.
        let code = match dict.iter().position(|d| d == v) {
            Some(i) => i as u32,
            None => {
                dict.push(v.clone());
                (dict.len() - 1) as u32
            }
        };
        codes.push(code);
    }
    EncodedColumn::Dictionary { dict, codes }
}

/// Pick an encoding by inspecting the data: RLE when runs dominate,
/// dictionary for low-cardinality columns, plain otherwise.
pub fn encode_auto(values: &[Value], _dtype: DataType) -> EncodedColumn {
    if values.is_empty() {
        return EncodedColumn::Plain(Vec::new());
    }
    // Count runs and (capped) distinct values in one pass over a sample.
    let sample = &values[..values.len().min(1024)];
    let mut runs = 1usize;
    for w in sample.windows(2) {
        if w[0] != w[1] {
            runs += 1;
        }
    }
    let mut distinct: Vec<&Value> = Vec::new();
    for v in sample {
        if distinct.len() > 64 {
            break;
        }
        if !distinct.contains(&v) {
            distinct.push(v);
        }
    }
    if runs * 4 <= sample.len() {
        encode_rle(values)
    } else if distinct.len() <= 64 && sample.len() >= 16 {
        encode_dictionary(values)
    } else {
        EncodedColumn::Plain(values.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&i| Value::Int64(i)).collect()
    }

    #[test]
    fn rle_round_trip() {
        let vals = ints(&[1, 1, 1, 2, 2, 3, 3, 3, 3]);
        let enc = encode_rle(&vals);
        assert_eq!(enc.len(), 9);
        assert_eq!(enc.decode(), vals);
        assert_eq!(enc.get(2), Value::Int64(1));
        assert_eq!(enc.get(3), Value::Int64(2));
        assert_eq!(enc.get(8), Value::Int64(3));
        if let EncodedColumn::Rle(runs) = &enc {
            assert_eq!(runs.len(), 3);
        } else {
            panic!("expected RLE");
        }
    }

    #[test]
    fn dictionary_round_trip() {
        let vals: Vec<Value> = ["a", "b", "a", "c", "b", "a"]
            .iter()
            .map(|s| Value::Varchar(s.to_string()))
            .collect();
        let enc = encode_dictionary(&vals);
        assert_eq!(enc.decode(), vals);
        assert_eq!(enc.get(3), Value::Varchar("c".into()));
        if let EncodedColumn::Dictionary { dict, .. } = &enc {
            assert_eq!(dict.len(), 3);
        } else {
            panic!("expected dictionary");
        }
    }

    #[test]
    fn auto_picks_rle_for_sorted_runs() {
        let vals = ints(&[7; 1000]);
        let enc = encode_auto(&vals, DataType::Int64);
        assert_eq!(enc.encoding_name(), "rle");
        assert!(enc.encoded_size() < 100);
        assert_eq!(enc.decode(), vals);
    }

    #[test]
    fn auto_picks_dictionary_for_low_cardinality() {
        let vals: Vec<Value> = (0..500)
            .map(|i| Value::Varchar(format!("cat{}", i % 5)))
            .collect();
        let enc = encode_auto(&vals, DataType::Varchar);
        assert_eq!(enc.encoding_name(), "dictionary");
        assert_eq!(enc.decode(), vals);
    }

    #[test]
    fn auto_picks_plain_for_high_entropy() {
        let vals = ints(&(0..500).collect::<Vec<i64>>());
        let enc = encode_auto(&vals, DataType::Int64);
        assert_eq!(enc.encoding_name(), "plain");
        assert_eq!(enc.decode(), vals);
    }

    #[test]
    fn nulls_supported_in_all_encodings() {
        let vals = vec![Value::Null, Value::Null, Value::Int64(1), Value::Null];
        for enc in [
            encode_rle(&vals),
            encode_dictionary(&vals),
            EncodedColumn::Plain(vals.clone()),
        ] {
            assert_eq!(enc.decode(), vals);
        }
    }

    #[test]
    fn gather_sorted_matches_get() {
        let vals = ints(&[1, 1, 1, 2, 2, 3, 3, 3, 3, 5]);
        let positions = [0u32, 2, 3, 6, 8, 9];
        for enc in [
            encode_rle(&vals),
            encode_dictionary(&vals),
            EncodedColumn::Plain(vals.clone()),
        ] {
            let gathered = enc.gather_sorted(&positions);
            let expected: Vec<Value> = positions.iter().map(|&p| enc.get(p as usize)).collect();
            assert_eq!(gathered, expected, "encoding {}", enc.encoding_name());
        }
    }

    #[test]
    fn empty_column() {
        let enc = encode_auto(&[], DataType::Int64);
        assert!(enc.is_empty());
        assert_eq!(enc.decode(), Vec::<Value>::new());
    }
}
