//! Node-local storage: write-optimized buffer (WOS), read-optimized
//! encoded containers (ROS), delete vectors, and the tuple mover.

pub mod batch;
pub mod encoding;
pub mod store;

pub use batch::{Bitmap, ColumnBatch, ColumnVec};
pub use store::{
    BatchScan, CommitState, NodeTableStore, RowLoc, ScanOutput, StorageStats, VisibleRow,
};
