//! Node-local storage: write-optimized buffer (WOS), read-optimized
//! encoded containers (ROS), delete vectors, the tuple mover, and
//! per-container statistics (zone maps, null counts, NDV sketches).

pub mod batch;
pub mod encoding;
pub mod mover;
pub mod stats;
pub mod store;

pub use batch::{Bitmap, ColumnBatch, ColumnVec};
pub use mover::{MoverOp, MoverPassReport, MOVER_POOL};
pub use stats::{ColumnStats, ContainerStats};
pub use store::{
    AggScanOutput, BatchScan, CommitState, ContainerInfo, MergeOutcome, NodeTableStore, RowLoc,
    ScanOutput, StorageStats, VisibleRow,
};
