//! Node-local storage: write-optimized buffer (WOS), read-optimized
//! encoded containers (ROS), delete vectors, and the tuple mover.

pub mod encoding;
pub mod store;

pub use store::{CommitState, NodeTableStore, RowLoc, StorageStats, VisibleRow};
