//! The Tuple Mover: background maintenance that lets continuous ingest
//! coexist with fast scans ("C-Store 7 Years Later", Sec. 4).
//!
//! Two passes, both driven from [`Cluster::mover_pass`]:
//!
//! * **moveout** — drain committed WOS rows into a fresh encoded ROS
//!   container ([`NodeTableStore::moveout`]). The container is built
//!   through the same [`ContainerStats`] path as COPY DIRECT, so moved
//!   rows immediately benefit from zone-map skipping.
//! * **mergeout** — compact adjacent runs of small, fully-committed ROS
//!   containers in the same power-of-two size stratum into one
//!   container ([`NodeTableStore::mergeout`]), bounding the container
//!   count trickle loads would otherwise grow without limit.
//!
//! Safety properties:
//!
//! * Both passes preserve per-row commit/delete states verbatim and
//!   keep the visible-row sequence at every snapshot epoch unchanged,
//!   so concurrent MVCC scans (including the connector's epoch-pinned
//!   V2S pieces and synthetic row windows) cannot observe a pass.
//! * Each table pass holds the table's **shared** lock: `DELETE` /
//!   `UPDATE` statements take the exclusive lock, so their [`RowLoc`]s
//!   cannot go stale while the mover relocates rows under them.
//! * The pass admits into the dedicated `tm` resource pool; when the
//!   pool is full the pass sheds (`tm.sheds`) instead of piling onto a
//!   busy cluster.
//! * The seeded fault injector's [`FaultSite::Moveout`] kills a pass
//!   before it touches a store — every mutation is all-or-nothing
//!   under the store write lock, so a "crash" can only mean the pass
//!   never ran, never a torn container.
//!
//! Every completed operation is logged (bounded ring) and surfaced as
//! the `dc_tuple_mover` system table, plus `tm.*` counters/timers in
//! the data collector.
//!
//! [`ContainerStats`]: crate::storage::stats::ContainerStats
//! [`RowLoc`]: crate::storage::store::RowLoc
//! [`FaultSite::Moveout`]: crate::fault::FaultSite::Moveout

use std::collections::BTreeSet;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::cluster::Cluster;
use crate::fault::FaultSite;
use crate::storage::NodeTableStore;
use crate::txn::LockMode;

/// Resource pool the mover admits into; created with every cluster.
pub const MOVER_POOL: &str = "tm";

/// Most recent mover operations retained for `dc_tuple_mover`.
const OP_LOG_CAP: usize = 1024;

/// One completed tuple-mover operation, as surfaced by the
/// `dc_tuple_mover` system table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoverOp {
    /// Monotonic per-cluster sequence number.
    pub seq: u64,
    /// `"moveout"` or `"mergeout"`.
    pub op: &'static str,
    pub node: usize,
    pub table: String,
    /// Rows moved (moveout) or rewritten (mergeout).
    pub rows: u64,
    /// Containers consumed (0 for moveout: the source is the WOS).
    pub containers_in: u64,
    /// Containers produced.
    pub containers_out: u64,
    /// Cluster epoch when the operation ran.
    pub epoch: u64,
    pub dur_us: u64,
}

/// Outcome of one [`Cluster::mover_pass`] tick.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MoverPassReport {
    /// Rows drained WOS → ROS.
    pub moveout_rows: usize,
    /// Stores a moveout actually ran on.
    pub moveout_runs: usize,
    /// Mergeout operations performed.
    pub merges: usize,
    /// Rows rewritten by mergeout.
    pub merged_rows: usize,
    /// Containers consumed by mergeout.
    pub containers_merged: usize,
    /// Tables skipped because the pool was full or the lock was busy.
    pub sheds: usize,
    /// True when the seeded fault injector killed part of the pass.
    pub crashed: bool,
}

impl MoverPassReport {
    /// Did this tick change any store at all?
    pub fn did_work(&self) -> bool {
        self.moveout_rows > 0 || self.merges > 0
    }
}

/// Per-cluster mover state: the bounded operation log and the
/// background-thread handle.
#[derive(Default)]
pub(crate) struct MoverState {
    ops: Mutex<VecDeque<MoverOp>>,
    seq: AtomicU64,
    stop: AtomicBool,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl MoverState {
    fn log(&self, mut op: MoverOp) {
        op.seq = self.seq.fetch_add(1, Ordering::AcqRel);
        let mut ops = self.ops.lock();
        if ops.len() == OP_LOG_CAP {
            ops.pop_front();
        }
        ops.push_back(op);
    }
}

impl Cluster {
    /// One synchronous tuple-mover tick: for every table (sorted, for
    /// deterministic op logs) and node, drain committed WOS rows and
    /// compact small ROS containers. Callers drive this directly in
    /// tests and benches; [`Cluster::start_mover`] drives it from a
    /// background thread.
    pub fn mover_pass(&self) -> MoverPassReport {
        let mut report = MoverPassReport::default();
        // Admission: maintenance must not starve foreground queries.
        let _guard = match self.resource_pool(MOVER_POOL) {
            Some(pool) => match pool.try_admit() {
                Ok(guard) => Some(guard),
                Err(_) => {
                    obs::global().incr("tm.sheds");
                    report.sheds += 1;
                    return report;
                }
            },
            None => None,
        };
        let mut tables: BTreeSet<String> = BTreeSet::new();
        for node in self.node_states() {
            tables.extend(node.stores.read().keys().cloned());
        }
        for table in &tables {
            self.mover_table_pass(table, &mut report);
        }
        report
    }

    /// Move and merge one table across all nodes, under its shared
    /// table lock.
    fn mover_table_pass(&self, table: &str, report: &mut MoverPassReport) {
        // Shared vs. the exclusive lock DELETE/UPDATE hold: a mutation
        // statement's RowLocs stay valid for its whole transaction, and
        // the mover waits its turn rather than relocating under it.
        let txn = self.alloc_txn_id();
        if self
            .locks
            .acquire(txn, table, LockMode::Shared, self.config().lock_timeout)
            .is_err()
        {
            obs::global().incr("tm.sheds");
            report.sheds += 1;
            return;
        }
        for (idx, node) in self.node_states().into_iter().enumerate() {
            // The seeded crash: die before touching this store. Stores
            // already processed keep their (complete, self-consistent)
            // new containers; this one is simply left for a later pass.
            if self.faults().should_fire(FaultSite::Moveout, idx) {
                report.crashed = true;
                break;
            }
            let mut stores = node.stores.write();
            let Some(store) = stores.get_mut(table) else {
                continue;
            };
            let moved = self.moveout_store_recorded(idx, table, store);
            if moved > 0 {
                report.moveout_rows += moved;
                report.moveout_runs += 1;
            }
            let started = Instant::now();
            let outcome = store.mergeout(self.config().mergeout_min_containers);
            if outcome.merges > 0 {
                let dur = started.elapsed();
                obs::global().add("tm.mergeout_runs", outcome.merges as u64);
                obs::global().add("tm.rows_merged", outcome.rows as u64);
                obs::global().add("tm.containers_merged", outcome.containers_in as u64);
                obs::global().record_time("tm.mergeout_us", dur);
                self.mover.log(MoverOp {
                    seq: 0,
                    op: "mergeout",
                    node: idx,
                    table: table.to_string(),
                    rows: outcome.rows as u64,
                    containers_in: outcome.containers_in as u64,
                    containers_out: outcome.merges as u64,
                    epoch: self.current_epoch(),
                    dur_us: dur.as_micros() as u64,
                });
                report.merges += outcome.merges;
                report.merged_rows += outcome.rows;
                report.containers_merged += outcome.containers_in;
            }
        }
        self.locks.release_all(txn);
    }

    /// Run moveout on one store (caller holds the store map's write
    /// lock) and record it: `tm.*` counters, timer, and the op log.
    /// Shared by the mover pass and post-commit maintenance so every
    /// moveout — however triggered — shows up in `dc_tuple_mover`.
    pub(crate) fn moveout_store_recorded(
        &self,
        node: usize,
        table: &str,
        store: &mut NodeTableStore,
    ) -> usize {
        if store.wos_committed_rows() == 0 {
            return 0;
        }
        let started = Instant::now();
        let moved = store.moveout();
        if moved == 0 {
            return 0;
        }
        let dur = started.elapsed();
        obs::global().incr("tm.moveout_runs");
        obs::global().add("tm.rows_moved", moved as u64);
        obs::global().record_time("tm.moveout_us", dur);
        self.mover.log(MoverOp {
            seq: 0,
            op: "moveout",
            node,
            table: table.to_string(),
            rows: moved as u64,
            containers_in: 0,
            containers_out: 1,
            epoch: self.current_epoch(),
            dur_us: dur.as_micros() as u64,
        });
        moved
    }

    /// Run the tuple mover's mergeout on every node-table store
    /// (unconditionally, no pool/lock gating — the test and bench
    /// counterpart of [`Cluster::moveout_all`]). Returns rows rewritten.
    pub fn mergeout_all(&self) -> usize {
        let mut rows = 0;
        for (idx, node) in self.node_states().into_iter().enumerate() {
            let mut stores = node.stores.write();
            let mut tables: Vec<String> = stores.keys().cloned().collect();
            tables.sort();
            for table in tables {
                let Some(store) = stores.get_mut(&table) else {
                    continue;
                };
                let started = Instant::now();
                let outcome = store.mergeout(self.config().mergeout_min_containers);
                if outcome.merges > 0 {
                    let dur = started.elapsed();
                    obs::global().add("tm.mergeout_runs", outcome.merges as u64);
                    obs::global().add("tm.rows_merged", outcome.rows as u64);
                    obs::global().add("tm.containers_merged", outcome.containers_in as u64);
                    obs::global().record_time("tm.mergeout_us", dur);
                    self.mover.log(MoverOp {
                        seq: 0,
                        op: "mergeout",
                        node: idx,
                        table,
                        rows: outcome.rows as u64,
                        containers_in: outcome.containers_in as u64,
                        containers_out: outcome.merges as u64,
                        epoch: self.current_epoch(),
                        dur_us: dur.as_micros() as u64,
                    });
                    rows += outcome.rows;
                }
            }
        }
        rows
    }

    /// The retained mover operation log, oldest first (what
    /// `dc_tuple_mover` serves).
    pub fn mover_ops(&self) -> Vec<MoverOp> {
        self.mover.ops.lock().iter().cloned().collect()
    }

    /// Start the background mover thread, ticking [`Cluster::mover_pass`]
    /// every `interval`. Idempotent while running. The thread holds only
    /// a weak reference, so dropping the last cluster handle also ends
    /// it; call [`Cluster::stop_mover`] for a deterministic shutdown.
    pub fn start_mover(self: &Arc<Cluster>, interval: Duration) {
        let mut thread = self.mover.thread.lock();
        if thread.is_some() {
            return;
        }
        self.mover.stop.store(false, Ordering::Release);
        let weak = Arc::downgrade(self);
        *thread = Some(std::thread::spawn(move || loop {
            std::thread::sleep(interval);
            let Some(cluster) = weak.upgrade() else {
                break;
            };
            if cluster.mover.stop.load(Ordering::Acquire) {
                break;
            }
            cluster.mover_pass();
        }));
    }

    /// Stop the background mover thread and wait for it to exit. No-op
    /// when it is not running.
    pub fn stop_mover(&self) {
        self.mover.stop.store(true, Ordering::Release);
        let thread = self.mover.thread.lock().take();
        if let Some(thread) = thread {
            let _ = thread.join();
        }
    }
}
