//! Per-container column statistics: zone maps, null counts, and a
//! deterministic NDV sketch.
//!
//! Statistics are computed once, at ROS container creation (COPY
//! DIRECT and moveout), from the raw column values before encoding.
//! Containers are immutable after creation except for delete marks and
//! commit stamps, so the stats are a *superset* description of every
//! row any snapshot can see in the container — which is exactly the
//! conservative direction data skipping needs: a container whose zone
//! maps prove "no row can match" can be skipped for every snapshot.
//!
//! The NDV estimate is a KMV (k-minimum-values) sketch over the
//! deterministic FNV-1a segmentation hash: no ambient entropy, same
//! answer on every run (fabriclint's determinism rule applies to
//! storage metadata as much as to the engines).

use common::expr::BinaryOp;
use common::{Expr, Value};

/// Sketch size: the k smallest distinct value hashes kept per column.
const KMV_K: usize = 64;

/// Statistics for one column of one ROS container.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Smallest / largest non-null value, when every non-null value in
    /// the column is mutually comparable (one `sql_cmp` type class).
    /// `None` for an all-null column or a mixed-type one — mixed
    /// columns carry no usable zone map.
    pub min: Option<Value>,
    pub max: Option<Value>,
    pub null_count: u64,
    /// Estimated number of distinct non-null values.
    pub ndv: u64,
}

impl ColumnStats {
    fn compute(values: &[Value]) -> ColumnStats {
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        let mut usable = true;
        let mut null_count = 0u64;
        let mut sketch = KmvSketch::new();
        for v in values {
            if v.is_null() {
                null_count += 1;
                continue;
            }
            sketch.observe(common::hash::segmentation_hash(std::slice::from_ref(v)));
            if !usable {
                continue;
            }
            match (&min, &max) {
                (None, _) => {
                    min = Some(v.clone());
                    max = Some(v.clone());
                }
                (Some(lo), Some(hi)) => {
                    match (v.sql_cmp(lo), v.sql_cmp(hi)) {
                        (Some(a), Some(b)) => {
                            if a == std::cmp::Ordering::Less {
                                min = Some(v.clone());
                            }
                            if b == std::cmp::Ordering::Greater {
                                max = Some(v.clone());
                            }
                        }
                        // Incomparable with the running bounds (mixed
                        // type classes, or a NaN): the zone map is
                        // unusable for this column.
                        _ => {
                            usable = false;
                            min = None;
                            max = None;
                        }
                    }
                }
                _ => unreachable!("min and max are set together"),
            }
        }
        ColumnStats {
            min,
            max,
            null_count,
            ndv: sketch.estimate(),
        }
    }
}

/// Statistics for one ROS container: per-column stats plus the span of
/// segmentation hashes, which lets a scan prove a container lies fully
/// inside (or outside) a pushed-down hash range.
#[derive(Debug, Clone, PartialEq)]
pub struct ContainerStats {
    pub row_count: u64,
    pub hash_min: u64,
    pub hash_max: u64,
    pub columns: Vec<ColumnStats>,
}

impl ContainerStats {
    /// Compute stats from the raw (pre-encoding) column vectors and the
    /// per-row segmentation hashes. Timed under `stats.build_us`.
    pub fn compute(column_values: &[Vec<Value>], hashes: &[u64]) -> ContainerStats {
        let started = std::time::Instant::now();
        let stats = ContainerStats {
            row_count: hashes.len() as u64,
            hash_min: hashes.iter().copied().min().unwrap_or(u64::MAX),
            hash_max: hashes.iter().copied().max().unwrap_or(0),
            columns: column_values
                .iter()
                .map(|vals| ColumnStats::compute(vals))
                .collect(),
        };
        obs::global().record_time("stats.build_us", started.elapsed());
        stats
    }

    fn column(&self, idx: usize) -> Option<&ColumnStats> {
        self.columns.get(idx)
    }
}

/// A deterministic KMV distinct-count sketch: keep the `KMV_K` smallest
/// distinct hashes; if fewer were seen the count is exact, otherwise
/// estimate `(k-1) / (kth_min / 2^64)`.
struct KmvSketch {
    /// Sorted ascending, deduplicated, at most `KMV_K` entries.
    mins: Vec<u64>,
}

impl KmvSketch {
    fn new() -> KmvSketch {
        KmvSketch {
            mins: Vec::with_capacity(KMV_K + 1),
        }
    }

    fn observe(&mut self, h: u64) {
        match self.mins.binary_search(&h) {
            Ok(_) => {}
            Err(pos) => {
                if pos < KMV_K {
                    self.mins.insert(pos, h);
                    self.mins.truncate(KMV_K);
                }
            }
        }
    }

    fn estimate(&self) -> u64 {
        if self.mins.len() < KMV_K {
            return self.mins.len() as u64;
        }
        // fabriclint: allow(panic-hygiene): len == KMV_K > 0 here
        let kth = *self.mins.last().expect("sketch is full") as f64;
        if kth <= 0.0 {
            return self.mins.len() as u64;
        }
        (((KMV_K - 1) as f64) / (kth / (u64::MAX as f64 + 1.0))).round() as u64
    }
}

// ---------------------------------------------------------------------
// Zone-map analysis
// ---------------------------------------------------------------------
//
// `analyze` decides, from container stats alone, whether a bound
// predicate can possibly match any row of the container:
//
//   Some(true)   provably matches no row, AND evaluation is provably
//                error-free for every possible row — safe to skip;
//   Some(false)  provably error-free, may match;
//   None         unsupported shape or possibly-erroring subtree.
//
// Error-freeness is the load-bearing half: `AND`/`OR` evaluate both
// sides and propagate errors, so skipping a container on one side's
// zone map is only sound when the *whole* tree is proven unable to
// error. Only boolean-or-NULL-valued, error-free shapes are analyzed:
// column/literal comparisons (never error), IS [NOT] NULL over columns
// and literals, boolean/NULL literals, and AND/OR/NOT over those.

/// Shape-only check: does `analyze` support this expression (i.e. is
/// it provably error-free for every input row)? Independent of any
/// container's stats, so the scan planner can decide conjunct
/// reordering once per scan.
pub fn analyzable(expr: &Expr) -> bool {
    match expr {
        Expr::Literal(Value::Boolean(_)) | Expr::Literal(Value::Null) => true,
        Expr::IsNull(inner) | Expr::IsNotNull(inner) => {
            matches!(**inner, Expr::ColumnIdx(_) | Expr::Literal(_))
        }
        Expr::Not(inner) => analyzable(inner),
        Expr::Binary { left, op, right } => match op {
            BinaryOp::And | BinaryOp::Or => analyzable(left) && analyzable(right),
            BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq => {
                matches!(**left, Expr::ColumnIdx(_) | Expr::Literal(_))
                    && matches!(**right, Expr::ColumnIdx(_) | Expr::Literal(_))
            }
            _ => false,
        },
        _ => false,
    }
}

/// Can the container be skipped for this (bound) predicate? True only
/// when the analysis proves both "cannot match" and "cannot error".
pub fn container_cannot_match(expr: &Expr, stats: &ContainerStats) -> bool {
    analyze(expr, stats) == Some(true)
}

fn analyze(expr: &Expr, stats: &ContainerStats) -> Option<bool> {
    match expr {
        Expr::Literal(Value::Boolean(b)) => Some(!*b),
        Expr::Literal(Value::Null) => Some(true),
        Expr::IsNull(inner) => match &**inner {
            Expr::ColumnIdx(i) => {
                let cs = stats.column(*i)?;
                Some(cs.null_count == 0)
            }
            Expr::Literal(v) => Some(!v.is_null()),
            _ => None,
        },
        Expr::IsNotNull(inner) => match &**inner {
            Expr::ColumnIdx(i) => {
                let cs = stats.column(*i)?;
                Some(cs.null_count == stats.row_count)
            }
            Expr::Literal(v) => Some(v.is_null()),
            _ => None,
        },
        Expr::Not(inner) => {
            // NOT flips true/false but maps NULL to NULL; "inner never
            // matches" says nothing about NOT(inner), so the only claim
            // that survives is error-freeness.
            analyze(inner, stats)?;
            Some(false)
        }
        Expr::Binary { left, op, right } => match op {
            BinaryOp::And => {
                let a = analyze(left, stats)?;
                let b = analyze(right, stats)?;
                Some(a || b)
            }
            BinaryOp::Or => {
                let a = analyze(left, stats)?;
                let b = analyze(right, stats)?;
                Some(a && b)
            }
            BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq => match (&**left, &**right) {
                (Expr::ColumnIdx(i), Expr::Literal(v)) => Some(range_cannot_match(
                    *op,
                    stats.column(*i)?,
                    stats.row_count,
                    v,
                )),
                (Expr::Literal(v), Expr::ColumnIdx(i)) => Some(range_cannot_match(
                    flip(*op),
                    stats.column(*i)?,
                    stats.row_count,
                    v,
                )),
                // Literal-vs-literal and column-vs-column comparisons
                // never error; no skip claim from zone maps alone.
                (Expr::ColumnIdx(_) | Expr::Literal(_), Expr::ColumnIdx(_) | Expr::Literal(_)) => {
                    Some(false)
                }
                _ => None,
            },
            _ => None,
        },
        _ => None,
    }
}

/// Mirror a comparison so the column lands on the left: `5 < c` is
/// `c > 5`.
fn flip(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::GtEq => BinaryOp::LtEq,
        other => other,
    }
}

/// Decide `column <op> literal` against one column's zone map: true
/// when no row of the container can satisfy it.
fn range_cannot_match(op: BinaryOp, cs: &ColumnStats, row_count: u64, lit: &Value) -> bool {
    use std::cmp::Ordering::{Equal, Greater, Less};
    // Comparisons against NULL are NULL: no row matches.
    if lit.is_null() {
        return true;
    }
    // An all-null column compares to NULL everywhere.
    if cs.null_count == row_count {
        return true;
    }
    let (Some(min), Some(max)) = (&cs.min, &cs.max) else {
        // Mixed-type column: no zone map, no claim.
        return false;
    };
    let (Some(lo), Some(hi)) = (lit.sql_cmp(min), lit.sql_cmp(max)) else {
        // The literal is incomparable with the column's type class
        // (or is NaN): every comparison evaluates to NULL.
        return true;
    };
    match op {
        BinaryOp::Eq => lo == Less || hi == Greater,
        BinaryOp::NotEq => lo == Equal && hi == Equal,
        // col < lit needs min < lit.
        BinaryOp::Lt => lo != Greater,
        BinaryOp::LtEq => lo == Less,
        // col > lit needs max > lit.
        BinaryOp::Gt => hi != Less,
        BinaryOp::GtEq => hi == Greater,
        _ => false,
    }
}

// ---------------------------------------------------------------------
// Selectivity estimation
// ---------------------------------------------------------------------

/// Default selectivity for shapes the zone maps say nothing about.
pub const DEFAULT_SELECTIVITY: f64 = 0.5;

/// Estimate the fraction of the container's rows a (bound) predicate
/// keeps, from zone maps and the NDV sketch. Pure planning input:
/// wrong estimates cost performance, never correctness.
pub fn estimate_selectivity(expr: &Expr, stats: &ContainerStats) -> f64 {
    match expr {
        Expr::Literal(Value::Boolean(b)) => {
            if *b {
                1.0
            } else {
                0.0
            }
        }
        Expr::Literal(Value::Null) => 0.0,
        Expr::IsNull(inner) => match &**inner {
            Expr::ColumnIdx(i) => stats
                .column(*i)
                .map(|cs| ratio(cs.null_count, stats.row_count))
                .unwrap_or(DEFAULT_SELECTIVITY),
            _ => DEFAULT_SELECTIVITY,
        },
        Expr::IsNotNull(inner) => match &**inner {
            Expr::ColumnIdx(i) => stats
                .column(*i)
                .map(|cs| 1.0 - ratio(cs.null_count, stats.row_count))
                .unwrap_or(DEFAULT_SELECTIVITY),
            _ => DEFAULT_SELECTIVITY,
        },
        Expr::Not(inner) => 1.0 - estimate_selectivity(inner, stats),
        Expr::Binary { left, op, right } => match op {
            BinaryOp::And => estimate_selectivity(left, stats) * estimate_selectivity(right, stats),
            BinaryOp::Or => {
                let a = estimate_selectivity(left, stats);
                let b = estimate_selectivity(right, stats);
                (a + b - a * b).clamp(0.0, 1.0)
            }
            BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq => match (&**left, &**right) {
                (Expr::ColumnIdx(i), Expr::Literal(v)) => {
                    comparison_selectivity(*op, stats.column(*i), stats.row_count, v)
                }
                (Expr::Literal(v), Expr::ColumnIdx(i)) => {
                    comparison_selectivity(flip(*op), stats.column(*i), stats.row_count, v)
                }
                _ => DEFAULT_SELECTIVITY,
            },
            _ => DEFAULT_SELECTIVITY,
        },
        _ => DEFAULT_SELECTIVITY,
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn comparison_selectivity(
    op: BinaryOp,
    cs: Option<&ColumnStats>,
    row_count: u64,
    lit: &Value,
) -> f64 {
    let Some(cs) = cs else {
        return DEFAULT_SELECTIVITY;
    };
    if range_cannot_match(op, cs, row_count, lit) {
        return 0.0;
    }
    let non_null = 1.0 - ratio(cs.null_count, row_count);
    match op {
        BinaryOp::Eq => (1.0 / cs.ndv.max(1) as f64).min(non_null),
        BinaryOp::NotEq => non_null * (1.0 - 1.0 / cs.ndv.max(1) as f64),
        BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq => {
            // Numeric zone maps give a range-overlap fraction; other
            // type classes fall back to a third.
            let frac = match (&cs.min, &cs.max) {
                (Some(min), Some(max)) => match (min.as_f64(), max.as_f64(), lit.as_f64()) {
                    (Ok(lo), Ok(hi), Ok(v)) if hi > lo => {
                        let below = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
                        if matches!(op, BinaryOp::Lt | BinaryOp::LtEq) {
                            below
                        } else {
                            1.0 - below
                        }
                    }
                    _ => 1.0 / 3.0,
                },
                _ => 1.0 / 3.0,
            };
            non_null * frac
        }
        _ => DEFAULT_SELECTIVITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::Expr as E;

    fn col_vals(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::Int64(v)).collect()
    }

    fn stats_for(vals: Vec<Vec<Value>>, hashes: &[u64]) -> ContainerStats {
        ContainerStats::compute(&vals, hashes)
    }

    fn idx(i: usize) -> E {
        E::ColumnIdx(i)
    }

    fn lit(v: impl Into<Value>) -> E {
        E::Literal(v.into())
    }

    #[test]
    fn zone_map_min_max_nulls() {
        let s = stats_for(
            vec![vec![
                Value::Int64(5),
                Value::Null,
                Value::Int64(2),
                Value::Int64(9),
            ]],
            &[10, 20, 30, 40],
        );
        let cs = &s.columns[0];
        assert_eq!(cs.min, Some(Value::Int64(2)));
        assert_eq!(cs.max, Some(Value::Int64(9)));
        assert_eq!(cs.null_count, 1);
        assert_eq!(cs.ndv, 3);
        assert_eq!((s.hash_min, s.hash_max), (10, 40));
    }

    #[test]
    fn mixed_type_column_has_no_zone_map() {
        let s = stats_for(
            vec![vec![Value::Int64(1), Value::Varchar("x".into())]],
            &[1, 2],
        );
        assert_eq!(s.columns[0].min, None);
        assert_eq!(s.columns[0].max, None);
        // And no skip claim is made from it.
        let e = idx(0).eq(lit(99i64));
        assert!(!container_cannot_match(&e, &s));
    }

    #[test]
    fn range_pruning_rules() {
        let s = stats_for(vec![col_vals(&[10, 20, 30])], &[1, 2, 3]);
        // Out of range on both sides.
        assert!(container_cannot_match(&idx(0).eq(lit(5i64)), &s));
        assert!(container_cannot_match(&idx(0).eq(lit(35i64)), &s));
        assert!(!container_cannot_match(&idx(0).eq(lit(20i64)), &s));
        // Inequalities.
        assert!(container_cannot_match(&idx(0).lt(lit(10i64)), &s));
        assert!(!container_cannot_match(&idx(0).lt(lit(11i64)), &s));
        assert!(container_cannot_match(&idx(0).gt(lit(30i64)), &s));
        assert!(!container_cannot_match(&idx(0).gt(lit(29i64)), &s));
        assert!(container_cannot_match(&idx(0).lt_eq(lit(9i64)), &s));
        assert!(container_cannot_match(&idx(0).gt_eq(lit(31i64)), &s));
        // Literal on the left mirrors.
        assert!(container_cannot_match(&lit(5i64).gt(idx(0)), &s));
        // Incomparable literal class: always NULL, skip.
        assert!(container_cannot_match(&idx(0).eq(lit("abc")), &s));
        // NULL literal: always NULL, skip.
        assert!(container_cannot_match(&idx(0).eq(lit(Value::Null)), &s));
    }

    #[test]
    fn null_rules() {
        let no_nulls = stats_for(vec![col_vals(&[1, 2])], &[1, 2]);
        assert!(container_cannot_match(
            &E::IsNull(Box::new(idx(0))),
            &no_nulls
        ));
        assert!(!container_cannot_match(
            &E::IsNotNull(Box::new(idx(0))),
            &no_nulls
        ));
        let all_nulls = stats_for(vec![vec![Value::Null, Value::Null]], &[1, 2]);
        assert!(container_cannot_match(
            &E::IsNotNull(Box::new(idx(0))),
            &all_nulls
        ));
        assert!(container_cannot_match(&idx(0).lt(lit(5i64)), &all_nulls));
    }

    #[test]
    fn conjunction_needs_both_sides_error_free() {
        let s = stats_for(vec![col_vals(&[10, 20])], &[1, 2]);
        // One prunable side, other side analyzable: skip.
        let and_ok = idx(0).eq(lit(5i64)).and(idx(0).gt(lit(0i64)));
        assert!(container_cannot_match(&and_ok, &s));
        // One prunable side, other side may error (arithmetic): no
        // skip, because AND evaluates both sides and errors propagate.
        let may_err = E::Binary {
            left: Box::new(idx(0)),
            op: BinaryOp::Add,
            right: Box::new(lit(1i64)),
        }
        .gt(lit(0i64));
        let and_bad = idx(0).eq(lit(5i64)).and(may_err.clone());
        assert!(!analyzable(&and_bad));
        assert!(!container_cannot_match(&and_bad, &s));
        // OR skips only when both sides are prunable.
        let or_half = idx(0).eq(lit(5i64)).or(idx(0).eq(lit(10i64)));
        assert!(!container_cannot_match(&or_half, &s));
        let or_both = idx(0).eq(lit(5i64)).or(idx(0).eq(lit(99i64)));
        assert!(container_cannot_match(&or_both, &s));
        // NOT of a prunable inner is NOT skippable (NULL stays NULL).
        let not_e = E::Not(Box::new(idx(0).eq(lit(5i64))));
        assert!(!container_cannot_match(&not_e, &s));
        assert!(analyzable(&not_e));
    }

    #[test]
    fn ndv_sketch_is_deterministic_and_plausible() {
        let many: Vec<Value> = (0..10_000).map(Value::Int64).collect();
        let a = ColumnStats::compute(&many);
        let b = ColumnStats::compute(&many);
        assert_eq!(a.ndv, b.ndv, "no ambient entropy");
        assert!(
            a.ndv > 5_000 && a.ndv < 20_000,
            "KMV estimate off: {}",
            a.ndv
        );
        let few: Vec<Value> = (0..10_000).map(|i| Value::Int64(i % 7)).collect();
        assert_eq!(ColumnStats::compute(&few).ndv, 7, "small NDV is exact");
    }

    #[test]
    fn selectivity_orders_conjuncts_sensibly() {
        let vals: Vec<Value> = (0..1000).map(Value::Int64).collect();
        let s = stats_for(vec![vals.clone(), vals], &[1, 2, 3]);
        let eq = estimate_selectivity(&idx(0).eq(lit(5i64)), &s);
        let half = estimate_selectivity(&idx(1).lt(lit(500i64)), &s);
        assert!(eq < 0.01, "point lookup on ~1000 NDV: {eq}");
        assert!((half - 0.5).abs() < 0.1, "mid-range scan: {half}");
        assert!(
            estimate_selectivity(&idx(0).gt(lit(2000i64)), &s) == 0.0,
            "prunable conjunct estimates zero"
        );
    }
}
