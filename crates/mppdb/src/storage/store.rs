//! The per-node, per-table MVCC store: WOS + ROS with pending-until-
//! commit visibility and delete vectors.

use common::agg::{AggFunc, GroupedAccs};
use common::expr::BinaryOp;
use common::{DataType, Expr, Result, Row, Value};

use crate::segmentation::HashRange;
use crate::storage::batch::ColumnBatch;
use crate::storage::encoding::{encode_auto, EncodedColumn};
use crate::storage::stats::{
    analyzable, container_cannot_match, estimate_selectivity, ColumnStats, ContainerStats,
};

/// Commit state of a stored row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitState {
    /// Written by a still-open transaction; visible only to it.
    Pending(u64),
    /// Committed at the given epoch.
    Committed(u64),
}

/// Delete state of a stored row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeleteState {
    NotDeleted,
    /// Delete staged by an open transaction.
    Pending(u64),
    /// Delete committed at the given epoch.
    Committed(u64),
}

/// Location of a row within a node-table store, stable while the store's
/// lock is held (the tuple mover may relocate rows between statements).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowLoc {
    Wos(usize),
    Ros { container: u64, idx: usize },
}

/// A row surfaced by a scan.
#[derive(Debug, Clone)]
pub struct VisibleRow {
    pub loc: RowLoc,
    pub row: Row,
    /// Segmentation hash computed at insert time.
    pub hash: u64,
}

/// One row's full MVCC state, exported for node recovery. Opaque
/// outside the store: recovery moves batches between stores wholesale.
#[derive(Debug, Clone)]
pub(crate) struct ExportedRow {
    row: Row,
    hash: u64,
    commit: CommitState,
    delete: DeleteState,
}

#[derive(Debug)]
struct WosRow {
    row: Row,
    hash: u64,
    commit: CommitState,
    delete: DeleteState,
}

#[derive(Debug)]
struct RosContainer {
    id: u64,
    columns: Vec<EncodedColumn>,
    hashes: Vec<u64>,
    commits: Vec<CommitState>,
    deletes: Vec<DeleteState>,
    /// Zone maps, null counts, and NDV sketches computed at creation;
    /// immutable for the container's lifetime.
    stats: ContainerStats,
}

impl RosContainer {
    fn row(&self, idx: usize) -> Row {
        Row::new(self.columns.iter().map(|c| c.get(idx)).collect())
    }

    fn len(&self) -> usize {
        self.hashes.len()
    }
}

/// Parameters of a vectorized scan ([`NodeTableStore::scan_batch`]).
///
/// Everything the engine pushes down to the serving node in one place:
/// snapshot, segmentation restriction, row window, predicate, and
/// projection. Bundled as a struct so the scan entry point stays a
/// two-argument call as pushdowns grow.
#[derive(Clone, Copy, Default)]
pub struct BatchScan<'a> {
    /// Epoch to read as of.
    pub as_of: u64,
    /// Open transaction id, for read-your-writes visibility.
    pub my_txn: Option<u64>,
    /// Restrict to rows whose segmentation hash falls in the range.
    pub hash_range: Option<&'a HashRange>,
    /// Window `[start, end)` over the rows surviving visibility and the
    /// hash range, in stable scan order (the connector's synthetic
    /// ranges for unsegmented tables).
    pub row_range: Option<(u64, u64)>,
    /// Filter with column references bound to table ordinals
    /// ([`Expr::ColumnIdx`]); evaluated before projection decode.
    pub predicate: Option<&'a Expr>,
    /// Table-schema ordinals to materialize, in output order; `None`
    /// means all columns.
    pub projection: Option<&'a [usize]>,
    /// Data types of the output (projected) columns, in output order.
    pub dtypes: &'a [DataType],
    /// Disable zone-map container/run skipping and stats-driven
    /// conjunct reordering (the ablation baseline and the differential
    /// tests' strict-accounting mode).
    pub no_skip: bool,
}

/// What a vectorized scan returns: the materialized batch plus the
/// per-stage row counts the query layer feeds into cost accounting.
#[derive(Debug)]
pub struct ScanOutput {
    pub batch: ColumnBatch,
    /// Visible rows examined (before the hash range) — every one of
    /// these pays a visibility check and a hash probe.
    pub examined: u64,
    /// Rows surviving the hash range and row window (before the
    /// predicate) — the filter's evaluation count.
    pub scanned: u64,
    /// Values actually decoded from encoded columns, counting one per
    /// RLE run / dictionary code the predicate touched rather than one
    /// per row. The late-materialization win is `examined *
    /// column_count - decoded`.
    pub decoded: u64,
    /// Whole ROS containers skipped because their zone maps prove the
    /// predicate cannot match (and cannot error).
    pub containers_skipped: u64,
    /// Rows eliminated by metadata alone: all rows of skipped
    /// containers, plus rows of RLE runs rejected run-at-a-time.
    pub rows_skipped: u64,
}

/// What [`NodeTableStore::scan_aggregate`] returns: per-group partial
/// accumulators plus the same cost accounting as [`ScanOutput`].
pub struct AggScanOutput {
    pub accs: GroupedAccs,
    pub examined: u64,
    pub scanned: u64,
    pub decoded: u64,
    pub containers_skipped: u64,
    pub rows_skipped: u64,
    /// Containers answered from zone maps alone, with no decode.
    pub stats_answered: u64,
}

/// One ROS container's statistics row set, as surfaced by the
/// `dc_column_stats` system table.
#[derive(Debug, Clone)]
pub struct ContainerInfo {
    pub id: u64,
    pub row_count: u64,
    /// Encoding name per column, parallel to `columns`.
    pub encodings: Vec<&'static str>,
    pub columns: Vec<ColumnStats>,
}

/// Evaluate a bound predicate over one referenced column of a
/// container, encoding-aware: RLE evaluates once per touched run and
/// dictionary once per touched code (lazily, in row order, so the
/// first evaluation error surfaces at the same row as row-at-a-time
/// evaluation would). Returns the surviving subset of `sel`.
///
/// The RLE arm walks runs, not rows: a rejected run's selected rows
/// are dropped wholesale (counted in `rows_skipped`) without touching
/// them individually — the run-granular analog of container skipping.
fn filter_single_column(
    col: &EncodedColumn,
    col_idx: usize,
    pred: &Expr,
    scratch: &mut Row,
    sel: &[u32],
    decoded: &mut u64,
    rows_skipped: &mut u64,
) -> Result<Vec<u32>> {
    let mut out = Vec::with_capacity(sel.len());
    match col {
        EncodedColumn::Plain(values) => {
            for &p in sel {
                scratch.set(col_idx, values[p as usize].clone());
                *decoded += 1;
                if pred.matches(scratch)? {
                    out.push(p);
                }
            }
        }
        EncodedColumn::Rle(runs) => {
            let mut i = 0usize; // cursor into sel
            let mut run_start = 0usize;
            for (value, len) in runs {
                if i == sel.len() {
                    break;
                }
                let run_end = run_start + *len as usize;
                let begin = i;
                while i < sel.len() && (sel[i] as usize) < run_end {
                    i += 1;
                }
                run_start = run_end;
                if begin == i {
                    continue; // no selected row in this run
                }
                scratch.set(col_idx, value.clone());
                *decoded += 1;
                if pred.matches(scratch)? {
                    out.extend_from_slice(&sel[begin..i]);
                } else {
                    *rows_skipped += (i - begin) as u64;
                }
            }
        }
        EncodedColumn::Dictionary { dict, codes } => {
            let mut memo: Vec<Option<bool>> = vec![None; dict.len()];
            for &p in sel {
                let code = codes[p as usize] as usize;
                let keep = match memo[code] {
                    Some(k) => k,
                    None => {
                        scratch.set(col_idx, dict[code].clone());
                        *decoded += 1;
                        let k = pred.matches(scratch)?;
                        memo[code] = Some(k);
                        k
                    }
                };
                if keep {
                    out.push(p);
                }
            }
        }
    }
    Ok(out)
}

/// Per-scan predicate plan: the referenced columns, plus — when every
/// top-level conjunct is provably error-free — the conjunct list for
/// stats-driven reordering.
struct PredPlan<'a> {
    pred: &'a Expr,
    /// All referenced table ordinals, sorted.
    cols: Vec<usize>,
    /// Top-level AND conjuncts with their referenced columns. Present
    /// only when there are at least two and all are [`analyzable`]
    /// (error-free): that is what makes evaluating them in any order,
    /// short-circuiting on an empty selection, semantics-preserving.
    conjuncts: Option<Vec<(&'a Expr, Vec<usize>)>>,
}

impl<'a> PredPlan<'a> {
    fn new(pred: &'a Expr, allow_reorder: bool) -> PredPlan<'a> {
        let mut cols = Vec::new();
        pred.referenced_indices(&mut cols);
        cols.sort_unstable();
        let mut parts: Vec<&Expr> = Vec::new();
        split_conjuncts(pred, &mut parts);
        let conjuncts = if allow_reorder && parts.len() > 1 && parts.iter().all(|e| analyzable(e)) {
            Some(
                parts
                    .into_iter()
                    .map(|e| {
                        let mut c = Vec::new();
                        e.referenced_indices(&mut c);
                        c.sort_unstable();
                        (e, c)
                    })
                    .collect(),
            )
        } else {
            None
        };
        PredPlan {
            pred,
            cols,
            conjuncts,
        }
    }

    /// Conjunct evaluation order for one container: most selective
    /// first (zone-map estimate), then fewest referenced columns, then
    /// textual order.
    fn order_for(cj: &[(&'a Expr, Vec<usize>)], stats: &ContainerStats) -> Vec<usize> {
        let sel: Vec<f64> = cj
            .iter()
            .map(|(e, _)| estimate_selectivity(e, stats))
            .collect();
        let mut order: Vec<usize> = (0..cj.len()).collect();
        order.sort_by(|&a, &b| {
            sel[a]
                .partial_cmp(&sel[b])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(cj[a].1.len().cmp(&cj[b].1.len()))
                .then(a.cmp(&b))
        });
        if order.iter().enumerate().any(|(i, &j)| i != j) {
            obs::global().add("planner.conjuncts_reordered", 1);
        }
        order
    }
}

fn split_conjuncts<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    match e {
        Expr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } => {
            split_conjuncts(left, out);
            split_conjuncts(right, out);
        }
        other => out.push(other),
    }
}

/// Stage-3 filter step: narrow `sel` by one expression, dispatching on
/// how many columns it references (constant / single-column encoding-
/// aware / multi-column gather).
fn apply_filter(
    c: &RosContainer,
    expr: &Expr,
    cols: &[usize],
    scratch: &mut Row,
    sel: Vec<u32>,
    decoded: &mut u64,
    rows_skipped: &mut u64,
) -> Result<Vec<u32>> {
    match cols {
        [] => {
            // Constant expression: evaluate once. A conjunct only reads
            // the ordinals it references, so leftover scratch values
            // from earlier conjuncts are invisible to it.
            if expr.matches(scratch)? {
                Ok(sel)
            } else {
                Ok(Vec::new())
            }
        }
        [single] => filter_single_column(
            &c.columns[*single],
            *single,
            expr,
            scratch,
            &sel,
            decoded,
            rows_skipped,
        ),
        multi => {
            let gathered: Vec<Vec<Value>> = multi
                .iter()
                .map(|&ci| c.columns[ci].gather_sorted(&sel))
                .collect();
            *decoded += (gathered.len() * sel.len()) as u64;
            let mut kept = Vec::with_capacity(sel.len());
            for (k, &p) in sel.iter().enumerate() {
                for (col_vals, &ci) in gathered.iter().zip(multi) {
                    scratch.set(ci, col_vals[k].clone());
                }
                if expr.matches(scratch)? {
                    kept.push(p);
                }
            }
            Ok(kept)
        }
    }
}

/// Aggregate storage statistics for one node-table store.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StorageStats {
    pub wos_rows: usize,
    pub ros_rows: usize,
    pub ros_containers: usize,
    /// Decoded (wire) size of ROS data in bytes.
    pub ros_raw_bytes: usize,
    /// Encoded size of ROS data in bytes.
    pub ros_encoded_bytes: usize,
}

/// Outcome of one mergeout pass over a store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeOutcome {
    /// Merge operations performed (one per stratum run collapsed).
    pub merges: usize,
    /// Containers consumed as merge inputs.
    pub containers_in: usize,
    /// Rows rewritten into merged containers.
    pub rows: usize,
}

/// The storage for one table on one node. All methods expect the caller
/// (the cluster) to hold the appropriate synchronization; the struct
/// itself is single-threaded data.
#[derive(Debug, Default)]
pub struct NodeTableStore {
    wos: Vec<WosRow>,
    ros: Vec<RosContainer>,
    next_container_id: u64,
    column_count: usize,
}

fn row_visible(commit: CommitState, delete: DeleteState, as_of: u64, my_txn: Option<u64>) -> bool {
    let inserted = match commit {
        CommitState::Committed(e) => e <= as_of,
        CommitState::Pending(t) => Some(t) == my_txn,
    };
    if !inserted {
        return false;
    }
    match delete {
        DeleteState::NotDeleted => true,
        // A delete staged by my own transaction hides the row from me;
        // one staged by another transaction is not yet real.
        DeleteState::Pending(t) => Some(t) != my_txn,
        DeleteState::Committed(e) => e > as_of,
    }
}

/// True when every row of the container is visible at `as_of` for any
/// reader: all inserts committed at or before the snapshot epoch and no
/// delete even staged. Under this (deliberately strict) condition the
/// container's stats describe exactly the visible rows, so aggregates
/// may be answered from them without decoding.
fn container_fully_visible(c: &RosContainer, as_of: u64) -> bool {
    c.commits
        .iter()
        .all(|s| matches!(s, CommitState::Committed(e) if *e <= as_of))
        && c.deletes
            .iter()
            .all(|s| matches!(s, DeleteState::NotDeleted))
}

impl NodeTableStore {
    pub fn new(column_count: usize) -> NodeTableStore {
        NodeTableStore {
            column_count,
            ..NodeTableStore::default()
        }
    }

    /// Stage rows in the WOS under an open transaction.
    pub fn insert_pending(&mut self, rows: Vec<(Row, u64)>, txn: u64) {
        self.wos.reserve(rows.len());
        for (row, hash) in rows {
            debug_assert_eq!(row.len(), self.column_count);
            self.wos.push(WosRow {
                row,
                hash,
                commit: CommitState::Pending(txn),
                delete: DeleteState::NotDeleted,
            });
        }
    }

    /// Stage rows directly as an encoded ROS container (the COPY DIRECT
    /// path, bypassing the WOS for bulk loads).
    pub fn insert_pending_direct(&mut self, rows: Vec<(Row, u64)>, txn: u64) {
        if rows.is_empty() {
            return;
        }
        let n = rows.len();
        let mut hashes = Vec::with_capacity(n);
        let mut column_values: Vec<Vec<Value>> = (0..self.column_count)
            .map(|_| Vec::with_capacity(n))
            .collect();
        for (row, hash) in rows {
            debug_assert_eq!(row.len(), self.column_count);
            hashes.push(hash);
            for (c, v) in row.into_values().into_iter().enumerate() {
                column_values[c].push(v);
            }
        }
        let stats = ContainerStats::compute(&column_values, &hashes);
        let columns = column_values
            .into_iter()
            .map(|vals| {
                // Data type is only advisory for encoding choice.
                encode_auto(&vals, common::DataType::Varchar)
            })
            .collect();
        let id = self.next_container_id;
        self.next_container_id += 1;
        self.ros.push(RosContainer {
            id,
            columns,
            hashes,
            stats,
            commits: vec![CommitState::Pending(txn); n],
            deletes: vec![DeleteState::NotDeleted; n],
        });
    }

    /// Stage deletes for the given row locations.
    pub fn delete_pending(&mut self, locs: &[RowLoc], txn: u64) {
        for loc in locs {
            match loc {
                RowLoc::Wos(i) => self.wos[*i].delete = DeleteState::Pending(txn),
                RowLoc::Ros { container, idx } => {
                    // A RowLoc only ever comes from this store's own
                    // scan, so the container must exist; a miss is
                    // storage corruption, not a recoverable error.
                    let c = self
                        .ros
                        .iter_mut()
                        .find(|c| c.id == *container)
                        // fabriclint: allow(panic-hygiene): RowLoc invariant, corruption must not be retried
                        .expect("delete references unknown container");
                    c.deletes[*idx] = DeleteState::Pending(txn);
                }
            }
        }
    }

    /// Stamp all of `txn`'s pending work with the commit epoch.
    pub fn commit(&mut self, txn: u64, epoch: u64) {
        for r in &mut self.wos {
            if r.commit == CommitState::Pending(txn) {
                r.commit = CommitState::Committed(epoch);
            }
            if r.delete == DeleteState::Pending(txn) {
                r.delete = DeleteState::Committed(epoch);
            }
        }
        for c in &mut self.ros {
            for s in &mut c.commits {
                if *s == CommitState::Pending(txn) {
                    *s = CommitState::Committed(epoch);
                }
            }
            for s in &mut c.deletes {
                if *s == DeleteState::Pending(txn) {
                    *s = DeleteState::Committed(epoch);
                }
            }
        }
    }

    /// Discard all of `txn`'s pending work.
    pub fn abort(&mut self, txn: u64) {
        self.wos.retain(|r| r.commit != CommitState::Pending(txn));
        for r in &mut self.wos {
            if r.delete == DeleteState::Pending(txn) {
                r.delete = DeleteState::NotDeleted;
            }
        }
        for c in &mut self.ros {
            // Containers staged by the txn: all rows pending. Mixed
            // containers cannot occur (a container is created whole).
            if c.commits.first() == Some(&CommitState::Pending(txn)) {
                c.hashes.clear();
                c.commits.clear();
                c.deletes.clear();
                c.columns = Vec::new();
            }
            for s in &mut c.deletes {
                if *s == DeleteState::Pending(txn) {
                    *s = DeleteState::NotDeleted;
                }
            }
        }
        self.ros.retain(|c| !c.hashes.is_empty());
    }

    /// Scan rows visible at `as_of` (plus `my_txn`'s own pending work),
    /// optionally restricted to a hash range. Rows are returned in
    /// stable storage order: ROS containers by id, then the WOS.
    ///
    /// This is the row-at-a-time path: every visible row is fully
    /// materialized (all columns decoded) before any filter above it
    /// runs. The engine's hot path is [`NodeTableStore::scan_batch`];
    /// this method is retained as the reference implementation for the
    /// differential tests and the `scan_micro` benchmark baseline.
    pub fn scan(
        &self,
        as_of: u64,
        my_txn: Option<u64>,
        hash_range: Option<&HashRange>,
    ) -> Vec<VisibleRow> {
        let mut out = Vec::new();
        for c in &self.ros {
            for idx in 0..c.len() {
                if !row_visible(c.commits[idx], c.deletes[idx], as_of, my_txn) {
                    continue;
                }
                let h = c.hashes[idx];
                if let Some(r) = hash_range {
                    if !r.contains(h) {
                        continue;
                    }
                }
                out.push(VisibleRow {
                    loc: RowLoc::Ros {
                        container: c.id,
                        idx,
                    },
                    row: c.row(idx),
                    hash: h,
                });
            }
        }
        for (i, r) in self.wos.iter().enumerate() {
            if !row_visible(r.commit, r.delete, as_of, my_txn) {
                continue;
            }
            if let Some(range) = hash_range {
                if !range.contains(r.hash) {
                    continue;
                }
            }
            out.push(VisibleRow {
                loc: RowLoc::Wos(i),
                row: r.row.clone(),
                hash: r.hash,
            });
        }
        out
    }

    /// Vectorized scan with late materialization. Per ROS container:
    ///
    /// 1. build a selection vector of visible positions, probing the
    ///    hash vector against the range without decoding any column;
    /// 2. apply the row window over the surviving positions;
    /// 3. evaluate the predicate column-at-a-time, decoding only the
    ///    referenced columns (once per RLE run / dictionary code where
    ///    the encoding allows);
    /// 4. gather the projected columns for the final survivors into the
    ///    output [`ColumnBatch`].
    ///
    /// WOS rows are already materialized; they evaluate the predicate
    /// in place and copy only surviving projected values. Output order
    /// matches [`NodeTableStore::scan`] exactly: ROS containers in id
    /// order, then the WOS. Predicate errors surface at the same row
    /// as row-at-a-time evaluation (memoization is lazy, in row order).
    pub fn scan_batch(&self, scan: &BatchScan<'_>) -> Result<ScanOutput> {
        let all_columns: Vec<usize> = (0..self.column_count).collect();
        let projection: &[usize] = scan.projection.unwrap_or(&all_columns);
        debug_assert_eq!(projection.len(), scan.dtypes.len());

        let mut batch = ColumnBatch::new(scan.dtypes);
        let mut examined = 0u64;
        let mut scanned = 0u64;
        let mut decoded = 0u64;
        // Position in the stable scan order of range survivors, for the
        // row window; spans containers and the WOS.
        let mut window_pos = 0u64;
        // Scratch row for column-at-a-time predicate evaluation: bound
        // predicates only read the ordinals they reference, so the
        // unreferenced positions can stay NULL.
        let mut scratch = Row::new(vec![Value::Null; self.column_count]);
        let plan = scan.predicate.map(|p| PredPlan::new(p, !scan.no_skip));
        let mut containers_skipped = 0u64;
        let mut rows_skipped = 0u64;
        // Container-level zone-map skipping is sound only when the scan
        // has no row window: skipping would desynchronize `window_pos`,
        // which counts range survivors across all containers.
        let may_skip = !scan.no_skip && scan.row_range.is_none();

        for c in &self.ros {
            // Stage 0: zone maps. Skip the whole container when the
            // predicate provably matches no row and provably cannot
            // error. Stats cover a superset of the visible rows, so
            // "no row matches" holds for every snapshot.
            if may_skip {
                if let Some(pred) = scan.predicate {
                    if container_cannot_match(pred, &c.stats) {
                        containers_skipped += 1;
                        rows_skipped += c.len() as u64;
                        continue;
                    }
                }
            }
            // Stage 1+2: visibility, hash range, row window — selection
            // vector only, no column touched.
            let mut sel: Vec<u32> = Vec::new();
            for idx in 0..c.len() {
                if !row_visible(c.commits[idx], c.deletes[idx], scan.as_of, scan.my_txn) {
                    continue;
                }
                examined += 1;
                if let Some(r) = scan.hash_range {
                    if !r.contains(c.hashes[idx]) {
                        continue;
                    }
                }
                let pos = window_pos;
                window_pos += 1;
                if let Some((start, end)) = scan.row_range {
                    if pos < start || pos >= end {
                        continue;
                    }
                }
                sel.push(idx as u32);
            }
            scanned += sel.len() as u64;
            if sel.is_empty() {
                continue;
            }

            // Stage 3: predicate over referenced columns only. When the
            // planner produced an error-free conjunct list, apply the
            // conjuncts most-selective-first (per this container's zone
            // maps); otherwise evaluate the predicate tree whole.
            if let Some(plan) = &plan {
                match &plan.conjuncts {
                    Some(cj) => {
                        for &i in &PredPlan::order_for(cj, &c.stats) {
                            let (expr, cols) = &cj[i];
                            sel = apply_filter(
                                c,
                                expr,
                                cols,
                                &mut scratch,
                                sel,
                                &mut decoded,
                                &mut rows_skipped,
                            )?;
                            if sel.is_empty() {
                                break;
                            }
                        }
                    }
                    None => {
                        sel = apply_filter(
                            c,
                            plan.pred,
                            &plan.cols,
                            &mut scratch,
                            sel,
                            &mut decoded,
                            &mut rows_skipped,
                        )?;
                    }
                }
                if sel.is_empty() {
                    continue;
                }
            }

            // Stage 4: decode projected columns for survivors only.
            for (out_c, &table_c) in projection.iter().enumerate() {
                let values = c.columns[table_c].gather_sorted(&sel);
                decoded += values.len() as u64;
                for v in values {
                    batch.push(out_c, v)?;
                }
            }
            for &p in &sel {
                batch.push_hash(c.hashes[p as usize]);
            }
        }

        // WOS rows are row-major and already materialized: evaluate the
        // predicate in place and copy only surviving projected values.
        for r in &self.wos {
            if !row_visible(r.commit, r.delete, scan.as_of, scan.my_txn) {
                continue;
            }
            examined += 1;
            if let Some(range) = scan.hash_range {
                if !range.contains(r.hash) {
                    continue;
                }
            }
            let pos = window_pos;
            window_pos += 1;
            if let Some((start, end)) = scan.row_range {
                if pos < start || pos >= end {
                    continue;
                }
            }
            scanned += 1;
            if let Some(pred) = scan.predicate {
                if !pred.matches(&r.row)? {
                    continue;
                }
            }
            for (out_c, &table_c) in projection.iter().enumerate() {
                batch.push(out_c, r.row.get(table_c).clone())?;
            }
            batch.push_hash(r.hash);
        }

        obs::global().add("scan.containers_skipped", containers_skipped);
        obs::global().add("scan.rows_examined", examined);
        obs::global().add("scan.rows_skipped", rows_skipped);
        obs::global().add("scan.values_decoded", decoded);
        Ok(ScanOutput {
            batch,
            examined,
            scanned,
            decoded,
            containers_skipped,
            rows_skipped,
        })
    }

    /// Aggregate visible rows without materializing them: the node-side
    /// half of partial-aggregate pushdown. `funcs` are the aggregate
    /// calls with their bound input ordinals (`None` = `COUNT(*)`),
    /// `group_by` the grouping ordinals. Returns per-group partial
    /// accumulators — the caller merges partials across stores/nodes
    /// and finalizes.
    ///
    /// Containers whose zone maps prove the predicate cannot match are
    /// skipped like in [`Self::scan_batch`]; unfiltered, fully-visible,
    /// hash-covered containers are answered straight from their stats
    /// (COUNT from row/null counts, MIN/MAX from zone maps) with no
    /// decode at all.
    pub fn scan_aggregate(
        &self,
        scan: &BatchScan<'_>,
        funcs: &[(AggFunc, Option<usize>)],
        group_by: &[usize],
    ) -> Result<AggScanOutput> {
        debug_assert!(
            scan.row_range.is_none(),
            "row windows do not compose with aggregation"
        );
        let mut accs = GroupedAccs::new(funcs.iter().map(|(f, _)| *f).collect());
        let mut examined = 0u64;
        let mut scanned = 0u64;
        let mut decoded = 0u64;
        let mut containers_skipped = 0u64;
        let mut rows_skipped = 0u64;
        let mut stats_answered = 0u64;
        let mut scratch = Row::new(vec![Value::Null; self.column_count]);
        let plan = scan.predicate.map(|p| PredPlan::new(p, !scan.no_skip));
        // Ordinals the accumulation step must decode: grouping columns
        // plus aggregate inputs, deduplicated.
        let mut needed: Vec<usize> = group_by
            .iter()
            .copied()
            .chain(funcs.iter().filter_map(|(_, c)| *c))
            .collect();
        needed.sort_unstable();
        needed.dedup();
        // A container is answerable from stats alone only for a global
        // (ungrouped) aggregate with no predicate whose functions read
        // nothing but counts and zone-map endpoints.
        let stats_eligible = !scan.no_skip
            && scan.predicate.is_none()
            && group_by.is_empty()
            && funcs.iter().all(|(f, c)| {
                matches!(f, AggFunc::Count)
                    || (matches!(f, AggFunc::Min | AggFunc::Max) && c.is_some())
            });

        for c in &self.ros {
            if !scan.no_skip {
                if let Some(pred) = scan.predicate {
                    if container_cannot_match(pred, &c.stats) {
                        containers_skipped += 1;
                        rows_skipped += c.len() as u64;
                        continue;
                    }
                }
            }
            // Stats-only fast path: every row must be visible in this
            // snapshot (no pending/aborted commits, no deletes), the
            // hash range must cover the container's whole hash span,
            // and every MIN/MAX column must have a usable zone map
            // (or be all-null, contributing nothing).
            if stats_eligible
                && scan
                    .hash_range
                    .is_none_or(|r| r.contains(c.stats.hash_min) && r.contains(c.stats.hash_max))
                && container_fully_visible(c, scan.as_of)
                && funcs.iter().all(|(f, col)| match (f, col) {
                    (AggFunc::Min | AggFunc::Max, Some(i)) => {
                        let cs = &c.stats.columns[*i];
                        cs.min.is_some() || cs.null_count == c.stats.row_count
                    }
                    _ => true,
                })
            {
                let n = c.stats.row_count;
                examined += n;
                let group = accs.entry(Vec::new());
                for ((f, col), acc) in funcs.iter().zip(group.iter_mut()) {
                    match (f, col) {
                        (AggFunc::Count, None) => acc.update_repeated(&Value::Int64(1), n)?,
                        (AggFunc::Count, Some(i)) => acc.update_repeated(
                            &Value::Int64(1),
                            n - c.stats.columns[*i].null_count,
                        )?,
                        (AggFunc::Min, Some(i)) => {
                            if let Some(m) = &c.stats.columns[*i].min {
                                acc.update(m)?;
                            }
                        }
                        (AggFunc::Max, Some(i)) => {
                            if let Some(m) = &c.stats.columns[*i].max {
                                acc.update(m)?;
                            }
                        }
                        // `stats_eligible` admits no other shape.
                        _ => {}
                    }
                }
                stats_answered += 1;
                continue;
            }

            // Fallback: selection vector, predicate, gather + fold.
            let mut sel: Vec<u32> = Vec::new();
            for idx in 0..c.len() {
                if !row_visible(c.commits[idx], c.deletes[idx], scan.as_of, scan.my_txn) {
                    continue;
                }
                examined += 1;
                if let Some(r) = scan.hash_range {
                    if !r.contains(c.hashes[idx]) {
                        continue;
                    }
                }
                sel.push(idx as u32);
            }
            scanned += sel.len() as u64;
            if sel.is_empty() {
                continue;
            }
            if let Some(plan) = &plan {
                match &plan.conjuncts {
                    Some(cj) => {
                        for &i in &PredPlan::order_for(cj, &c.stats) {
                            let (expr, cols) = &cj[i];
                            sel = apply_filter(
                                c,
                                expr,
                                cols,
                                &mut scratch,
                                sel,
                                &mut decoded,
                                &mut rows_skipped,
                            )?;
                            if sel.is_empty() {
                                break;
                            }
                        }
                    }
                    None => {
                        sel = apply_filter(
                            c,
                            plan.pred,
                            &plan.cols,
                            &mut scratch,
                            sel,
                            &mut decoded,
                            &mut rows_skipped,
                        )?;
                    }
                }
                if sel.is_empty() {
                    continue;
                }
            }
            let gathered: Vec<(usize, Vec<Value>)> = needed
                .iter()
                .map(|&ci| (ci, c.columns[ci].gather_sorted(&sel)))
                .collect();
            decoded += (gathered.len() * sel.len()) as u64;
            let value_of = |ci: usize, k: usize| -> &Value {
                // `needed` is sorted and deduplicated, so the lookup
                // always finds the gathered column.
                match gathered.iter().find(|(g, _)| *g == ci) {
                    Some((_, vals)) => &vals[k],
                    None => &Value::Null,
                }
            };
            for k in 0..sel.len() {
                let key: Vec<Value> = group_by.iter().map(|&g| value_of(g, k).clone()).collect();
                let group = accs.entry(key);
                for ((f, col), acc) in funcs.iter().zip(group.iter_mut()) {
                    match (f, col) {
                        (AggFunc::Count, None) => acc.update(&Value::Int64(1))?,
                        (_, Some(i)) => acc.update(value_of(*i, k))?,
                        // COUNT is the only input-less aggregate.
                        (_, None) => acc.update(&Value::Int64(1))?,
                    }
                }
            }
        }

        // WOS rows are already materialized: fold them in place.
        for r in &self.wos {
            if !row_visible(r.commit, r.delete, scan.as_of, scan.my_txn) {
                continue;
            }
            examined += 1;
            if let Some(range) = scan.hash_range {
                if !range.contains(r.hash) {
                    continue;
                }
            }
            scanned += 1;
            if let Some(pred) = scan.predicate {
                if !pred.matches(&r.row)? {
                    continue;
                }
            }
            let key: Vec<Value> = group_by.iter().map(|&g| r.row.get(g).clone()).collect();
            let group = accs.entry(key);
            for ((f, col), acc) in funcs.iter().zip(group.iter_mut()) {
                match (f, col) {
                    (AggFunc::Count, None) => acc.update(&Value::Int64(1))?,
                    (_, Some(i)) => acc.update(r.row.get(*i))?,
                    (_, None) => acc.update(&Value::Int64(1))?,
                }
            }
        }

        obs::global().add("scan.containers_skipped", containers_skipped);
        obs::global().add("scan.rows_examined", examined);
        obs::global().add("scan.rows_skipped", rows_skipped);
        obs::global().add("scan.values_decoded", decoded);
        obs::global().add("agg.pushdown.stats_answered", stats_answered);
        Ok(AggScanOutput {
            accs,
            examined,
            scanned,
            decoded,
            containers_skipped,
            rows_skipped,
            stats_answered,
        })
    }

    /// Estimated rows a scan of this store leaves after filtering, from
    /// container stats alone: containers the zone maps disqualify
    /// contribute zero, the rest their row count scaled by the
    /// predicate's estimated selectivity. WOS rows carry no stats and
    /// use the default selectivity.
    pub fn estimate_rows(&self, predicate: Option<&Expr>) -> f64 {
        let ros: f64 = self
            .ros
            .iter()
            .map(|c| match predicate {
                None => c.stats.row_count as f64,
                Some(p) if container_cannot_match(p, &c.stats) => 0.0,
                Some(p) => c.stats.row_count as f64 * estimate_selectivity(p, &c.stats),
            })
            .sum();
        let wos = self.wos.len() as f64
            * predicate.map_or(1.0, |_| crate::storage::stats::DEFAULT_SELECTIVITY);
        ros + wos
    }

    /// Per-container statistics for the `dc_column_stats` system table.
    pub fn container_infos(&self) -> Vec<ContainerInfo> {
        self.ros
            .iter()
            .map(|c| ContainerInfo {
                id: c.id,
                row_count: c.stats.row_count,
                encodings: c.columns.iter().map(|col| col.encoding_name()).collect(),
                columns: c.stats.columns.clone(),
            })
            .collect()
    }

    /// Visit every visible row in stable scan order without building a
    /// result set. WOS rows are borrowed in place (no clone); ROS rows
    /// are decoded container-at-a-time with the run-aware gather. The
    /// mutation paths (UPDATE / DELETE WHERE) use this to locate rows.
    pub fn for_each_visible(
        &self,
        as_of: u64,
        my_txn: Option<u64>,
        hash_range: Option<&HashRange>,
        mut f: impl FnMut(RowLoc, &Row, u64),
    ) {
        for c in &self.ros {
            let mut sel: Vec<u32> = Vec::new();
            for idx in 0..c.len() {
                if row_visible(c.commits[idx], c.deletes[idx], as_of, my_txn)
                    && hash_range.is_none_or(|r| r.contains(c.hashes[idx]))
                {
                    sel.push(idx as u32);
                }
            }
            if sel.is_empty() {
                continue;
            }
            let mut column_values: Vec<std::vec::IntoIter<Value>> = c
                .columns
                .iter()
                .map(|col| col.gather_sorted(&sel).into_iter())
                .collect();
            for &idx in &sel {
                let row = Row::new(
                    column_values
                        .iter_mut()
                        // Every iterator gathered exactly `sel.len()`
                        // values above; a short column is corruption.
                        // fabriclint: allow(panic-hygiene): gather produced sel.len() values per column
                        .map(|it| it.next().expect("gather length mismatch"))
                        .collect(),
                );
                f(
                    RowLoc::Ros {
                        container: c.id,
                        idx: idx as usize,
                    },
                    &row,
                    c.hashes[idx as usize],
                );
            }
        }
        for (i, r) in self.wos.iter().enumerate() {
            if row_visible(r.commit, r.delete, as_of, my_txn)
                && hash_range.is_none_or(|range| range.contains(r.hash))
            {
                f(RowLoc::Wos(i), &r.row, r.hash);
            }
        }
    }

    /// Count rows visible at `as_of` (plus `my_txn`'s pending work)
    /// without materializing them — the rows a range scan must examine.
    pub fn visible_count(&self, as_of: u64, my_txn: Option<u64>) -> usize {
        let mut count = 0;
        for c in &self.ros {
            for idx in 0..c.len() {
                if row_visible(c.commits[idx], c.deletes[idx], as_of, my_txn) {
                    count += 1;
                }
            }
        }
        count
            + self
                .wos
                .iter()
                .filter(|r| row_visible(r.commit, r.delete, as_of, my_txn))
                .count()
    }

    /// Move committed WOS rows into a new encoded ROS container (the
    /// tuple mover's "moveout" operation). Pending rows stay put.
    /// Returns the number of rows moved.
    pub fn moveout(&mut self) -> usize {
        let moving: Vec<usize> = self
            .wos
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r.commit, CommitState::Committed(_)))
            .map(|(i, _)| i)
            .collect();
        if moving.is_empty() {
            return 0;
        }
        let n = moving.len();
        let mut hashes = Vec::with_capacity(n);
        let mut commits = Vec::with_capacity(n);
        let mut deletes = Vec::with_capacity(n);
        let mut column_values: Vec<Vec<Value>> = (0..self.column_count)
            .map(|_| Vec::with_capacity(n))
            .collect();
        for &i in &moving {
            let r = &self.wos[i];
            hashes.push(r.hash);
            commits.push(r.commit);
            deletes.push(r.delete);
            for (c, v) in r.row.values().iter().enumerate() {
                column_values[c].push(v.clone());
            }
        }
        let stats = ContainerStats::compute(&column_values, &hashes);
        let columns = column_values
            .into_iter()
            .map(|vals| encode_auto(&vals, common::DataType::Varchar))
            .collect();
        let id = self.next_container_id;
        self.next_container_id += 1;
        self.ros.push(RosContainer {
            id,
            columns,
            hashes,
            stats,
            commits,
            deletes,
        });
        // Drop moved rows from the WOS (keep pending ones).
        let mut keep = Vec::with_capacity(self.wos.len() - n);
        for (i, r) in self.wos.drain(..).enumerate() {
            if !moving.contains(&i) {
                keep.push(r);
            }
        }
        self.wos = keep;
        n
    }

    /// Size-ratio stratum of a container: row counts sharing a
    /// power-of-two bucket are "about the same size", and only
    /// same-stratum neighbours merge (repeated passes cascade merged
    /// containers into ever-higher strata, LSM-style).
    fn stratum(rows: usize) -> u32 {
        (rows.max(1) as u64).ilog2()
    }

    /// A container the mover may consume: every insert committed (so
    /// `abort`'s created-whole invariant cannot be violated) and no
    /// delete in flight. Committed deletes are fine — their states are
    /// carried over verbatim, so epoch-pinned snapshots older than the
    /// delete still see those rows.
    fn merge_eligible(c: &RosContainer) -> bool {
        c.commits
            .iter()
            .all(|s| matches!(s, CommitState::Committed(_)))
            && c.deletes
                .iter()
                .all(|s| !matches!(s, DeleteState::Pending(_)))
    }

    /// The tuple mover's "mergeout": compact adjacent runs of at least
    /// `min_merge` fully-committed ROS containers in the same size
    /// stratum into one container.
    ///
    /// The merged container keeps the *first* input's id and position,
    /// and rows are concatenated in scan order with commit/delete
    /// states preserved verbatim — so the visible-row sequence at any
    /// snapshot epoch is unchanged. Scans (and the connector's
    /// synthetic row windows over unsegmented tables) cannot tell a
    /// merge happened. Statistics are recomputed through the same
    /// [`ContainerStats`] path as every other ROS creation site.
    pub fn mergeout(&mut self, min_merge: usize) -> MergeOutcome {
        let min_merge = min_merge.max(2);
        let mut outcome = MergeOutcome::default();
        let ros = std::mem::take(&mut self.ros);
        let mut out: Vec<RosContainer> = Vec::with_capacity(ros.len());
        let mut run: Vec<RosContainer> = Vec::new();
        let mut run_stratum = 0u32;
        for c in ros {
            let eligible = NodeTableStore::merge_eligible(&c);
            let s = NodeTableStore::stratum(c.len());
            if eligible && !run.is_empty() && s == run_stratum {
                run.push(c);
                continue;
            }
            self.flush_merge_run(&mut run, &mut out, min_merge, &mut outcome);
            if eligible {
                run_stratum = s;
                run.push(c);
            } else {
                out.push(c);
            }
        }
        self.flush_merge_run(&mut run, &mut out, min_merge, &mut outcome);
        self.ros = out;
        outcome
    }

    /// Close out one adjacent same-stratum run: merge it when it is
    /// long enough, otherwise pass the containers through untouched.
    fn flush_merge_run(
        &self,
        run: &mut Vec<RosContainer>,
        out: &mut Vec<RosContainer>,
        min_merge: usize,
        outcome: &mut MergeOutcome,
    ) {
        if run.len() < min_merge {
            out.append(run);
            return;
        }
        let inputs = std::mem::take(run);
        let n: usize = inputs.iter().map(|c| c.len()).sum();
        let mut hashes = Vec::with_capacity(n);
        let mut commits = Vec::with_capacity(n);
        let mut deletes = Vec::with_capacity(n);
        let mut column_values: Vec<Vec<Value>> = (0..self.column_count)
            .map(|_| Vec::with_capacity(n))
            .collect();
        for c in &inputs {
            let sel: Vec<u32> = (0..c.len() as u32).collect();
            for (col, vals) in c.columns.iter().zip(column_values.iter_mut()) {
                vals.extend(col.gather_sorted(&sel));
            }
            hashes.extend_from_slice(&c.hashes);
            commits.extend_from_slice(&c.commits);
            deletes.extend_from_slice(&c.deletes);
        }
        let stats = ContainerStats::compute(&column_values, &hashes);
        let columns = column_values
            .into_iter()
            .map(|vals| encode_auto(&vals, common::DataType::Varchar))
            .collect();
        outcome.merges += 1;
        outcome.containers_in += inputs.len();
        outcome.rows += n;
        out.push(RosContainer {
            id: inputs[0].id,
            columns,
            hashes,
            stats,
            commits,
            deletes,
        });
    }

    /// Export every row (WOS and ROS) whose hash falls in `hash_range`,
    /// with commit/delete epochs and pending-transaction state intact —
    /// the recovery stream a rebuilding node pulls from a live peer.
    pub(crate) fn export_rows(&self, hash_range: Option<&HashRange>) -> Vec<ExportedRow> {
        let mut out = Vec::new();
        for c in &self.ros {
            for idx in 0..c.len() {
                if hash_range.is_none_or(|r| r.contains(c.hashes[idx])) {
                    out.push(ExportedRow {
                        row: c.row(idx),
                        hash: c.hashes[idx],
                        commit: c.commits[idx],
                        delete: c.deletes[idx],
                    });
                }
            }
        }
        for r in &self.wos {
            if hash_range.is_none_or(|range| range.contains(r.hash)) {
                out.push(ExportedRow {
                    row: r.row.clone(),
                    hash: r.hash,
                    commit: r.commit,
                    delete: r.delete,
                });
            }
        }
        out
    }

    /// Install exported rows verbatim. States are preserved, so
    /// epoch-pinned reads see the same history on the rebuilt replica
    /// as on its peer, and commits/aborts of transactions still open
    /// during recovery stamp the replica correctly afterwards.
    pub(crate) fn import_rows(&mut self, rows: Vec<ExportedRow>) {
        for r in rows {
            self.wos.push(WosRow {
                row: r.row,
                hash: r.hash,
                commit: r.commit,
                delete: r.delete,
            });
        }
    }

    /// Install exported rows as one encoded ROS container, commit and
    /// delete states verbatim — the rebalancer's bulk landing path.
    /// Unlike [`NodeTableStore::import_rows`] (which stages into the
    /// WOS), migrated segments arrive as ROS so the new owner serves
    /// them with the same zone-map skipping, encodings, and container
    /// statistics as the source — statistics go through the identical
    /// [`ContainerStats`] path as every other ROS creation site.
    /// Rows with pending commits land too: the rebalancer copies under
    /// the commit lock, and `commit_txn`/`abort_txn` stamp every
    /// registered node, so in-flight transactions resolve on the new
    /// owner exactly as on the old.
    pub(crate) fn import_rows_ros(&mut self, rows: Vec<ExportedRow>) {
        if rows.is_empty() {
            return;
        }
        let n = rows.len();
        let mut hashes = Vec::with_capacity(n);
        let mut commits = Vec::with_capacity(n);
        let mut deletes = Vec::with_capacity(n);
        let mut column_values: Vec<Vec<Value>> = (0..self.column_count)
            .map(|_| Vec::with_capacity(n))
            .collect();
        for r in rows {
            hashes.push(r.hash);
            commits.push(r.commit);
            deletes.push(r.delete);
            for (c, v) in r.row.into_values().into_iter().enumerate() {
                column_values[c].push(v);
            }
        }
        let stats = ContainerStats::compute(&column_values, &hashes);
        let columns = column_values
            .into_iter()
            .map(|vals| encode_auto(&vals, common::DataType::Varchar))
            .collect();
        let id = self.next_container_id;
        self.next_container_id += 1;
        self.ros.push(RosContainer {
            id,
            columns,
            hashes,
            stats,
            commits,
            deletes,
        });
    }

    /// Drop every row (WOS and ROS) whose hash falls in `range`. ROS
    /// containers that lose rows are rebuilt in place — same id, same
    /// position, statistics recomputed through the [`ContainerStats`]
    /// path — so surviving data stays zone-map-skippable. Used by the
    /// rebalancer to make a re-copy idempotent: clearing the target
    /// range before landing the export means a resumed migration can
    /// never double-count rows.
    pub(crate) fn remove_hash_range(&mut self, range: &HashRange) -> usize {
        let mut removed = 0;
        let ros = std::mem::take(&mut self.ros);
        let mut out = Vec::with_capacity(ros.len());
        for c in ros {
            let keep: Vec<u32> = (0..c.len() as u32)
                .filter(|&i| !range.contains(c.hashes[i as usize]))
                .collect();
            if keep.len() == c.len() {
                out.push(c);
                continue;
            }
            removed += c.len() - keep.len();
            if keep.is_empty() {
                continue;
            }
            let mut hashes = Vec::with_capacity(keep.len());
            let mut commits = Vec::with_capacity(keep.len());
            let mut deletes = Vec::with_capacity(keep.len());
            for &i in &keep {
                hashes.push(c.hashes[i as usize]);
                commits.push(c.commits[i as usize]);
                deletes.push(c.deletes[i as usize]);
            }
            let column_values: Vec<Vec<Value>> = c
                .columns
                .iter()
                .map(|col| col.gather_sorted(&keep))
                .collect();
            let stats = ContainerStats::compute(&column_values, &hashes);
            let columns = column_values
                .into_iter()
                .map(|vals| encode_auto(&vals, common::DataType::Varchar))
                .collect();
            out.push(RosContainer {
                id: c.id,
                columns,
                hashes,
                stats,
                commits,
                deletes,
            });
        }
        self.ros = out;
        let before = self.wos.len();
        self.wos.retain(|r| !range.contains(r.hash));
        removed + (before - self.wos.len())
    }

    /// Number of committed rows currently in the WOS (the moveout
    /// trigger input).
    pub fn wos_committed_rows(&self) -> usize {
        self.wos
            .iter()
            .filter(|r| matches!(r.commit, CommitState::Committed(_)))
            .count()
    }

    pub fn stats(&self) -> StorageStats {
        let mut ros_rows = 0;
        let mut raw = 0;
        let mut encoded = 0;
        for c in &self.ros {
            ros_rows += c.len();
            for col in &c.columns {
                encoded += col.encoded_size();
            }
            for idx in 0..c.len() {
                raw += c.row(idx).wire_size();
            }
        }
        StorageStats {
            wos_rows: self.wos.len(),
            ros_rows,
            ros_containers: self.ros.len(),
            ros_raw_bytes: raw,
            ros_encoded_bytes: encoded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::row;

    fn rows3() -> Vec<(Row, u64)> {
        vec![
            (row![1i64, "a"], 100),
            (row![2i64, "b"], 200),
            (row![3i64, "c"], 300),
        ]
    }

    #[test]
    fn pending_rows_invisible_to_others() {
        let mut s = NodeTableStore::new(2);
        s.insert_pending(rows3(), 7);
        assert!(s.scan(u64::MAX, None, None).is_empty());
        assert_eq!(s.scan(u64::MAX, Some(7), None).len(), 3);
        s.commit(7, 5);
        assert_eq!(s.scan(5, None, None).len(), 3);
        // Epoch-based snapshot: before the commit epoch nothing visible.
        assert_eq!(s.scan(4, None, None).len(), 0);
    }

    #[test]
    fn abort_discards_pending_inserts() {
        let mut s = NodeTableStore::new(2);
        s.insert_pending(rows3(), 7);
        s.abort(7);
        assert!(s.scan(u64::MAX, Some(7), None).is_empty());
        assert_eq!(s.stats().wos_rows, 0);
    }

    #[test]
    fn delete_visibility_and_abort() {
        let mut s = NodeTableStore::new(2);
        s.insert_pending(rows3(), 1);
        s.commit(1, 2);
        let visible = s.scan(2, None, None);
        // Txn 9 stages a delete of the first row.
        s.delete_pending(&[visible[0].loc], 9);
        // Others still see it; txn 9 does not.
        assert_eq!(s.scan(2, None, None).len(), 3);
        assert_eq!(s.scan(2, Some(9), None).len(), 2);
        s.abort(9);
        assert_eq!(s.scan(2, Some(9), None).len(), 3);
        // Now commit a delete at epoch 4 and check epoch visibility.
        let visible = s.scan(2, None, None);
        s.delete_pending(&[visible[0].loc], 10);
        s.commit(10, 4);
        assert_eq!(
            s.scan(3, None, None).len(),
            3,
            "old epoch still sees the row"
        );
        assert_eq!(s.scan(4, None, None).len(), 2, "new epoch does not");
    }

    #[test]
    fn hash_range_filtering() {
        let mut s = NodeTableStore::new(2);
        s.insert_pending(rows3(), 1);
        s.commit(1, 1);
        let r = HashRange::new(150, Some(250));
        let hits = s.scan(1, None, Some(&r));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].hash, 200);
    }

    #[test]
    fn moveout_preserves_rows_and_visibility() {
        let mut s = NodeTableStore::new(2);
        s.insert_pending(rows3(), 1);
        s.commit(1, 3);
        // A pending row must stay in the WOS.
        s.insert_pending(vec![(row![4i64, "d"], 400)], 2);
        let moved = s.moveout();
        assert_eq!(moved, 3);
        let stats = s.stats();
        assert_eq!(stats.ros_rows, 3);
        assert_eq!(stats.wos_rows, 1);
        assert_eq!(stats.ros_containers, 1);
        // Visibility unchanged.
        assert_eq!(s.scan(3, None, None).len(), 3);
        assert_eq!(s.scan(2, None, None).len(), 0);
        assert_eq!(s.scan(3, Some(2), None).len(), 4);
        // Deletes still work against ROS locations.
        let visible = s.scan(3, None, None);
        s.delete_pending(&[visible[1].loc], 5);
        s.commit(5, 6);
        assert_eq!(s.scan(6, None, None).len(), 2);
        assert_eq!(s.scan(5, None, None).len(), 3);
    }

    #[test]
    fn direct_load_creates_container() {
        let mut s = NodeTableStore::new(2);
        s.insert_pending_direct(rows3(), 1);
        assert_eq!(s.stats().ros_containers, 1);
        assert!(s.scan(10, None, None).is_empty());
        s.commit(1, 2);
        assert_eq!(s.scan(2, None, None).len(), 3);
    }

    #[test]
    fn direct_load_abort_removes_container() {
        let mut s = NodeTableStore::new(2);
        s.insert_pending_direct(rows3(), 1);
        s.abort(1);
        assert_eq!(s.stats().ros_containers, 0);
        s.insert_pending_direct(rows3(), 2);
        s.commit(2, 2);
        assert_eq!(s.scan(2, None, None).len(), 3);
    }

    #[test]
    fn scan_order_is_stable() {
        let mut s = NodeTableStore::new(2);
        s.insert_pending(rows3(), 1);
        s.commit(1, 1);
        s.moveout();
        s.insert_pending(vec![(row![4i64, "d"], 400)], 2);
        s.commit(2, 2);
        let rows: Vec<i64> = s
            .scan(2, None, None)
            .iter()
            .map(|v| v.row.get(0).as_i64().unwrap())
            .collect();
        assert_eq!(rows, vec![1, 2, 3, 4]);
    }

    #[test]
    fn insert_then_delete_same_txn() {
        let mut s = NodeTableStore::new(2);
        s.insert_pending(rows3(), 1);
        let mine = s.scan(0, Some(1), None);
        s.delete_pending(&[mine[0].loc], 1);
        assert_eq!(s.scan(0, Some(1), None).len(), 2);
        s.commit(1, 5);
        assert_eq!(s.scan(5, None, None).len(), 2);
    }
}
