//! The per-node, per-table MVCC store: WOS + ROS with pending-until-
//! commit visibility and delete vectors.

use common::{DataType, Expr, Result, Row, Value};

use crate::segmentation::HashRange;
use crate::storage::batch::ColumnBatch;
use crate::storage::encoding::{encode_auto, EncodedColumn};

/// Commit state of a stored row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitState {
    /// Written by a still-open transaction; visible only to it.
    Pending(u64),
    /// Committed at the given epoch.
    Committed(u64),
}

/// Delete state of a stored row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeleteState {
    NotDeleted,
    /// Delete staged by an open transaction.
    Pending(u64),
    /// Delete committed at the given epoch.
    Committed(u64),
}

/// Location of a row within a node-table store, stable while the store's
/// lock is held (the tuple mover may relocate rows between statements).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowLoc {
    Wos(usize),
    Ros { container: u64, idx: usize },
}

/// A row surfaced by a scan.
#[derive(Debug, Clone)]
pub struct VisibleRow {
    pub loc: RowLoc,
    pub row: Row,
    /// Segmentation hash computed at insert time.
    pub hash: u64,
}

/// One row's full MVCC state, exported for node recovery. Opaque
/// outside the store: recovery moves batches between stores wholesale.
#[derive(Debug, Clone)]
pub(crate) struct ExportedRow {
    row: Row,
    hash: u64,
    commit: CommitState,
    delete: DeleteState,
}

#[derive(Debug)]
struct WosRow {
    row: Row,
    hash: u64,
    commit: CommitState,
    delete: DeleteState,
}

#[derive(Debug)]
struct RosContainer {
    id: u64,
    columns: Vec<EncodedColumn>,
    hashes: Vec<u64>,
    commits: Vec<CommitState>,
    deletes: Vec<DeleteState>,
}

impl RosContainer {
    fn row(&self, idx: usize) -> Row {
        Row::new(self.columns.iter().map(|c| c.get(idx)).collect())
    }

    fn len(&self) -> usize {
        self.hashes.len()
    }
}

/// Parameters of a vectorized scan ([`NodeTableStore::scan_batch`]).
///
/// Everything the engine pushes down to the serving node in one place:
/// snapshot, segmentation restriction, row window, predicate, and
/// projection. Bundled as a struct so the scan entry point stays a
/// two-argument call as pushdowns grow.
#[derive(Clone, Copy, Default)]
pub struct BatchScan<'a> {
    /// Epoch to read as of.
    pub as_of: u64,
    /// Open transaction id, for read-your-writes visibility.
    pub my_txn: Option<u64>,
    /// Restrict to rows whose segmentation hash falls in the range.
    pub hash_range: Option<&'a HashRange>,
    /// Window `[start, end)` over the rows surviving visibility and the
    /// hash range, in stable scan order (the connector's synthetic
    /// ranges for unsegmented tables).
    pub row_range: Option<(u64, u64)>,
    /// Filter with column references bound to table ordinals
    /// ([`Expr::ColumnIdx`]); evaluated before projection decode.
    pub predicate: Option<&'a Expr>,
    /// Table-schema ordinals to materialize, in output order; `None`
    /// means all columns.
    pub projection: Option<&'a [usize]>,
    /// Data types of the output (projected) columns, in output order.
    pub dtypes: &'a [DataType],
}

/// What a vectorized scan returns: the materialized batch plus the
/// per-stage row counts the query layer feeds into cost accounting.
#[derive(Debug)]
pub struct ScanOutput {
    pub batch: ColumnBatch,
    /// Visible rows examined (before the hash range) — every one of
    /// these pays a visibility check and a hash probe.
    pub examined: u64,
    /// Rows surviving the hash range and row window (before the
    /// predicate) — the filter's evaluation count.
    pub scanned: u64,
    /// Values actually decoded from encoded columns, counting one per
    /// RLE run / dictionary code the predicate touched rather than one
    /// per row. The late-materialization win is `examined *
    /// column_count - decoded`.
    pub decoded: u64,
}

/// Evaluate a bound predicate over one referenced column of a
/// container, encoding-aware: RLE evaluates once per touched run and
/// dictionary once per touched code (lazily, in row order, so the
/// first evaluation error surfaces at the same row as row-at-a-time
/// evaluation would). Returns the surviving subset of `sel`.
fn filter_single_column(
    col: &EncodedColumn,
    col_idx: usize,
    pred: &Expr,
    scratch: &mut Row,
    sel: &[u32],
    decoded: &mut u64,
) -> Result<Vec<u32>> {
    let mut out = Vec::with_capacity(sel.len());
    match col {
        EncodedColumn::Plain(values) => {
            for &p in sel {
                scratch.set(col_idx, values[p as usize].clone());
                *decoded += 1;
                if pred.matches(scratch)? {
                    out.push(p);
                }
            }
        }
        EncodedColumn::Rle(runs) => {
            let mut memo: Vec<Option<bool>> = vec![None; runs.len()];
            let mut run = 0usize;
            let mut run_start = 0usize;
            for &p in sel {
                let p_us = p as usize;
                while run < runs.len() && p_us >= run_start + runs[run].1 as usize {
                    run_start += runs[run].1 as usize;
                    run += 1;
                }
                let keep = match memo[run] {
                    Some(k) => k,
                    None => {
                        scratch.set(col_idx, runs[run].0.clone());
                        *decoded += 1;
                        let k = pred.matches(scratch)?;
                        memo[run] = Some(k);
                        k
                    }
                };
                if keep {
                    out.push(p);
                }
            }
        }
        EncodedColumn::Dictionary { dict, codes } => {
            let mut memo: Vec<Option<bool>> = vec![None; dict.len()];
            for &p in sel {
                let code = codes[p as usize] as usize;
                let keep = match memo[code] {
                    Some(k) => k,
                    None => {
                        scratch.set(col_idx, dict[code].clone());
                        *decoded += 1;
                        let k = pred.matches(scratch)?;
                        memo[code] = Some(k);
                        k
                    }
                };
                if keep {
                    out.push(p);
                }
            }
        }
    }
    Ok(out)
}

/// Aggregate storage statistics for one node-table store.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StorageStats {
    pub wos_rows: usize,
    pub ros_rows: usize,
    pub ros_containers: usize,
    /// Decoded (wire) size of ROS data in bytes.
    pub ros_raw_bytes: usize,
    /// Encoded size of ROS data in bytes.
    pub ros_encoded_bytes: usize,
}

/// The storage for one table on one node. All methods expect the caller
/// (the cluster) to hold the appropriate synchronization; the struct
/// itself is single-threaded data.
#[derive(Debug, Default)]
pub struct NodeTableStore {
    wos: Vec<WosRow>,
    ros: Vec<RosContainer>,
    next_container_id: u64,
    column_count: usize,
}

fn row_visible(commit: CommitState, delete: DeleteState, as_of: u64, my_txn: Option<u64>) -> bool {
    let inserted = match commit {
        CommitState::Committed(e) => e <= as_of,
        CommitState::Pending(t) => Some(t) == my_txn,
    };
    if !inserted {
        return false;
    }
    match delete {
        DeleteState::NotDeleted => true,
        // A delete staged by my own transaction hides the row from me;
        // one staged by another transaction is not yet real.
        DeleteState::Pending(t) => Some(t) != my_txn,
        DeleteState::Committed(e) => e > as_of,
    }
}

impl NodeTableStore {
    pub fn new(column_count: usize) -> NodeTableStore {
        NodeTableStore {
            column_count,
            ..NodeTableStore::default()
        }
    }

    /// Stage rows in the WOS under an open transaction.
    pub fn insert_pending(&mut self, rows: Vec<(Row, u64)>, txn: u64) {
        self.wos.reserve(rows.len());
        for (row, hash) in rows {
            debug_assert_eq!(row.len(), self.column_count);
            self.wos.push(WosRow {
                row,
                hash,
                commit: CommitState::Pending(txn),
                delete: DeleteState::NotDeleted,
            });
        }
    }

    /// Stage rows directly as an encoded ROS container (the COPY DIRECT
    /// path, bypassing the WOS for bulk loads).
    pub fn insert_pending_direct(&mut self, rows: Vec<(Row, u64)>, txn: u64) {
        if rows.is_empty() {
            return;
        }
        let n = rows.len();
        let mut hashes = Vec::with_capacity(n);
        let mut column_values: Vec<Vec<Value>> = (0..self.column_count)
            .map(|_| Vec::with_capacity(n))
            .collect();
        for (row, hash) in rows {
            debug_assert_eq!(row.len(), self.column_count);
            hashes.push(hash);
            for (c, v) in row.into_values().into_iter().enumerate() {
                column_values[c].push(v);
            }
        }
        let columns = column_values
            .into_iter()
            .map(|vals| {
                // Data type is only advisory for encoding choice.
                encode_auto(&vals, common::DataType::Varchar)
            })
            .collect();
        let id = self.next_container_id;
        self.next_container_id += 1;
        self.ros.push(RosContainer {
            id,
            columns,
            hashes,
            commits: vec![CommitState::Pending(txn); n],
            deletes: vec![DeleteState::NotDeleted; n],
        });
    }

    /// Stage deletes for the given row locations.
    pub fn delete_pending(&mut self, locs: &[RowLoc], txn: u64) {
        for loc in locs {
            match loc {
                RowLoc::Wos(i) => self.wos[*i].delete = DeleteState::Pending(txn),
                RowLoc::Ros { container, idx } => {
                    // A RowLoc only ever comes from this store's own
                    // scan, so the container must exist; a miss is
                    // storage corruption, not a recoverable error.
                    let c = self
                        .ros
                        .iter_mut()
                        .find(|c| c.id == *container)
                        // fabriclint: allow(panic-hygiene): RowLoc invariant, corruption must not be retried
                        .expect("delete references unknown container");
                    c.deletes[*idx] = DeleteState::Pending(txn);
                }
            }
        }
    }

    /// Stamp all of `txn`'s pending work with the commit epoch.
    pub fn commit(&mut self, txn: u64, epoch: u64) {
        for r in &mut self.wos {
            if r.commit == CommitState::Pending(txn) {
                r.commit = CommitState::Committed(epoch);
            }
            if r.delete == DeleteState::Pending(txn) {
                r.delete = DeleteState::Committed(epoch);
            }
        }
        for c in &mut self.ros {
            for s in &mut c.commits {
                if *s == CommitState::Pending(txn) {
                    *s = CommitState::Committed(epoch);
                }
            }
            for s in &mut c.deletes {
                if *s == DeleteState::Pending(txn) {
                    *s = DeleteState::Committed(epoch);
                }
            }
        }
    }

    /// Discard all of `txn`'s pending work.
    pub fn abort(&mut self, txn: u64) {
        self.wos.retain(|r| r.commit != CommitState::Pending(txn));
        for r in &mut self.wos {
            if r.delete == DeleteState::Pending(txn) {
                r.delete = DeleteState::NotDeleted;
            }
        }
        for c in &mut self.ros {
            // Containers staged by the txn: all rows pending. Mixed
            // containers cannot occur (a container is created whole).
            if c.commits.first() == Some(&CommitState::Pending(txn)) {
                c.hashes.clear();
                c.commits.clear();
                c.deletes.clear();
                c.columns = Vec::new();
            }
            for s in &mut c.deletes {
                if *s == DeleteState::Pending(txn) {
                    *s = DeleteState::NotDeleted;
                }
            }
        }
        self.ros.retain(|c| !c.hashes.is_empty());
    }

    /// Scan rows visible at `as_of` (plus `my_txn`'s own pending work),
    /// optionally restricted to a hash range. Rows are returned in
    /// stable storage order: ROS containers by id, then the WOS.
    ///
    /// This is the row-at-a-time path: every visible row is fully
    /// materialized (all columns decoded) before any filter above it
    /// runs. The engine's hot path is [`NodeTableStore::scan_batch`];
    /// this method is retained as the reference implementation for the
    /// differential tests and the `scan_micro` benchmark baseline.
    pub fn scan(
        &self,
        as_of: u64,
        my_txn: Option<u64>,
        hash_range: Option<&HashRange>,
    ) -> Vec<VisibleRow> {
        let mut out = Vec::new();
        for c in &self.ros {
            for idx in 0..c.len() {
                if !row_visible(c.commits[idx], c.deletes[idx], as_of, my_txn) {
                    continue;
                }
                let h = c.hashes[idx];
                if let Some(r) = hash_range {
                    if !r.contains(h) {
                        continue;
                    }
                }
                out.push(VisibleRow {
                    loc: RowLoc::Ros {
                        container: c.id,
                        idx,
                    },
                    row: c.row(idx),
                    hash: h,
                });
            }
        }
        for (i, r) in self.wos.iter().enumerate() {
            if !row_visible(r.commit, r.delete, as_of, my_txn) {
                continue;
            }
            if let Some(range) = hash_range {
                if !range.contains(r.hash) {
                    continue;
                }
            }
            out.push(VisibleRow {
                loc: RowLoc::Wos(i),
                row: r.row.clone(),
                hash: r.hash,
            });
        }
        out
    }

    /// Vectorized scan with late materialization. Per ROS container:
    ///
    /// 1. build a selection vector of visible positions, probing the
    ///    hash vector against the range without decoding any column;
    /// 2. apply the row window over the surviving positions;
    /// 3. evaluate the predicate column-at-a-time, decoding only the
    ///    referenced columns (once per RLE run / dictionary code where
    ///    the encoding allows);
    /// 4. gather the projected columns for the final survivors into the
    ///    output [`ColumnBatch`].
    ///
    /// WOS rows are already materialized; they evaluate the predicate
    /// in place and copy only surviving projected values. Output order
    /// matches [`NodeTableStore::scan`] exactly: ROS containers in id
    /// order, then the WOS. Predicate errors surface at the same row
    /// as row-at-a-time evaluation (memoization is lazy, in row order).
    pub fn scan_batch(&self, scan: &BatchScan<'_>) -> Result<ScanOutput> {
        let all_columns: Vec<usize> = (0..self.column_count).collect();
        let projection: &[usize] = scan.projection.unwrap_or(&all_columns);
        debug_assert_eq!(projection.len(), scan.dtypes.len());

        let mut batch = ColumnBatch::new(scan.dtypes);
        let mut examined = 0u64;
        let mut scanned = 0u64;
        let mut decoded = 0u64;
        // Position in the stable scan order of range survivors, for the
        // row window; spans containers and the WOS.
        let mut window_pos = 0u64;
        // Scratch row for column-at-a-time predicate evaluation: bound
        // predicates only read the ordinals they reference, so the
        // unreferenced positions can stay NULL.
        let mut scratch = Row::new(vec![Value::Null; self.column_count]);
        let mut pred_cols: Vec<usize> = Vec::new();
        if let Some(p) = scan.predicate {
            p.referenced_indices(&mut pred_cols);
            pred_cols.sort_unstable();
        }

        for c in &self.ros {
            // Stage 1+2: visibility, hash range, row window — selection
            // vector only, no column touched.
            let mut sel: Vec<u32> = Vec::new();
            for idx in 0..c.len() {
                if !row_visible(c.commits[idx], c.deletes[idx], scan.as_of, scan.my_txn) {
                    continue;
                }
                examined += 1;
                if let Some(r) = scan.hash_range {
                    if !r.contains(c.hashes[idx]) {
                        continue;
                    }
                }
                let pos = window_pos;
                window_pos += 1;
                if let Some((start, end)) = scan.row_range {
                    if pos < start || pos >= end {
                        continue;
                    }
                }
                sel.push(idx as u32);
            }
            scanned += sel.len() as u64;
            if sel.is_empty() {
                continue;
            }

            // Stage 3: predicate over referenced columns only.
            if let Some(pred) = scan.predicate {
                match pred_cols.as_slice() {
                    [] => {
                        // Constant predicate: evaluate once.
                        if !pred.matches(&scratch)? {
                            continue;
                        }
                    }
                    [single] => {
                        sel = filter_single_column(
                            &c.columns[*single],
                            *single,
                            pred,
                            &mut scratch,
                            &sel,
                            &mut decoded,
                        )?;
                    }
                    multi => {
                        let gathered: Vec<Vec<Value>> = multi
                            .iter()
                            .map(|&ci| c.columns[ci].gather_sorted(&sel))
                            .collect();
                        decoded += (gathered.len() * sel.len()) as u64;
                        let mut kept = Vec::with_capacity(sel.len());
                        for (k, &p) in sel.iter().enumerate() {
                            for (col_vals, &ci) in gathered.iter().zip(multi) {
                                scratch.set(ci, col_vals[k].clone());
                            }
                            if pred.matches(&scratch)? {
                                kept.push(p);
                            }
                        }
                        sel = kept;
                    }
                }
                if sel.is_empty() {
                    continue;
                }
            }

            // Stage 4: decode projected columns for survivors only.
            for (out_c, &table_c) in projection.iter().enumerate() {
                let values = c.columns[table_c].gather_sorted(&sel);
                decoded += values.len() as u64;
                for v in values {
                    batch.push(out_c, v)?;
                }
            }
            for &p in &sel {
                batch.push_hash(c.hashes[p as usize]);
            }
        }

        // WOS rows are row-major and already materialized: evaluate the
        // predicate in place and copy only surviving projected values.
        for r in &self.wos {
            if !row_visible(r.commit, r.delete, scan.as_of, scan.my_txn) {
                continue;
            }
            examined += 1;
            if let Some(range) = scan.hash_range {
                if !range.contains(r.hash) {
                    continue;
                }
            }
            let pos = window_pos;
            window_pos += 1;
            if let Some((start, end)) = scan.row_range {
                if pos < start || pos >= end {
                    continue;
                }
            }
            scanned += 1;
            if let Some(pred) = scan.predicate {
                if !pred.matches(&r.row)? {
                    continue;
                }
            }
            for (out_c, &table_c) in projection.iter().enumerate() {
                batch.push(out_c, r.row.get(table_c).clone())?;
            }
            batch.push_hash(r.hash);
        }

        obs::global().add("scan.rows_examined", examined);
        obs::global().add("scan.values_decoded", decoded);
        Ok(ScanOutput {
            batch,
            examined,
            scanned,
            decoded,
        })
    }

    /// Visit every visible row in stable scan order without building a
    /// result set. WOS rows are borrowed in place (no clone); ROS rows
    /// are decoded container-at-a-time with the run-aware gather. The
    /// mutation paths (UPDATE / DELETE WHERE) use this to locate rows.
    pub fn for_each_visible(
        &self,
        as_of: u64,
        my_txn: Option<u64>,
        hash_range: Option<&HashRange>,
        mut f: impl FnMut(RowLoc, &Row, u64),
    ) {
        for c in &self.ros {
            let mut sel: Vec<u32> = Vec::new();
            for idx in 0..c.len() {
                if row_visible(c.commits[idx], c.deletes[idx], as_of, my_txn)
                    && hash_range.is_none_or(|r| r.contains(c.hashes[idx]))
                {
                    sel.push(idx as u32);
                }
            }
            if sel.is_empty() {
                continue;
            }
            let mut column_values: Vec<std::vec::IntoIter<Value>> = c
                .columns
                .iter()
                .map(|col| col.gather_sorted(&sel).into_iter())
                .collect();
            for &idx in &sel {
                let row = Row::new(
                    column_values
                        .iter_mut()
                        // Every iterator gathered exactly `sel.len()`
                        // values above; a short column is corruption.
                        // fabriclint: allow(panic-hygiene): gather produced sel.len() values per column
                        .map(|it| it.next().expect("gather length mismatch"))
                        .collect(),
                );
                f(
                    RowLoc::Ros {
                        container: c.id,
                        idx: idx as usize,
                    },
                    &row,
                    c.hashes[idx as usize],
                );
            }
        }
        for (i, r) in self.wos.iter().enumerate() {
            if row_visible(r.commit, r.delete, as_of, my_txn)
                && hash_range.is_none_or(|range| range.contains(r.hash))
            {
                f(RowLoc::Wos(i), &r.row, r.hash);
            }
        }
    }

    /// Count rows visible at `as_of` (plus `my_txn`'s pending work)
    /// without materializing them — the rows a range scan must examine.
    pub fn visible_count(&self, as_of: u64, my_txn: Option<u64>) -> usize {
        let mut count = 0;
        for c in &self.ros {
            for idx in 0..c.len() {
                if row_visible(c.commits[idx], c.deletes[idx], as_of, my_txn) {
                    count += 1;
                }
            }
        }
        count
            + self
                .wos
                .iter()
                .filter(|r| row_visible(r.commit, r.delete, as_of, my_txn))
                .count()
    }

    /// Move committed WOS rows into a new encoded ROS container (the
    /// tuple mover's "moveout" operation). Pending rows stay put.
    /// Returns the number of rows moved.
    pub fn moveout(&mut self) -> usize {
        let moving: Vec<usize> = self
            .wos
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r.commit, CommitState::Committed(_)))
            .map(|(i, _)| i)
            .collect();
        if moving.is_empty() {
            return 0;
        }
        let n = moving.len();
        let mut hashes = Vec::with_capacity(n);
        let mut commits = Vec::with_capacity(n);
        let mut deletes = Vec::with_capacity(n);
        let mut column_values: Vec<Vec<Value>> = (0..self.column_count)
            .map(|_| Vec::with_capacity(n))
            .collect();
        for &i in &moving {
            let r = &self.wos[i];
            hashes.push(r.hash);
            commits.push(r.commit);
            deletes.push(r.delete);
            for (c, v) in r.row.values().iter().enumerate() {
                column_values[c].push(v.clone());
            }
        }
        let columns = column_values
            .into_iter()
            .map(|vals| encode_auto(&vals, common::DataType::Varchar))
            .collect();
        let id = self.next_container_id;
        self.next_container_id += 1;
        self.ros.push(RosContainer {
            id,
            columns,
            hashes,
            commits,
            deletes,
        });
        // Drop moved rows from the WOS (keep pending ones).
        let mut keep = Vec::with_capacity(self.wos.len() - n);
        for (i, r) in self.wos.drain(..).enumerate() {
            if !moving.contains(&i) {
                keep.push(r);
            }
        }
        self.wos = keep;
        n
    }

    /// Export every row (WOS and ROS) whose hash falls in `hash_range`,
    /// with commit/delete epochs and pending-transaction state intact —
    /// the recovery stream a rebuilding node pulls from a live peer.
    pub(crate) fn export_rows(&self, hash_range: Option<&HashRange>) -> Vec<ExportedRow> {
        let mut out = Vec::new();
        for c in &self.ros {
            for idx in 0..c.len() {
                if hash_range.is_none_or(|r| r.contains(c.hashes[idx])) {
                    out.push(ExportedRow {
                        row: c.row(idx),
                        hash: c.hashes[idx],
                        commit: c.commits[idx],
                        delete: c.deletes[idx],
                    });
                }
            }
        }
        for r in &self.wos {
            if hash_range.is_none_or(|range| range.contains(r.hash)) {
                out.push(ExportedRow {
                    row: r.row.clone(),
                    hash: r.hash,
                    commit: r.commit,
                    delete: r.delete,
                });
            }
        }
        out
    }

    /// Install exported rows verbatim. States are preserved, so
    /// epoch-pinned reads see the same history on the rebuilt replica
    /// as on its peer, and commits/aborts of transactions still open
    /// during recovery stamp the replica correctly afterwards.
    pub(crate) fn import_rows(&mut self, rows: Vec<ExportedRow>) {
        for r in rows {
            self.wos.push(WosRow {
                row: r.row,
                hash: r.hash,
                commit: r.commit,
                delete: r.delete,
            });
        }
    }

    /// Number of committed rows currently in the WOS (the moveout
    /// trigger input).
    pub fn wos_committed_rows(&self) -> usize {
        self.wos
            .iter()
            .filter(|r| matches!(r.commit, CommitState::Committed(_)))
            .count()
    }

    pub fn stats(&self) -> StorageStats {
        let mut ros_rows = 0;
        let mut raw = 0;
        let mut encoded = 0;
        for c in &self.ros {
            ros_rows += c.len();
            for col in &c.columns {
                encoded += col.encoded_size();
            }
            for idx in 0..c.len() {
                raw += c.row(idx).wire_size();
            }
        }
        StorageStats {
            wos_rows: self.wos.len(),
            ros_rows,
            ros_containers: self.ros.len(),
            ros_raw_bytes: raw,
            ros_encoded_bytes: encoded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::row;

    fn rows3() -> Vec<(Row, u64)> {
        vec![
            (row![1i64, "a"], 100),
            (row![2i64, "b"], 200),
            (row![3i64, "c"], 300),
        ]
    }

    #[test]
    fn pending_rows_invisible_to_others() {
        let mut s = NodeTableStore::new(2);
        s.insert_pending(rows3(), 7);
        assert!(s.scan(u64::MAX, None, None).is_empty());
        assert_eq!(s.scan(u64::MAX, Some(7), None).len(), 3);
        s.commit(7, 5);
        assert_eq!(s.scan(5, None, None).len(), 3);
        // Epoch-based snapshot: before the commit epoch nothing visible.
        assert_eq!(s.scan(4, None, None).len(), 0);
    }

    #[test]
    fn abort_discards_pending_inserts() {
        let mut s = NodeTableStore::new(2);
        s.insert_pending(rows3(), 7);
        s.abort(7);
        assert!(s.scan(u64::MAX, Some(7), None).is_empty());
        assert_eq!(s.stats().wos_rows, 0);
    }

    #[test]
    fn delete_visibility_and_abort() {
        let mut s = NodeTableStore::new(2);
        s.insert_pending(rows3(), 1);
        s.commit(1, 2);
        let visible = s.scan(2, None, None);
        // Txn 9 stages a delete of the first row.
        s.delete_pending(&[visible[0].loc], 9);
        // Others still see it; txn 9 does not.
        assert_eq!(s.scan(2, None, None).len(), 3);
        assert_eq!(s.scan(2, Some(9), None).len(), 2);
        s.abort(9);
        assert_eq!(s.scan(2, Some(9), None).len(), 3);
        // Now commit a delete at epoch 4 and check epoch visibility.
        let visible = s.scan(2, None, None);
        s.delete_pending(&[visible[0].loc], 10);
        s.commit(10, 4);
        assert_eq!(
            s.scan(3, None, None).len(),
            3,
            "old epoch still sees the row"
        );
        assert_eq!(s.scan(4, None, None).len(), 2, "new epoch does not");
    }

    #[test]
    fn hash_range_filtering() {
        let mut s = NodeTableStore::new(2);
        s.insert_pending(rows3(), 1);
        s.commit(1, 1);
        let r = HashRange::new(150, Some(250));
        let hits = s.scan(1, None, Some(&r));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].hash, 200);
    }

    #[test]
    fn moveout_preserves_rows_and_visibility() {
        let mut s = NodeTableStore::new(2);
        s.insert_pending(rows3(), 1);
        s.commit(1, 3);
        // A pending row must stay in the WOS.
        s.insert_pending(vec![(row![4i64, "d"], 400)], 2);
        let moved = s.moveout();
        assert_eq!(moved, 3);
        let stats = s.stats();
        assert_eq!(stats.ros_rows, 3);
        assert_eq!(stats.wos_rows, 1);
        assert_eq!(stats.ros_containers, 1);
        // Visibility unchanged.
        assert_eq!(s.scan(3, None, None).len(), 3);
        assert_eq!(s.scan(2, None, None).len(), 0);
        assert_eq!(s.scan(3, Some(2), None).len(), 4);
        // Deletes still work against ROS locations.
        let visible = s.scan(3, None, None);
        s.delete_pending(&[visible[1].loc], 5);
        s.commit(5, 6);
        assert_eq!(s.scan(6, None, None).len(), 2);
        assert_eq!(s.scan(5, None, None).len(), 3);
    }

    #[test]
    fn direct_load_creates_container() {
        let mut s = NodeTableStore::new(2);
        s.insert_pending_direct(rows3(), 1);
        assert_eq!(s.stats().ros_containers, 1);
        assert!(s.scan(10, None, None).is_empty());
        s.commit(1, 2);
        assert_eq!(s.scan(2, None, None).len(), 3);
    }

    #[test]
    fn direct_load_abort_removes_container() {
        let mut s = NodeTableStore::new(2);
        s.insert_pending_direct(rows3(), 1);
        s.abort(1);
        assert_eq!(s.stats().ros_containers, 0);
        s.insert_pending_direct(rows3(), 2);
        s.commit(2, 2);
        assert_eq!(s.scan(2, None, None).len(), 3);
    }

    #[test]
    fn scan_order_is_stable() {
        let mut s = NodeTableStore::new(2);
        s.insert_pending(rows3(), 1);
        s.commit(1, 1);
        s.moveout();
        s.insert_pending(vec![(row![4i64, "d"], 400)], 2);
        s.commit(2, 2);
        let rows: Vec<i64> = s
            .scan(2, None, None)
            .iter()
            .map(|v| v.row.get(0).as_i64().unwrap())
            .collect();
        assert_eq!(rows, vec![1, 2, 3, 4]);
    }

    #[test]
    fn insert_then_delete_same_txn() {
        let mut s = NodeTableStore::new(2);
        s.insert_pending(rows3(), 1);
        let mine = s.scan(0, Some(1), None);
        s.delete_pending(&[mine[0].loc], 1);
        assert_eq!(s.scan(0, Some(1), None).len(), 2);
        s.commit(1, 5);
        assert_eq!(s.scan(5, None, None).len(), 2);
    }
}
