//! Virtual system tables.
//!
//! The connector's locality planning rests on the fact that "the
//! hash-ring segmentation boundaries, along with the node that contains
//! each segment ... is stored in the Vertica system catalog and can be
//! queried" (paper Sec. 3.1.2). These read-only virtual tables expose
//! that metadata — and the data-collector's observability feed — to
//! SQL:
//!
//! * `v_segments` — one row per hash-ring segment: its owning node and
//!   its boundaries (hex, since the ring is the full 64-bit space),
//! * `v_tables` — catalog objects with their segmentation,
//! * `v_nodes` — node liveness and open session counts,
//! * `v_resource_pools` — admission-control pools: concurrency bound,
//!   live/queued statement counts, and shed totals,
//! * `dc_events` — the structured event log from the process-wide
//!   data collector (task launches, transactions, COPY loads, S2V
//!   phases, ...), one row per event in sequence order,
//! * `dc_counters` — monotonic counters plus flattened timer
//!   statistics (`<timer>.count`, `.sum_us`, `.min_us`, `.max_us`,
//!   `.p50_us`, `.p99_us`) as name/value pairs,
//! * `dc_lock_edges` — the lock-order witness's acquisition-order
//!   graph (debug/test builds): one row per observed "lock at
//!   `from_site` held while acquiring `to_site`" edge. Empty in
//!   release builds, where the witness compiles out,
//! * `dc_spans` — every retained distributed-trace span: trace/span/
//!   parent ids, name, timing, node/task/attempt tags, and row/byte
//!   payloads. `dur_us` is NULL while a span is unclosed,
//! * `dc_trace_summary` — one row per retained trace: its root span,
//!   span/failure/unclosed counts, total duration, and the rendered
//!   critical-path attribution line,
//! * `dc_histograms` — the log-linear value histograms
//!   (`Metric::Histo`): count/sum/min/max plus P50/P95/P99. Values
//!   are unit-free — span histograms hold microseconds,
//!   `v2s.piece_bytes` holds bytes,
//! * `dc_column_stats` — per-ROS-container column statistics: row and
//!   null counts, the NDV estimate, the encoding chosen, and the
//!   min/max zone-map endpoints (rendered as text; NULL when the store
//!   kept no endpoint). One row per node × container × column — what
//!   the scan planner and zone-map skipping actually consult,
//! * `dc_tuple_mover` — the tuple mover's retained operation log: one
//!   row per completed moveout/mergeout with rows moved, containers
//!   consumed/produced, the epoch it ran at, and its duration,
//! * `dc_nodes` — the elastic-membership view of the cluster: per node
//!   its liveness, retirement, kill-generation, open sessions, and how
//!   many times recovery rebuilt its stores,
//! * `dc_segment_map` — every retained segment-map version: one row per
//!   version × segment with the epoch the version became authoritative
//!   at, so epoch-pinned ownership is auditable from SQL,
//! * `dc_rebalance` — the rebalancer's retained operation log: plans,
//!   per-range copies, skips, injected crashes, and map flips.
//!
//! All tables are defined in one place ([`DEFS`]): the name list and
//! the scan dispatch both derive from it, so they cannot drift apart.

use common::{DataType, Row, Schema, Value};

use crate::cluster::Cluster;

/// A virtual-table definition: its name and the function producing its
/// contents. The single source of truth for both [`SYSTEM_TABLES`] and
/// [`scan_system_table`].
struct SystemTableDef {
    name: &'static str,
    scan: fn(&Cluster) -> (Schema, Vec<Row>),
}

static DEFS: &[SystemTableDef] = &[
    SystemTableDef {
        name: "v_segments",
        scan: scan_segments,
    },
    SystemTableDef {
        name: "v_tables",
        scan: scan_tables,
    },
    SystemTableDef {
        name: "v_nodes",
        scan: scan_nodes,
    },
    SystemTableDef {
        name: "v_resource_pools",
        scan: scan_resource_pools,
    },
    SystemTableDef {
        name: "dc_events",
        scan: scan_dc_events,
    },
    SystemTableDef {
        name: "dc_counters",
        scan: scan_dc_counters,
    },
    SystemTableDef {
        name: "dc_lock_edges",
        scan: scan_dc_lock_edges,
    },
    SystemTableDef {
        name: "dc_spans",
        scan: scan_dc_spans,
    },
    SystemTableDef {
        name: "dc_trace_summary",
        scan: scan_dc_trace_summary,
    },
    SystemTableDef {
        name: "dc_histograms",
        scan: scan_dc_histograms,
    },
    SystemTableDef {
        name: "dc_column_stats",
        scan: scan_dc_column_stats,
    },
    SystemTableDef {
        name: "dc_tuple_mover",
        scan: scan_dc_tuple_mover,
    },
    SystemTableDef {
        name: "dc_nodes",
        scan: scan_dc_nodes,
    },
    SystemTableDef {
        name: "dc_segment_map",
        scan: scan_dc_segment_map,
    },
    SystemTableDef {
        name: "dc_rebalance",
        scan: scan_dc_rebalance,
    },
];

/// One row per registered node slot, retired ones included — the
/// elastic-membership companion to `v_nodes`.
fn scan_dc_nodes(cluster: &Cluster) -> (Schema, Vec<Row>) {
    let schema = Schema::from_pairs(&[
        ("node", DataType::Int64),
        ("is_up", DataType::Boolean),
        ("retired", DataType::Boolean),
        ("generation", DataType::Int64),
        ("open_sessions", DataType::Int64),
        ("rebuilds", DataType::Int64),
    ]);
    let rows = (0..cluster.node_count())
        .map(|n| {
            Row::new(vec![
                Value::Int64(n as i64),
                Value::Boolean(cluster.is_node_up(n)),
                Value::Boolean(cluster.is_node_retired(n)),
                Value::Int64(cluster.node_generation(n) as i64),
                Value::Int64(cluster.open_sessions(n) as i64),
                Value::Int64(cluster.node_rebuilds(n) as i64),
            ])
        })
        .collect();
    (schema, rows)
}

/// One row per retained map version × segment, newest version last.
fn scan_dc_segment_map(cluster: &Cluster) -> (Schema, Vec<Row>) {
    let schema = Schema::from_pairs(&[
        ("version", DataType::Int64),
        ("effective_epoch", DataType::Int64),
        ("segment", DataType::Int64),
        ("owner", DataType::Int64),
        ("start_hash", DataType::Varchar),
        ("end_hash", DataType::Varchar),
        ("is_current", DataType::Boolean),
    ]);
    let history = cluster.segment_map_history();
    let current = history.last().map(|mv| mv.map.version());
    let mut rows = Vec::new();
    for mv in &history {
        for (s, seg) in mv.map.segments().iter().enumerate() {
            rows.push(Row::new(vec![
                Value::Int64(mv.map.version() as i64),
                Value::Int64(mv.effective_epoch as i64),
                Value::Int64(s as i64),
                Value::Int64(seg.owner as i64),
                Value::Varchar(format!("{:016x}", seg.range.start)),
                Value::Varchar(render_end_hash(seg.range.end)),
                Value::Boolean(Some(mv.map.version()) == current),
            ]));
        }
    }
    (schema, rows)
}

/// One row per retained rebalance operation, oldest first.
fn scan_dc_rebalance(cluster: &Cluster) -> (Schema, Vec<Row>) {
    let schema = Schema::from_pairs(&[
        ("seq", DataType::Int64),
        ("op", DataType::Varchar),
        ("node", DataType::Int64),
        ("table_name", DataType::Varchar),
        ("rows", DataType::Int64),
        ("start_hash", DataType::Varchar),
        ("end_hash", DataType::Varchar),
        ("map_version", DataType::Int64),
        ("epoch", DataType::Int64),
        ("dur_us", DataType::Int64),
    ]);
    let rows = cluster
        .rebalance_ops()
        .into_iter()
        .map(|op| {
            Row::new(vec![
                Value::Int64(op.seq as i64),
                Value::Varchar(op.op.to_string()),
                Value::Int64(op.node as i64),
                Value::Varchar(op.table),
                Value::Int64(op.rows as i64),
                Value::Varchar(format!("{:016x}", op.range_start)),
                Value::Varchar(render_end_hash(op.range_end)),
                Value::Int64(op.map_version as i64),
                Value::Int64(op.epoch as i64),
                Value::Int64(op.dur_us as i64),
            ])
        })
        .collect();
    (schema, rows)
}

/// Exclusive range ends render in hex; `None` is the wrapped top of the
/// 64-bit ring.
fn render_end_hash(end: Option<u64>) -> String {
    end.map(|e| format!("{e:016x}"))
        .unwrap_or_else(|| "ffffffffffffffff+1".to_string())
}

/// One row per retained tuple-mover operation, oldest first.
fn scan_dc_tuple_mover(cluster: &Cluster) -> (Schema, Vec<Row>) {
    let schema = Schema::from_pairs(&[
        ("seq", DataType::Int64),
        ("op", DataType::Varchar),
        ("node", DataType::Int64),
        ("table_name", DataType::Varchar),
        ("rows", DataType::Int64),
        ("containers_in", DataType::Int64),
        ("containers_out", DataType::Int64),
        ("epoch", DataType::Int64),
        ("dur_us", DataType::Int64),
    ]);
    let rows = cluster
        .mover_ops()
        .into_iter()
        .map(|op| {
            Row::new(vec![
                Value::Int64(op.seq as i64),
                Value::Varchar(op.op.to_string()),
                Value::Int64(op.node as i64),
                Value::Varchar(op.table),
                Value::Int64(op.rows as i64),
                Value::Int64(op.containers_in as i64),
                Value::Int64(op.containers_out as i64),
                Value::Int64(op.epoch as i64),
                Value::Int64(op.dur_us as i64),
            ])
        })
        .collect();
    (schema, rows)
}

/// Names of the available system tables.
pub const SYSTEM_TABLES: &[&str] = &[
    "v_segments",
    "v_tables",
    "v_nodes",
    "v_resource_pools",
    "dc_events",
    "dc_counters",
    "dc_lock_edges",
    "dc_spans",
    "dc_trace_summary",
    "dc_histograms",
    "dc_column_stats",
    "dc_tuple_mover",
    "dc_nodes",
    "dc_segment_map",
    "dc_rebalance",
];

/// Produce the contents of a system table, or `None` if `name` isn't one.
pub(crate) fn scan_system_table(cluster: &Cluster, name: &str) -> Option<(Schema, Vec<Row>)> {
    let name = name.to_ascii_lowercase();
    DEFS.iter()
        .find(|d| d.name == name)
        .map(|d| (d.scan)(cluster))
}

fn scan_segments(cluster: &Cluster) -> (Schema, Vec<Row>) {
    let schema = Schema::from_pairs(&[
        ("segment", DataType::Int64),
        ("node", DataType::Int64),
        ("start_hash", DataType::Varchar),
        ("end_hash", DataType::Varchar),
    ]);
    let map = cluster.segment_map();
    let rows = map
        .segments()
        .iter()
        .enumerate()
        .map(|(s, seg)| {
            Row::new(vec![
                Value::Int64(s as i64),
                Value::Int64(seg.owner as i64),
                Value::Varchar(format!("{:016x}", seg.range.start)),
                Value::Varchar(render_end_hash(seg.range.end)),
            ])
        })
        .collect();
    (schema, rows)
}

fn scan_tables(cluster: &Cluster) -> (Schema, Vec<Row>) {
    let schema = Schema::from_pairs(&[
        ("table_name", DataType::Varchar),
        ("segmented", DataType::Boolean),
        ("segmentation_columns", DataType::Varchar),
        ("column_count", DataType::Int64),
        ("is_temp", DataType::Boolean),
    ]);
    let catalog = cluster.catalog.read();
    let rows = catalog
        .table_names()
        .into_iter()
        .filter_map(|name| {
            let def = catalog.table(&name).ok()?;
            let seg_cols = match &def.segmentation {
                crate::catalog::Segmentation::ByHash(cols) => cols.join(","),
                crate::catalog::Segmentation::Unsegmented => String::new(),
            };
            Some(Row::new(vec![
                Value::Varchar(def.name.clone()),
                Value::Boolean(def.is_segmented()),
                Value::Varchar(seg_cols),
                Value::Int64(def.schema.len() as i64),
                Value::Boolean(def.is_temp),
            ]))
        })
        .collect();
    (schema, rows)
}

fn scan_nodes(cluster: &Cluster) -> (Schema, Vec<Row>) {
    let schema = Schema::from_pairs(&[
        ("node", DataType::Int64),
        ("is_up", DataType::Boolean),
        ("open_sessions", DataType::Int64),
    ]);
    let rows = (0..cluster.node_count())
        .map(|n| {
            Row::new(vec![
                Value::Int64(n as i64),
                Value::Boolean(cluster.is_node_up(n)),
                Value::Int64(cluster.open_sessions(n) as i64),
            ])
        })
        .collect();
    (schema, rows)
}

fn scan_resource_pools(cluster: &Cluster) -> (Schema, Vec<Row>) {
    let schema = Schema::from_pairs(&[
        ("pool_name", DataType::Varchar),
        ("memory_bytes", DataType::Int64),
        ("max_concurrency", DataType::Int64),
        ("max_queue", DataType::Int64),
        ("queue_timeout_ms", DataType::Int64),
        ("active", DataType::Int64),
        ("waiting", DataType::Int64),
        ("high_water", DataType::Int64),
        ("shed_total", DataType::Int64),
    ]);
    // Effectively-unbounded limits render as i64::MAX rather than
    // wrapping negative.
    let clamp = |n: usize| i64::try_from(n).unwrap_or(i64::MAX);
    let rows = cluster
        .resource_pools()
        .into_iter()
        .map(|p| {
            Row::new(vec![
                Value::Varchar(p.name().to_string()),
                Value::Int64(i64::try_from(p.memory_bytes()).unwrap_or(i64::MAX)),
                Value::Int64(clamp(p.max_concurrency())),
                Value::Int64(clamp(p.max_queue())),
                p.queue_timeout()
                    .map(|t| Value::Int64(i64::try_from(t.as_millis()).unwrap_or(i64::MAX)))
                    .unwrap_or(Value::Null),
                Value::Int64(p.active() as i64),
                Value::Int64(p.waiting() as i64),
                Value::Int64(p.high_water_mark() as i64),
                Value::Int64(i64::try_from(p.shed_count()).unwrap_or(i64::MAX)),
            ])
        })
        .collect();
    (schema, rows)
}

fn scan_dc_events(_cluster: &Cluster) -> (Schema, Vec<Row>) {
    let schema = Schema::from_pairs(&[
        ("seq", DataType::Int64),
        ("ts_us", DataType::Int64),
        ("dur_us", DataType::Int64),
        ("kind", DataType::Varchar),
        ("job", DataType::Varchar),
        ("task", DataType::Int64),
        ("node", DataType::Int64),
        ("rows", DataType::Int64),
        ("bytes", DataType::Int64),
        ("detail", DataType::Varchar),
    ]);
    let snap = obs::global().snapshot();
    let rows = snap
        .events
        .into_iter()
        .map(|e| {
            Row::new(vec![
                Value::Int64(e.seq as i64),
                Value::Int64(e.ts_us as i64),
                Value::Int64(e.dur_us as i64),
                Value::Varchar(e.kind.as_str().to_string()),
                e.job.map(Value::Varchar).unwrap_or(Value::Null),
                e.task
                    .map(|t| Value::Int64(t as i64))
                    .unwrap_or(Value::Null),
                e.node
                    .map(|n| Value::Int64(n as i64))
                    .unwrap_or(Value::Null),
                Value::Int64(e.rows as i64),
                Value::Int64(e.bytes as i64),
                Value::Varchar(e.detail),
            ])
        })
        .collect();
    (schema, rows)
}

fn scan_dc_counters(_cluster: &Cluster) -> (Schema, Vec<Row>) {
    let schema = Schema::from_pairs(&[("name", DataType::Varchar), ("value", DataType::Int64)]);
    let snap = obs::global().snapshot();
    let mut rows: Vec<Row> = snap
        .counters
        .iter()
        .map(|(name, value)| {
            Row::new(vec![
                Value::Varchar(name.clone()),
                Value::Int64(*value as i64),
            ])
        })
        .collect();
    for (name, t) in &snap.timers {
        for (suffix, value) in [
            ("count", t.count),
            ("sum_us", t.sum_us),
            ("min_us", t.min_us),
            ("max_us", t.max_us),
            ("p50_us", t.p50_us),
            ("p99_us", t.p99_us),
        ] {
            rows.push(Row::new(vec![
                Value::Varchar(format!("{name}.{suffix}")),
                Value::Int64(value as i64),
            ]));
        }
    }
    rows.push(Row::new(vec![
        Value::Varchar("dc.dropped_events".to_string()),
        Value::Int64(snap.dropped_events as i64),
    ]));
    rows.push(Row::new(vec![
        Value::Varchar("dc.dropped_spans".to_string()),
        Value::Int64(snap.dropped_spans as i64),
    ]));
    // Lock-order-witness findings are pulled here rather than pushed
    // through the collector: the witness hooks run while a freshly
    // acquired guard is still held, so an emit from inside them could
    // re-enter the collector's own locks. Absent in release builds,
    // where the witness compiles out.
    if parking_lot::witness::active() {
        for (name, value) in [
            (
                obs::names::LOCKWITNESS_CLASSES,
                parking_lot::witness::class_count(),
            ),
            (
                obs::names::LOCKWITNESS_EDGES,
                parking_lot::witness::edge_count(),
            ),
            (
                obs::names::LOCKWITNESS_CYCLES,
                parking_lot::witness::cycle_count(),
            ),
            (
                obs::names::LOCKWITNESS_HAZARDS,
                parking_lot::witness::hazard_count(),
            ),
        ] {
            rows.push(Row::new(vec![
                Value::Varchar(name.to_string()),
                Value::Int64(i64::try_from(value).unwrap_or(i64::MAX)),
            ]));
        }
    }
    (schema, rows)
}

fn scan_dc_lock_edges(_cluster: &Cluster) -> (Schema, Vec<Row>) {
    let schema = Schema::from_pairs(&[
        ("from_site", DataType::Varchar),
        ("to_site", DataType::Varchar),
        ("count", DataType::Int64),
    ]);
    let snap = parking_lot::witness::snapshot();
    let rows = snap
        .edges
        .into_iter()
        .map(|e| {
            Row::new(vec![
                Value::Varchar(e.from_site),
                Value::Varchar(e.to_site),
                Value::Int64(i64::try_from(e.count).unwrap_or(i64::MAX)),
            ])
        })
        .collect();
    (schema, rows)
}

fn scan_dc_spans(_cluster: &Cluster) -> (Schema, Vec<Row>) {
    let schema = Schema::from_pairs(&[
        ("trace_id", DataType::Int64),
        ("span_id", DataType::Int64),
        ("parent_id", DataType::Int64),
        ("name", DataType::Varchar),
        ("start_us", DataType::Int64),
        ("dur_us", DataType::Int64),
        ("node", DataType::Int64),
        ("task", DataType::Int64),
        ("attempt", DataType::Int64),
        ("rows", DataType::Int64),
        ("bytes", DataType::Int64),
        ("failed", DataType::Boolean),
        ("detail", DataType::Varchar),
    ]);
    let rows = obs::global()
        .all_spans()
        .into_iter()
        .map(|s| {
            Row::new(vec![
                Value::Int64(s.trace.0 as i64),
                Value::Int64(s.span.0 as i64),
                s.parent
                    .map(|p| Value::Int64(p.0 as i64))
                    .unwrap_or(Value::Null),
                Value::Varchar(s.name.to_string()),
                Value::Int64(s.start_us as i64),
                // NULL marks an unclosed span; 0 is a real (sub-µs)
                // duration.
                s.end_us
                    .map(|_| Value::Int64(s.dur_us() as i64))
                    .unwrap_or(Value::Null),
                s.node
                    .map(|n| Value::Int64(n as i64))
                    .unwrap_or(Value::Null),
                s.task
                    .map(|t| Value::Int64(t as i64))
                    .unwrap_or(Value::Null),
                Value::Int64(s.attempt as i64),
                Value::Int64(s.rows as i64),
                Value::Int64(s.bytes as i64),
                Value::Boolean(s.failed),
                Value::Varchar(s.detail),
            ])
        })
        .collect();
    (schema, rows)
}

fn scan_dc_trace_summary(_cluster: &Cluster) -> (Schema, Vec<Row>) {
    let schema = Schema::from_pairs(&[
        ("trace_id", DataType::Int64),
        ("root", DataType::Varchar),
        ("spans", DataType::Int64),
        ("failed_spans", DataType::Int64),
        ("unclosed_spans", DataType::Int64),
        ("orphan_spans", DataType::Int64),
        ("dur_us", DataType::Int64),
        ("critical_path", DataType::Varchar),
    ]);
    let collector = obs::global();
    let rows = collector
        .trace_ids()
        .into_iter()
        .filter_map(|id| {
            let spans = collector.trace_spans(id);
            let root = spans.iter().find(|s| s.parent.is_none())?;
            let issues = obs::trace::validate(&spans);
            let unclosed = issues
                .iter()
                .filter(|i| matches!(i, obs::trace::TraceIssue::Unclosed { .. }))
                .count();
            let orphans = issues.len() - unclosed;
            Some(Row::new(vec![
                Value::Int64(id.0 as i64),
                Value::Varchar(root.name.to_string()),
                Value::Int64(spans.len() as i64),
                Value::Int64(spans.iter().filter(|s| s.failed).count() as i64),
                Value::Int64(unclosed as i64),
                Value::Int64(orphans as i64),
                root.end_us
                    .map(|_| Value::Int64(root.dur_us() as i64))
                    .unwrap_or(Value::Null),
                Value::Varchar(obs::trace::critical_path_text(&spans)),
            ]))
        })
        .collect();
    (schema, rows)
}

fn scan_dc_histograms(_cluster: &Cluster) -> (Schema, Vec<Row>) {
    let schema = Schema::from_pairs(&[
        ("name", DataType::Varchar),
        ("count", DataType::Int64),
        ("sum", DataType::Int64),
        ("min", DataType::Int64),
        ("max", DataType::Int64),
        ("p50", DataType::Int64),
        ("p95", DataType::Int64),
        ("p99", DataType::Int64),
    ]);
    let snap = obs::global().snapshot();
    let rows = snap
        .histos
        .iter()
        .map(|(name, h)| {
            let s = h.stats();
            Row::new(vec![
                Value::Varchar(name.clone()),
                Value::Int64(s.count as i64),
                Value::Int64(s.sum as i64),
                Value::Int64(s.min as i64),
                Value::Int64(s.max as i64),
                Value::Int64(s.p50 as i64),
                Value::Int64(s.p95 as i64),
                Value::Int64(s.p99 as i64),
            ])
        })
        .collect();
    (schema, rows)
}

fn scan_dc_column_stats(cluster: &Cluster) -> (Schema, Vec<Row>) {
    let schema = Schema::from_pairs(&[
        ("node", DataType::Int64),
        ("table_name", DataType::Varchar),
        ("container_id", DataType::Int64),
        ("column_idx", DataType::Int64),
        ("encoding", DataType::Varchar),
        ("row_count", DataType::Int64),
        ("null_count", DataType::Int64),
        ("ndv", DataType::Int64),
        ("min", DataType::Varchar),
        ("max", DataType::Varchar),
    ]);
    // Zone-map endpoints render as text: the column's min/max can be
    // any SQL type, and NULL marks a stat the store could not keep
    // (all-null or mixed-type column).
    let render = |v: &Option<Value>| match v {
        Some(v) => Value::Varchar(v.to_string()),
        None => Value::Null,
    };
    let mut rows = Vec::new();
    for (n, node) in cluster.node_states().into_iter().enumerate() {
        let stores = node.stores.read();
        let mut tables: Vec<&String> = stores.keys().collect();
        tables.sort();
        for table in tables {
            for info in stores[table].container_infos() {
                for (idx, cs) in info.columns.iter().enumerate() {
                    rows.push(Row::new(vec![
                        Value::Int64(n as i64),
                        Value::Varchar(table.clone()),
                        Value::Int64(info.id as i64),
                        Value::Int64(idx as i64),
                        Value::Varchar(info.encodings[idx].to_string()),
                        Value::Int64(info.row_count as i64),
                        Value::Int64(cs.null_count as i64),
                        Value::Int64(cs.ndv as i64),
                        render(&cs.min),
                        render(&cs.max),
                    ]));
                }
            }
        }
    }
    (schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterConfig};

    /// `SYSTEM_TABLES` (the public const) must stay in bijection with
    /// the scan dispatch in `DEFS` — the drift this guards against is a
    /// table that is advertised but not scannable, or vice versa.
    #[test]
    fn system_tables_const_matches_defs() {
        let from_defs: Vec<&str> = DEFS.iter().map(|d| d.name).collect();
        assert_eq!(SYSTEM_TABLES, from_defs.as_slice());
        // Every advertised table actually scans.
        let cluster = Cluster::new(ClusterConfig::default());
        for name in SYSTEM_TABLES {
            assert!(
                scan_system_table(&cluster, name).is_some(),
                "{name} is advertised but does not scan"
            );
        }
    }

    #[test]
    fn resource_pools_table_lists_general_pool() {
        let cluster = Cluster::new(ClusterConfig::default());
        let (schema, rows) = scan_system_table(&cluster, "v_resource_pools").unwrap();
        assert_eq!(schema.fields()[0].name, "pool_name");
        assert!(rows
            .iter()
            .any(|r| matches!(r.values().first(), Some(Value::Varchar(n)) if n == "general")));
        // The general pool is unbounded: limits clamp instead of wrap.
        let general = rows
            .iter()
            .find(|r| matches!(r.values().first(), Some(Value::Varchar(n)) if n == "general"))
            .unwrap();
        assert_eq!(general.values()[2], Value::Int64(i64::MAX));
        assert_eq!(general.values()[4], Value::Null);
    }

    #[test]
    fn dc_tables_have_stable_schemas() {
        let cluster = Cluster::new(ClusterConfig::default());
        let (events_schema, _) = scan_system_table(&cluster, "dc_events").unwrap();
        assert_eq!(events_schema.len(), 10);
        assert_eq!(events_schema.fields()[0].name, "seq");
        assert_eq!(events_schema.fields()[3].name, "kind");
        let (counters_schema, counter_rows) = scan_system_table(&cluster, "dc_counters").unwrap();
        assert_eq!(counters_schema.len(), 2);
        // dc.dropped_events is always present.
        assert!(counter_rows.iter().any(
            |r| matches!(r.values().first(), Some(Value::Varchar(n)) if n == "dc.dropped_events")
        ));
    }

    /// The trace tables read the process-wide collector, which other
    /// tests also feed — so assert on spans this test created rather
    /// than on totals.
    #[test]
    fn dc_span_tables_expose_trace_and_critical_path() {
        let cluster = Cluster::new(ClusterConfig::default());
        let c = obs::global();
        let root = c.trace_start("s2v.job");
        assert!(root.is_some());
        let child = c.span_start("s2v.phase3", root);
        c.span_finish(child, |s| {
            s.node = Some(2);
            s.attempt = 1;
            s.rows = 7;
        });
        c.span_finish(root, |s| s.detail = "dc_spans test job".to_string());

        let (schema, rows) = scan_system_table(&cluster, "dc_spans").unwrap();
        assert_eq!(schema.fields()[0].name, "trace_id");
        assert_eq!(schema.len(), 13);
        let trace_id = Value::Int64(root.trace.0 as i64);
        let mine: Vec<&Row> = rows.iter().filter(|r| r.values()[0] == trace_id).collect();
        assert_eq!(mine.len(), 2);
        // Root has NULL parent; the child links to it.
        assert_eq!(mine[0].values()[2], Value::Null);
        assert_eq!(mine[1].values()[2], Value::Int64(root.span.0 as i64));
        assert_eq!(mine[1].values()[9], Value::Int64(7)); // rows tag

        let (_, summaries) = scan_system_table(&cluster, "dc_trace_summary").unwrap();
        let mine = summaries
            .iter()
            .find(|r| r.values()[0] == trace_id)
            .expect("summary row for the test trace");
        assert_eq!(mine.values()[1], Value::Varchar("s2v.job".to_string()));
        assert_eq!(mine.values()[2], Value::Int64(2));
        assert_eq!(mine.values()[4], Value::Int64(0), "no unclosed spans");
        let Value::Varchar(path) = &mine.values()[7] else {
            panic!("critical_path must be text")
        };
        assert!(path.contains("s2v.phase3"), "critical path: {path}");
    }

    #[test]
    fn dc_histograms_reports_exact_quantiles() {
        let cluster = Cluster::new(ClusterConfig::default());
        // A registered name nothing else in this test binary records,
        // so the quantiles stay exact.
        for v in [1, 2, 3, 60] {
            obs::global().record_histo("v2s.piece_bytes", v);
        }
        let (schema, rows) = scan_system_table(&cluster, "dc_histograms").unwrap();
        assert_eq!(schema.fields()[0].name, "name");
        let row = rows
            .iter()
            .find(|r| r.values()[0] == Value::Varchar("v2s.piece_bytes".to_string()))
            .expect("histogram row");
        assert_eq!(row.values()[1], Value::Int64(4)); // count
        assert_eq!(row.values()[2], Value::Int64(66)); // sum
                                                       // Values under the linear cutoff are bucketed exactly.
        assert_eq!(row.values()[5], Value::Int64(2)); // p50
        assert_eq!(row.values()[7], Value::Int64(60)); // p99
    }

    #[test]
    fn dc_column_stats_exposes_zone_maps() {
        let cluster = Cluster::new(ClusterConfig::default());
        let mut session = cluster.connect(0).unwrap();
        session
            .execute("CREATE TABLE zm (id INT, name VARCHAR) SEGMENTED BY HASH(id) ALL NODES")
            .unwrap();
        session
            .copy(
                "zm",
                crate::copy::CopySource::Csv {
                    text: "1,a\n2,b\n3,c\n4,d\n".to_string(),
                    delimiter: ',',
                },
                crate::copy::CopyOptions::default(),
            )
            .unwrap();
        let (schema, rows) = scan_system_table(&cluster, "dc_column_stats").unwrap();
        assert_eq!(schema.fields()[1].name, "table_name");
        let zm: Vec<&Row> = rows
            .iter()
            .filter(|r| r.values()[1] == Value::Varchar("zm".to_string()))
            .collect();
        assert!(!zm.is_empty(), "COPY DIRECT must create container stats");
        // Every container row for column 0 carries integer min/max text
        // and a positive NDV.
        for r in zm.iter().filter(|r| r.values()[3] == Value::Int64(0)) {
            assert!(matches!(&r.values()[7], Value::Int64(ndv) if *ndv >= 1));
            assert!(matches!(&r.values()[8], Value::Varchar(_)));
            assert!(matches!(&r.values()[9], Value::Varchar(_)));
        }
    }

    #[test]
    fn dc_lock_edges_table_scans() {
        let cluster = Cluster::new(ClusterConfig::default());
        let (schema, rows) = scan_system_table(&cluster, "dc_lock_edges").unwrap();
        assert_eq!(schema.fields()[0].name, "from_site");
        assert_eq!(schema.fields()[1].name, "to_site");
        assert_eq!(schema.fields()[2].name, "count");
        if parking_lot::witness::active() {
            // Building a cluster takes catalog/store locks in a fixed
            // order, so a debug build has already observed edges; every
            // row resolves both creation sites.
            for row in &rows {
                assert!(matches!(&row.values()[0], Value::Varchar(s) if !s.is_empty()));
                assert!(matches!(&row.values()[2], Value::Int64(c) if *c > 0));
            }
        } else {
            assert!(rows.is_empty(), "witness must compile out in release");
        }
    }
}
