//! Virtual system tables.
//!
//! The connector's locality planning rests on the fact that "the
//! hash-ring segmentation boundaries, along with the node that contains
//! each segment ... is stored in the Vertica system catalog and can be
//! queried" (paper Sec. 3.1.2). These read-only virtual tables expose
//! that metadata to SQL:
//!
//! * `v_segments` — one row per hash-ring segment: its owning node and
//!   its boundaries (hex, since the ring is the full 64-bit space),
//! * `v_tables` — catalog objects with their segmentation,
//! * `v_nodes` — node liveness and open session counts.

use common::{DataType, Row, Schema, Value};

use crate::cluster::Cluster;

/// Names of the available system tables.
pub const SYSTEM_TABLES: &[&str] = &["v_segments", "v_tables", "v_nodes"];

/// Produce the contents of a system table, or `None` if `name` isn't one.
pub(crate) fn scan_system_table(cluster: &Cluster, name: &str) -> Option<(Schema, Vec<Row>)> {
    match name.to_ascii_lowercase().as_str() {
        "v_segments" => {
            let schema = Schema::from_pairs(&[
                ("segment", DataType::Int64),
                ("node", DataType::Int64),
                ("start_hash", DataType::Varchar),
                ("end_hash", DataType::Varchar),
            ]);
            let map = cluster.segment_map();
            let rows = (0..map.node_count())
                .map(|s| {
                    let range = map.segment_range(s);
                    Row::new(vec![
                        Value::Int64(s as i64),
                        Value::Int64(s as i64),
                        Value::Varchar(format!("{:016x}", range.start)),
                        Value::Varchar(
                            range
                                .end
                                .map(|e| format!("{e:016x}"))
                                .unwrap_or_else(|| "ffffffffffffffff+1".to_string()),
                        ),
                    ])
                })
                .collect();
            Some((schema, rows))
        }
        "v_tables" => {
            let schema = Schema::from_pairs(&[
                ("table_name", DataType::Varchar),
                ("segmented", DataType::Boolean),
                ("segmentation_columns", DataType::Varchar),
                ("column_count", DataType::Int64),
                ("is_temp", DataType::Boolean),
            ]);
            let catalog = cluster.catalog.read();
            let rows = catalog
                .table_names()
                .into_iter()
                .filter_map(|name| {
                    let def = catalog.table(&name).ok()?;
                    let seg_cols = match &def.segmentation {
                        crate::catalog::Segmentation::ByHash(cols) => cols.join(","),
                        crate::catalog::Segmentation::Unsegmented => String::new(),
                    };
                    Some(Row::new(vec![
                        Value::Varchar(def.name.clone()),
                        Value::Boolean(def.is_segmented()),
                        Value::Varchar(seg_cols),
                        Value::Int64(def.schema.len() as i64),
                        Value::Boolean(def.is_temp),
                    ]))
                })
                .collect();
            Some((schema, rows))
        }
        "v_nodes" => {
            let schema = Schema::from_pairs(&[
                ("node", DataType::Int64),
                ("is_up", DataType::Boolean),
                ("open_sessions", DataType::Int64),
            ]);
            let rows = (0..cluster.node_count())
                .map(|n| {
                    Row::new(vec![
                        Value::Int64(n as i64),
                        Value::Boolean(cluster.is_node_up(n)),
                        Value::Int64(cluster.open_sessions(n) as i64),
                    ])
                })
                .collect();
            Some((schema, rows))
        }
        _ => None,
    }
}
