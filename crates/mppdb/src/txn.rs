//! Transactions: ids, table locks, and commit bookkeeping.
//!
//! Writers use two-phase locking with two modes, mirroring how MPP
//! engines let bulk loads proceed concurrently:
//!
//! * **Shared** — insert/COPY paths; any number of transactions may
//!   hold it simultaneously (each stages its own pending rows, so
//!   concurrent loads cannot conflict).
//! * **Exclusive** — update/delete and reads-inside-transactions; a
//!   single holder, blocking shared holders too.
//!
//! Auto-commit *reads* never take locks — they are pure epoch
//! snapshots. This split is exactly what the connector relies on: all
//! S2V tasks bulk-load the staging table in parallel (shared), their
//! tiny check-and-set updates on the protocol tables serialize
//! (exclusive), and V2S's parallel snapshot reads never block.

use std::collections::{HashMap, HashSet};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::error::{DbError, DbResult};

/// Lock modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    Shared,
    Exclusive,
}

/// State of one open transaction (owned by a session).
#[derive(Debug)]
pub struct TxnHandle {
    pub id: u64,
    /// Tables this transaction wrote or read under lock; their stores
    /// are stamped at commit.
    pub touched: HashSet<String>,
    /// Tables this transaction holds locks on.
    pub locked: HashSet<String>,
}

impl TxnHandle {
    pub fn new(id: u64) -> TxnHandle {
        TxnHandle {
            id,
            touched: HashSet::new(),
            locked: HashSet::new(),
        }
    }
}

#[derive(Debug, Default)]
struct LockState {
    exclusive: Option<u64>,
    shared: HashSet<u64>,
}

/// Table lock manager with wait timeouts (deadlock resolution by
/// timeout, as many databases do).
#[derive(Debug, Default)]
pub struct LockManager {
    tables: Mutex<HashMap<String, LockState>>,
    released: Condvar,
}

impl LockManager {
    pub fn new() -> LockManager {
        LockManager::default()
    }

    /// Acquire `table`'s lock for `txn` in the given mode. Re-entrant;
    /// a shared holder may upgrade to exclusive once it is the sole
    /// holder.
    pub fn acquire(
        &self,
        txn: u64,
        table: &str,
        mode: LockMode,
        timeout: Duration,
    ) -> DbResult<()> {
        let mut tables = self.tables.lock();
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let state = tables.entry(table.to_string()).or_default();
            let granted = match mode {
                LockMode::Shared => match state.exclusive {
                    None => {
                        state.shared.insert(txn);
                        true
                    }
                    Some(owner) if owner == txn => true,
                    Some(_) => false,
                },
                LockMode::Exclusive => {
                    let other_shared = state.shared.iter().any(|&holder| holder != txn);
                    match state.exclusive {
                        Some(owner) if owner == txn => true,
                        None if !other_shared => {
                            state.exclusive = Some(txn);
                            state.shared.remove(&txn);
                            true
                        }
                        _ => false,
                    }
                }
            };
            if granted {
                return Ok(());
            }
            if self.released.wait_until(&mut tables, deadline).timed_out() {
                return Err(DbError::LockTimeout {
                    table: table.to_string(),
                });
            }
        }
    }

    /// Release every lock held by `txn`.
    pub fn release_all(&self, txn: u64) {
        let mut tables = self.tables.lock();
        tables.retain(|_, state| {
            if state.exclusive == Some(txn) {
                state.exclusive = None;
            }
            state.shared.remove(&txn);
            state.exclusive.is_some() || !state.shared.is_empty()
        });
        self.released.notify_all();
    }

    /// Current exclusive owner of a table's lock (diagnostics/tests).
    pub fn exclusive_owner(&self, table: &str) -> Option<u64> {
        self.tables
            .lock()
            .get(table)
            .and_then(|state| state.exclusive)
    }

    /// Number of shared holders (diagnostics/tests).
    pub fn shared_holders(&self, table: &str) -> usize {
        self.tables
            .lock()
            .get(table)
            .map(|state| state.shared.len())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const T: Duration = Duration::from_millis(20);

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::new();
        lm.acquire(1, "t", LockMode::Shared, T).unwrap();
        lm.acquire(2, "t", LockMode::Shared, T).unwrap();
        lm.acquire(3, "t", LockMode::Shared, T).unwrap();
        assert_eq!(lm.shared_holders("t"), 3);
        assert_eq!(lm.exclusive_owner("t"), None);
    }

    #[test]
    fn exclusive_blocks_everyone() {
        let lm = LockManager::new();
        lm.acquire(1, "t", LockMode::Exclusive, T).unwrap();
        assert!(lm.acquire(2, "t", LockMode::Shared, T).is_err());
        assert!(lm.acquire(2, "t", LockMode::Exclusive, T).is_err());
        // Re-entrant for the owner, in both modes.
        lm.acquire(1, "t", LockMode::Exclusive, T).unwrap();
        lm.acquire(1, "t", LockMode::Shared, T).unwrap();
    }

    #[test]
    fn shared_blocks_exclusive_until_released() {
        let lm = LockManager::new();
        lm.acquire(1, "t", LockMode::Shared, T).unwrap();
        assert!(lm.acquire(2, "t", LockMode::Exclusive, T).is_err());
        lm.release_all(1);
        lm.acquire(2, "t", LockMode::Exclusive, T).unwrap();
    }

    #[test]
    fn sole_shared_holder_upgrades() {
        let lm = LockManager::new();
        lm.acquire(1, "t", LockMode::Shared, T).unwrap();
        lm.acquire(1, "t", LockMode::Exclusive, T).unwrap();
        assert_eq!(lm.exclusive_owner("t"), Some(1));
        assert!(lm.acquire(2, "t", LockMode::Shared, T).is_err());
    }

    #[test]
    fn contended_upgrade_times_out() {
        let lm = LockManager::new();
        lm.acquire(1, "t", LockMode::Shared, T).unwrap();
        lm.acquire(2, "t", LockMode::Shared, T).unwrap();
        let err = lm.acquire(1, "t", LockMode::Exclusive, T).unwrap_err();
        assert!(matches!(err, DbError::LockTimeout { .. }));
    }

    #[test]
    fn release_wakes_waiter() {
        let lm = Arc::new(LockManager::new());
        lm.acquire(1, "t", LockMode::Exclusive, T).unwrap();
        let lm2 = Arc::clone(&lm);
        let waiter = std::thread::spawn(move || {
            lm2.acquire(2, "t", LockMode::Exclusive, Duration::from_secs(5))
        });
        std::thread::sleep(Duration::from_millis(10));
        lm.release_all(1);
        waiter.join().unwrap().unwrap();
        assert_eq!(lm.exclusive_owner("t"), Some(2));
    }

    #[test]
    fn release_all_only_releases_own_locks() {
        let lm = LockManager::new();
        lm.acquire(1, "a", LockMode::Exclusive, T).unwrap();
        lm.acquire(2, "b", LockMode::Shared, T).unwrap();
        lm.release_all(1);
        assert_eq!(lm.exclusive_owner("a"), None);
        assert_eq!(lm.shared_holders("b"), 1);
    }

    #[test]
    fn many_threads_serialize_on_exclusive() {
        let lm = Arc::new(LockManager::new());
        let counter = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for txn in 0..16u64 {
                let lm = Arc::clone(&lm);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    lm.acquire(txn, "t", LockMode::Exclusive, Duration::from_secs(10))
                        .unwrap();
                    *counter.lock() += 1;
                    lm.release_all(txn);
                });
            }
        });
        assert_eq!(*counter.lock(), 16);
    }
}
