//! User-Defined Extensions (UDx): scalar functions callable from SQL.
//!
//! The paper extends the database's analytics by deploying models and
//! scoring them through a UDF (`PMMLPredict(... USING PARAMETERS
//! model_name='...')`, Sec. 3.3). The registry lives on the cluster;
//! the SQL executor resolves any non-aggregate function call here.

use std::collections::HashMap;

use common::Value;

use crate::error::{DbError, DbResult};

/// Named parameters passed via `USING PARAMETERS`.
#[derive(Debug, Clone, Default)]
pub struct UdfParams {
    params: HashMap<String, Value>,
}

impl UdfParams {
    pub fn new(pairs: &[(String, Value)]) -> UdfParams {
        UdfParams {
            params: pairs
                .iter()
                .map(|(k, v)| (k.to_ascii_lowercase(), v.clone()))
                .collect(),
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.params.get(&key.to_ascii_lowercase())
    }

    pub fn require_str(&self, key: &str) -> DbResult<&str> {
        match self.get(key) {
            Some(Value::Varchar(s)) => Ok(s),
            Some(other) => Err(DbError::Udf(format!(
                "parameter {key} must be a string, got {}",
                other.type_name()
            ))),
            None => Err(DbError::Udf(format!("missing required parameter {key}"))),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }
}

/// A scalar user-defined function.
pub trait ScalarUdf: Send + Sync {
    /// Function name as invoked from SQL (case-insensitive).
    fn name(&self) -> &str;

    /// Evaluate one invocation.
    fn eval(&self, args: &[Value], params: &UdfParams) -> DbResult<Value>;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct PlusOne;
    impl ScalarUdf for PlusOne {
        fn name(&self) -> &str {
            "plus_one"
        }
        fn eval(&self, args: &[Value], _params: &UdfParams) -> DbResult<Value> {
            let x = args[0].as_f64().map_err(|e| DbError::Udf(e.to_string()))?;
            Ok(Value::Float64(x + 1.0))
        }
    }

    #[test]
    fn params_lookup_case_insensitive() {
        let p = UdfParams::new(&[("Model_Name".into(), Value::Varchar("m".into()))]);
        assert_eq!(p.require_str("model_name").unwrap(), "m");
        assert!(p.require_str("missing").is_err());
    }

    #[test]
    fn params_type_checked() {
        let p = UdfParams::new(&[("k".into(), Value::Int64(3))]);
        assert!(p.require_str("k").is_err());
        assert_eq!(p.get("k"), Some(&Value::Int64(3)));
    }

    #[test]
    fn scalar_udf_trait_object() {
        let udf: Box<dyn ScalarUdf> = Box::new(PlusOne);
        let out = udf.eval(&[Value::Int64(4)], &UdfParams::default()).unwrap();
        assert_eq!(out, Value::Float64(5.0));
    }
}
