//! End-to-end database tests: SQL, epoch snapshots, views with joins
//! and aggregates, k-safety failover, and the conditional-update
//! pattern S2V builds on.

use std::sync::Arc;

use common::{row, Value};
use mppdb::{Cluster, ClusterConfig, DbError, QuerySpec};

fn cluster() -> Arc<Cluster> {
    Cluster::new(ClusterConfig::default())
}

#[test]
fn sql_end_to_end() {
    let c = cluster();
    let mut s = c.connect(0).unwrap();
    s.execute(
        "CREATE TABLE users (id INT NOT NULL, name VARCHAR, score FLOAT) \
         SEGMENTED BY HASH(id) ALL NODES",
    )
    .unwrap();
    s.execute("INSERT INTO users VALUES (1, 'alice', 9.5), (2, 'bob', 7.25), (3, 'carol', 8.0)")
        .unwrap();

    let r = s
        .execute("SELECT name FROM users WHERE score > 7.5 LIMIT 10")
        .unwrap()
        .rows()
        .unwrap();
    let mut names: Vec<String> = r
        .rows
        .iter()
        .map(|row| row.get(0).as_str().unwrap().to_string())
        .collect();
    names.sort();
    assert_eq!(names, vec!["alice", "carol"]);

    let r = s
        .execute("SELECT COUNT(*) FROM users")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Int64(3));

    s.execute("UPDATE users SET score = score + 1 WHERE name = 'bob'")
        .unwrap();
    let r = s
        .execute("SELECT score FROM users WHERE name = 'bob'")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Float64(8.25));

    let n = s
        .execute("DELETE FROM users WHERE id = 1")
        .unwrap()
        .affected()
        .unwrap();
    assert_eq!(n, 1);
    let r = s
        .execute("SELECT COUNT(*) FROM users")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Int64(2));
}

#[test]
fn epoch_snapshots_are_stable_under_updates() {
    let c = cluster();
    let mut s = c.connect(1).unwrap();
    s.execute("CREATE TABLE t (id INT, v FLOAT)").unwrap();
    s.execute("INSERT INTO t VALUES (1, 1.0), (2, 2.0)")
        .unwrap();
    let e1 = c.current_epoch();

    s.execute("INSERT INTO t VALUES (3, 3.0)").unwrap();
    s.execute("DELETE FROM t WHERE id = 1").unwrap();
    let e2 = c.current_epoch();
    assert!(e2 > e1);

    // AT EPOCH e1 sees the original two rows.
    let r = s
        .execute(&format!("AT EPOCH {e1} SELECT COUNT(*) FROM t"))
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Int64(2));

    // Latest sees two rows as well (one added, one deleted), but not
    // the same ones.
    let r = s
        .execute("AT EPOCH LATEST SELECT id FROM t")
        .unwrap()
        .rows()
        .unwrap();
    let mut ids: Vec<i64> = r.rows.iter().map(|x| x.get(0).as_i64().unwrap()).collect();
    ids.sort();
    assert_eq!(ids, vec![2, 3]);

    // A future epoch is an error.
    let err = s
        .execute(&format!("AT EPOCH {} SELECT * FROM t", e2 + 10))
        .unwrap_err();
    assert!(matches!(err, DbError::BadEpoch { .. }));
}

#[test]
fn views_push_joins_and_aggregates_below_the_client() {
    let c = cluster();
    let mut s = c.connect(0).unwrap();
    s.execute("CREATE TABLE orders (oid INT, uid INT, amount FLOAT)")
        .unwrap();
    s.execute("CREATE TABLE users (uid INT, name VARCHAR)")
        .unwrap();
    s.execute("INSERT INTO users VALUES (1, 'alice'), (2, 'bob')")
        .unwrap();
    s.execute("INSERT INTO orders VALUES (10, 1, 5.0), (11, 1, 7.0), (12, 2, 1.5)")
        .unwrap();
    s.execute(
        "CREATE VIEW user_totals AS SELECT u.name AS name, SUM(o.amount) AS total \
         FROM orders o JOIN users u ON o.uid = u.uid GROUP BY u.name",
    )
    .unwrap();

    // Through SQL.
    let r = s
        .execute("SELECT name, total FROM user_totals WHERE total > 2")
        .unwrap()
        .rows()
        .unwrap();
    let mut pairs: Vec<(String, f64)> = r
        .rows
        .iter()
        .map(|row| {
            (
                row.get(0).as_str().unwrap().to_string(),
                row.get(1).as_f64().unwrap(),
            )
        })
        .collect();
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    assert_eq!(pairs, vec![("alice".to_string(), 12.0)]);

    // Through the programmatic API with a synthetic row range — the
    // V2S view-loading path.
    let all = s.query(&QuerySpec::scan("user_totals")).unwrap();
    assert_eq!(all.rows.len(), 2);
    let first = s
        .query(&QuerySpec::scan("user_totals").with_row_range(0, 1))
        .unwrap();
    let second = s
        .query(&QuerySpec::scan("user_totals").with_row_range(1, 2))
        .unwrap();
    assert_eq!(first.rows.len() + second.rows.len(), 2);
    assert_ne!(first.rows[0], second.rows[0]);
}

#[test]
fn k_safety_failover_serves_all_segments() {
    let c = Cluster::new(ClusterConfig {
        k_safety: 1,
        ..ClusterConfig::default()
    });
    let mut s = c.connect(0).unwrap();
    s.execute("CREATE TABLE t (id INT, v FLOAT) SEGMENTED BY HASH(id) ALL NODES")
        .unwrap();
    let rows: Vec<common::Row> = (0..400).map(|i| row![i as i64, i as f64]).collect();
    s.insert("t", rows).unwrap();

    let before = s.query(&QuerySpec::scan("t").count()).unwrap();
    assert_eq!(before.count, 400);

    // Down a node that is not the session's; its segment fails over to
    // the buddy.
    c.set_node_down(2);
    let after = s.query(&QuerySpec::scan("t").count()).unwrap();
    assert_eq!(after.count, 400, "buddy replica must serve segment 2");

    // With k=0 the same scenario errors.
    let c0 = cluster();
    let mut s0 = c0.connect(0).unwrap();
    s0.execute("CREATE TABLE t (id INT, v FLOAT)").unwrap();
    s0.insert("t", (0..50).map(|i| row![i as i64, 0.0f64]).collect())
        .unwrap();
    c0.set_node_down(2);
    let err = s0.query(&QuerySpec::scan("t").count()).unwrap_err();
    assert!(matches!(err, DbError::DataUnavailable { segment: 2 }));
}

#[test]
fn conditional_update_race_elects_exactly_one_winner() {
    // The S2V phase-3 pattern: many transactions race to claim a slot
    // with "read, check empty, write, commit"; table locks must admit
    // exactly one.
    let c = cluster();
    {
        let mut s = c.connect(0).unwrap();
        s.execute("CREATE TABLE last_committer (winner INT) UNSEGMENTED ALL NODES")
            .unwrap();
    }
    let winners = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for contender in 0..8i64 {
            let c = Arc::clone(&c);
            let winners = &winners;
            scope.spawn(move || {
                let node = (contender as usize) % c.node_count();
                let mut s = c.connect(node).unwrap();
                s.begin().unwrap();
                let r = s
                    .execute("SELECT COUNT(*) FROM last_committer")
                    .unwrap()
                    .rows()
                    .unwrap();
                let empty = r.rows[0].get(0) == &Value::Int64(0);
                if empty {
                    s.execute(&format!("INSERT INTO last_committer VALUES ({contender})"))
                        .unwrap();
                    s.commit().unwrap();
                    winners.lock().unwrap().push(contender);
                } else {
                    s.rollback().unwrap();
                }
            });
        }
    });
    assert_eq!(winners.lock().unwrap().len(), 1, "exactly one winner");
    let mut s = c.connect(0).unwrap();
    let r = s
        .execute("SELECT COUNT(*) FROM last_committer")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Int64(1));
}

#[test]
fn dropped_session_aborts_open_transaction() {
    let c = cluster();
    {
        let mut s = c.connect(0).unwrap();
        s.execute("CREATE TABLE t (id INT)").unwrap();
    }
    {
        let mut s = c.connect(0).unwrap();
        s.begin().unwrap();
        s.execute("INSERT INTO t VALUES (1)").unwrap();
        // Session dropped mid-transaction: the task died.
    }
    let mut s = c.connect(1).unwrap();
    let r = s.execute("SELECT COUNT(*) FROM t").unwrap().rows().unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Int64(0));
}

#[test]
fn snapshot_reads_do_not_block_on_writers() {
    let c = cluster();
    let mut writer = c.connect(0).unwrap();
    writer.execute("CREATE TABLE t (id INT)").unwrap();
    writer.execute("INSERT INTO t VALUES (1)").unwrap();

    writer.begin().unwrap();
    writer.execute("INSERT INTO t VALUES (2)").unwrap();
    // While the writer holds the lock, an auto-commit reader proceeds
    // and sees only committed data.
    let mut reader = c.connect(1).unwrap();
    let r = reader
        .execute("SELECT COUNT(*) FROM t")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Int64(1));
    writer.commit().unwrap();
    let r = reader
        .execute("SELECT COUNT(*) FROM t")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Int64(2));
}

#[test]
fn unsegmented_tables_replicate_and_serve_locally() {
    let c = cluster();
    let mut s = c.connect(0).unwrap();
    s.execute("CREATE TABLE dim (id INT, label VARCHAR) UNSEGMENTED ALL NODES")
        .unwrap();
    s.execute("INSERT INTO dim VALUES (1, 'x'), (2, 'y'), (3, 'z')")
        .unwrap();
    // Every node serves the same data with identical stable order.
    let mut orders = Vec::new();
    for node in 0..c.node_count() {
        let mut sn = c.connect(node).unwrap();
        let r = sn.query(&QuerySpec::scan("dim")).unwrap();
        orders.push(r.rows);
    }
    for o in &orders[1..] {
        assert_eq!(o, &orders[0]);
    }
    // Synthetic row ranges split without overlap.
    let mut sn = c.connect(2).unwrap();
    let a = sn
        .query(&QuerySpec::scan("dim").with_row_range(0, 2))
        .unwrap();
    let b = sn
        .query(&QuerySpec::scan("dim").with_row_range(2, 3))
        .unwrap();
    assert_eq!(a.rows.len(), 2);
    assert_eq!(b.rows.len(), 1);
}

#[test]
fn udf_callable_from_sql() {
    struct Doubler;
    impl mppdb::ScalarUdf for Doubler {
        fn name(&self) -> &str {
            "double_it"
        }
        fn eval(&self, args: &[Value], params: &mppdb::udf::UdfParams) -> mppdb::DbResult<Value> {
            let factor = match params.get("factor") {
                Some(v) => v.as_f64().map_err(|e| DbError::Udf(e.to_string()))?,
                None => 2.0,
            };
            let x = args[0].as_f64().map_err(|e| DbError::Udf(e.to_string()))?;
            Ok(Value::Float64(x * factor))
        }
    }
    let c = cluster();
    c.register_udf(Arc::new(Doubler));
    let mut s = c.connect(0).unwrap();
    s.execute("CREATE TABLE t (x FLOAT)").unwrap();
    s.execute("INSERT INTO t VALUES (1.5)").unwrap();
    let r = s
        .execute("SELECT double_it(x USING PARAMETERS factor=4) FROM t")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Float64(6.0));
}

#[test]
fn order_by_and_insert_select() {
    let c = cluster();
    let mut s = c.connect(0).unwrap();
    s.execute("CREATE TABLE scores (name VARCHAR, pts INT)")
        .unwrap();
    s.execute("INSERT INTO scores VALUES ('carol', 7), ('alice', 9), ('bob', NULL), ('dave', 9)")
        .unwrap();

    // ORDER BY column with direction; NULLs last ascending.
    let r = s
        .execute("SELECT name, pts FROM scores ORDER BY pts ASC, name")
        .unwrap()
        .rows()
        .unwrap();
    let names: Vec<&str> = r.rows.iter().map(|x| x.get(0).as_str().unwrap()).collect();
    assert_eq!(names, vec!["carol", "alice", "dave", "bob"]);

    // ORDER BY position, descending, with LIMIT after ordering.
    let r = s
        .execute("SELECT name, pts FROM scores ORDER BY 2 DESC LIMIT 2")
        .unwrap()
        .rows()
        .unwrap();
    let names: Vec<&str> = r.rows.iter().map(|x| x.get(0).as_str().unwrap()).collect();
    assert_eq!(names, vec!["alice", "dave"]);

    // ORDER BY an aggregate output through its alias.
    s.execute("INSERT INTO scores VALUES ('alice', 1)").unwrap();
    let r = s
        .execute(
            "SELECT name, SUM(pts) AS total FROM scores GROUP BY name \
             ORDER BY total DESC, name",
        )
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(r.rows[0].get(0).as_str().unwrap(), "alice"); // 10
    assert_eq!(r.rows[1].get(0).as_str().unwrap(), "dave"); // 9

    // INSERT INTO ... SELECT.
    s.execute("CREATE TABLE winners (name VARCHAR, pts INT)")
        .unwrap();
    let n = s
        .execute("INSERT INTO winners SELECT name, pts FROM scores WHERE pts >= 9")
        .unwrap()
        .affected()
        .unwrap();
    assert_eq!(n, 2, "alice(9) and dave(9); alice(1) and NULLs excluded");
    let r = s
        .execute("SELECT COUNT(*) FROM winners")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Int64(2));

    // Schema incompatibility is rejected.
    assert!(s
        .execute("INSERT INTO winners SELECT pts FROM scores")
        .is_err());
    // Bad ORDER BY targets error.
    assert!(s.execute("SELECT name FROM scores ORDER BY nope").is_err());
    assert!(s.execute("SELECT name FROM scores ORDER BY 5").is_err());
}

#[test]
fn system_tables_expose_the_catalog() {
    let c = cluster();
    let mut s = c.connect(0).unwrap();
    s.execute("CREATE TABLE seg (id INT, x FLOAT) SEGMENTED BY HASH(id) ALL NODES")
        .unwrap();
    s.execute("CREATE TEMP TABLE tmp (a INT) UNSEGMENTED ALL NODES")
        .unwrap();

    // v_segments: one row per node, covering the ring in hex.
    let segs = s
        .execute("SELECT * FROM v_segments")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(segs.rows.len(), c.node_count());
    assert_eq!(segs.rows[0].get(2).as_str().unwrap(), "0000000000000000");

    // v_tables reflects segmentation and temp-ness; works with WHERE
    // and ORDER BY like any relation.
    let tables = s
        .execute("SELECT table_name, segmented, is_temp FROM v_tables ORDER BY table_name")
        .unwrap()
        .rows()
        .unwrap();
    let names: Vec<&str> = tables
        .rows
        .iter()
        .map(|r| r.get(0).as_str().unwrap())
        .collect();
    assert_eq!(names, vec!["seg", "tmp"]);
    assert_eq!(tables.rows[0].get(1), &Value::Boolean(true));
    assert_eq!(tables.rows[1].get(1), &Value::Boolean(false));
    assert_eq!(tables.rows[1].get(2), &Value::Boolean(true));

    // v_nodes tracks liveness and the open session count (≥ ours).
    c.set_node_down(3);
    let nodes = s
        .execute("SELECT node FROM v_nodes WHERE is_up = FALSE")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(nodes.rows.len(), 1);
    assert_eq!(nodes.rows[0].get(0), &Value::Int64(3));
    c.set_node_up(3);
    let mine = s
        .execute("SELECT open_sessions FROM v_nodes WHERE node = 0")
        .unwrap()
        .rows()
        .unwrap();
    assert!(mine.rows[0].get(0).as_i64().unwrap() >= 1);

    // Programmatic access with pushdown-style specs also works.
    let count = s
        .query(&QuerySpec::scan("v_segments").count())
        .unwrap()
        .count;
    assert_eq!(count as usize, c.node_count());
}

#[test]
fn explain_describes_the_plan() {
    let c = cluster();
    let mut s = c.connect(0).unwrap();
    s.execute("CREATE TABLE facts (id INT, x FLOAT) SEGMENTED BY HASH(id) ALL NODES")
        .unwrap();
    s.execute("INSERT INTO facts VALUES (1, 1.0)").unwrap();

    fn plan(s: &mut mppdb::Session, sql: &str) -> String {
        let r = s.execute(sql).unwrap().rows().unwrap();
        r.rows
            .iter()
            .map(|row| row.get(0).as_str().unwrap().to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }

    // Pushdown-eligible scan.
    let p = plan(&mut s, "EXPLAIN SELECT id FROM facts WHERE x > 0.5 LIMIT 3");
    assert!(p.contains("locality-aware"), "{p}");
    assert!(p.contains("segment 0 on node 0"), "{p}");
    assert!(p.contains("[pushed down to storage]"), "{p}");
    assert!(p.contains("limit: 3"), "{p}");

    // Aggregate + order: executor-side.
    let p = plan(
        &mut s,
        "EXPLAIN SELECT id, COUNT(*) FROM facts GROUP BY id ORDER BY id",
    );
    assert!(p.contains("aggregate: 1 group key(s)"), "{p}");
    assert!(p.contains("sort: 1 key(s)"), "{p}");

    // Epoch pin shows up.
    let e = c.current_epoch();
    let p = plan(&mut s, &format!("EXPLAIN AT EPOCH {e} SELECT * FROM facts"));
    assert!(p.contains(&format!("epoch: {e}")), "{p}");

    // Unsegmented + system tables.
    s.execute("CREATE TABLE dim (a INT) UNSEGMENTED ALL NODES")
        .unwrap();
    let p = plan(&mut s, "EXPLAIN SELECT * FROM dim");
    assert!(p.contains("local replica"), "{p}");
    let p = plan(&mut s, "EXPLAIN SELECT * FROM v_segments");
    assert!(p.contains("system table"), "{p}");

    // EXPLAIN of non-SELECT is a syntax error.
    assert!(s.execute("EXPLAIN DELETE FROM facts").is_err());
}

#[test]
fn tuple_mover_runs_automatically_past_the_wos_threshold() {
    let c = Cluster::new(ClusterConfig {
        moveout_threshold: 100,
        ..ClusterConfig::default()
    });
    let mut s = c.connect(0).unwrap();
    s.execute("CREATE TABLE wosy (id INT, tag VARCHAR)")
        .unwrap();
    // A small commit stays in the WOS...
    s.insert("wosy", (0..50).map(|i| row![i as i64, "x"]).collect())
        .unwrap();
    let stats = c.table_stats("wosy").unwrap();
    assert!(stats.iter().any(|st| st.wos_rows > 0));
    assert_eq!(stats.iter().map(|st| st.ros_rows).sum::<usize>(), 0);
    // ...while a large one triggers moveout on commit.
    s.insert("wosy", (50..2_000).map(|i| row![i as i64, "x"]).collect())
        .unwrap();
    let stats = c.table_stats("wosy").unwrap();
    assert_eq!(stats.iter().map(|st| st.wos_rows).sum::<usize>(), 0);
    assert_eq!(stats.iter().map(|st| st.ros_rows).sum::<usize>(), 2_000);
}

#[test]
fn ros_encodings_compress_low_cardinality_columns() {
    let c = cluster();
    let mut s = c.connect(0).unwrap();
    s.execute("CREATE TABLE enc (id INT, category VARCHAR)")
        .unwrap();
    // Repetitive category strings: dictionary/RLE territory.
    let rows: Vec<common::Row> = (0..4_000)
        .map(|i| row![i as i64, format!("category-{}", i % 3)])
        .collect();
    s.insert("enc", rows).unwrap();
    c.moveout_all();
    let stats = c.table_stats("enc").unwrap();
    let raw: usize = stats.iter().map(|st| st.ros_raw_bytes).sum();
    let encoded: usize = stats.iter().map(|st| st.ros_encoded_bytes).sum();
    assert!(raw > 0);
    assert!(
        encoded * 2 < raw,
        "expected >2x compression: raw {raw}, encoded {encoded}"
    );
}
