//! Cross-layer property test: a pushed-down predicate rendered as SQL
//! (`Expr::to_sql`, what the real connector would put in its query
//! text) parses back through the SQL front end and selects exactly the
//! same rows as the programmatic pushdown.

use common::expr::{BinaryOp, Expr};
use common::{row, Row, Value};
use mppdb::{Cluster, ClusterConfig, QuerySpec};
use proptest::prelude::*;

/// Random predicates over the schema `(id INT, x FLOAT, name VARCHAR)`.
fn arb_predicate() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (any::<i64>()).prop_map(|v| Expr::col("id").gt(Expr::lit(v % 100))),
        (any::<i64>()).prop_map(|v| Expr::col("id").lt_eq(Expr::lit(v % 100))),
        (0.0f64..10.0).prop_map(|v| Expr::col("x").lt(Expr::lit(v))),
        (0i64..5).prop_map(|v| {
            Expr::binary(
                Expr::binary(Expr::col("id"), BinaryOp::Mod, Expr::lit(5i64)),
                BinaryOp::Eq,
                Expr::lit(v),
            )
        }),
        (0i64..4).prop_map(|v| Expr::col("name").eq(Expr::lit(format!("n{v}")))),
        Just(Expr::IsNull(Box::new(Expr::col("x")))),
        Just(Expr::IsNotNull(Box::new(Expr::col("x")))),
        Just(Expr::Like {
            expr: Box::new(Expr::col("name")),
            pattern: "n%".into(),
        }),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

fn seeded_cluster() -> std::sync::Arc<Cluster> {
    let c = Cluster::new(ClusterConfig::default());
    let mut s = c.connect(0).unwrap();
    s.execute("CREATE TABLE t (id INT, x FLOAT, name VARCHAR)")
        .unwrap();
    let rows: Vec<Row> = (0..120)
        .map(|i| {
            if i % 11 == 0 {
                Row::new(vec![
                    Value::Int64(i as i64),
                    Value::Null,
                    Value::Varchar(format!("n{}", i % 4)),
                ])
            } else {
                row![i as i64, (i % 17) as f64 / 2.0, format!("n{}", i % 4)]
            }
        })
        .collect();
    s.insert("t", rows).unwrap();
    c
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn sql_rendered_predicates_match_programmatic_pushdown(pred in arb_predicate()) {
        let c = seeded_cluster();
        let mut s = c.connect(1).unwrap();

        // Programmatic pushdown.
        let direct = s
            .query(&QuerySpec::scan("t").filter(pred.clone()))
            .unwrap();
        let mut direct_ids: Vec<i64> = direct
            .rows
            .iter()
            .map(|r| r.get(0).as_i64().unwrap())
            .collect();
        direct_ids.sort();

        // The same predicate as SQL text, through the full front end.
        let sql = format!("SELECT id FROM t WHERE {}", pred.to_sql());
        let via_sql = s.execute(&sql).unwrap().rows().unwrap();
        let mut sql_ids: Vec<i64> = via_sql
            .rows
            .iter()
            .map(|r| r.get(0).as_i64().unwrap())
            .collect();
        sql_ids.sort();

        prop_assert_eq!(direct_ids, sql_ids, "SQL: {}", sql);
    }
}
