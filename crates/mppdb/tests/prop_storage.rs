//! Model-based property testing of the MVCC store: a random sequence of
//! transactional operations is applied both to [`NodeTableStore`] and to
//! a trivial reference model; epoch-snapshot scans must agree at every
//! epoch, before and after tuple-mover moveouts.

use common::{row, Row};
use mppdb::storage::NodeTableStore;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Insert `count` fresh rows and commit (direct = straight to ROS).
    InsertCommit { count: usize, direct: bool },
    /// Insert rows and abort.
    InsertAbort { count: usize },
    /// Delete every committed row whose id is ≡ residue (mod 3), commit.
    DeleteCommit { residue: i64 },
    /// Stage the same delete and abort it.
    DeleteAbort { residue: i64 },
    /// Run the tuple mover.
    Moveout,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1usize..20, any::<bool>()).prop_map(|(count, direct)| Op::InsertCommit { count, direct }),
        (1usize..20).prop_map(|count| Op::InsertAbort { count }),
        (0i64..3).prop_map(|residue| Op::DeleteCommit { residue }),
        (0i64..3).prop_map(|residue| Op::DeleteAbort { residue }),
        Just(Op::Moveout),
    ]
}

/// Reference model: every committed row with its insert/delete epochs.
#[derive(Debug, Default)]
struct Model {
    rows: Vec<(i64, u64, Option<u64>)>, // (id, insert_epoch, delete_epoch)
}

impl Model {
    fn visible_ids(&self, epoch: u64) -> Vec<i64> {
        let mut ids: Vec<i64> = self
            .rows
            .iter()
            .filter(|(_, ins, del)| *ins <= epoch && del.is_none_or(|d| d > epoch))
            .map(|(id, _, _)| *id)
            .collect();
        ids.sort();
        ids
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn store_matches_reference_model(ops in proptest::collection::vec(arb_op(), 1..40)) {
        let mut store = NodeTableStore::new(1);
        let mut model = Model::default();
        let mut next_id = 0i64;
        let mut epoch = 0u64;

        for (txn, op) in (1u64..).zip(ops.iter()) {
            match op {
                Op::InsertCommit { count, direct } => {
                    let rows: Vec<(Row, u64)> = (0..*count)
                        .map(|_| {
                            let id = next_id;
                            next_id += 1;
                            (row![id], id as u64)
                        })
                        .collect();
                    let ids: Vec<i64> =
                        rows.iter().map(|(r, _)| r.get(0).as_i64().unwrap()).collect();
                    if *direct {
                        store.insert_pending_direct(rows, txn);
                    } else {
                        store.insert_pending(rows, txn);
                    }
                    epoch += 1;
                    store.commit(txn, epoch);
                    for id in ids {
                        model.rows.push((id, epoch, None));
                    }
                }
                Op::InsertAbort { count } => {
                    let rows: Vec<(Row, u64)> = (0..*count)
                        .map(|i| (row![-(i as i64) - 1], i as u64))
                        .collect();
                    store.insert_pending(rows, txn);
                    store.abort(txn);
                }
                Op::DeleteCommit { residue } | Op::DeleteAbort { residue } => {
                    let commit = matches!(op, Op::DeleteCommit { .. });
                    let visible = store.scan(epoch, None, None);
                    let locs: Vec<_> = visible
                        .iter()
                        .filter(|v| v.row.get(0).as_i64().unwrap().rem_euclid(3) == *residue)
                        .map(|v| v.loc)
                        .collect();
                    store.delete_pending(&locs, txn);
                    if commit {
                        epoch += 1;
                        store.commit(txn, epoch);
                        for (id, _, del) in model.rows.iter_mut() {
                            if del.is_none() && id.rem_euclid(3) == *residue {
                                *del = Some(epoch);
                            }
                        }
                    } else {
                        store.abort(txn);
                    }
                }
                Op::Moveout => {
                    store.moveout();
                }
            }

            // The store and the model agree at every epoch so far.
            for e in 0..=epoch {
                let mut ids: Vec<i64> = store
                    .scan(e, None, None)
                    .iter()
                    .map(|v| v.row.get(0).as_i64().unwrap())
                    .collect();
                ids.sort();
                prop_assert_eq!(ids, model.visible_ids(e), "epoch {} after {:?}", e, op);
            }
        }

        // A final moveout never changes any snapshot.
        let before: Vec<Vec<i64>> = (0..=epoch)
            .map(|e| {
                let mut ids: Vec<i64> = store
                    .scan(e, None, None)
                    .iter()
                    .map(|v| v.row.get(0).as_i64().unwrap())
                    .collect();
                ids.sort();
                ids
            })
            .collect();
        store.moveout();
        for (e, expected) in before.iter().enumerate() {
            let mut ids: Vec<i64> = store
                .scan(e as u64, None, None)
                .iter()
                .map(|v| v.row.get(0).as_i64().unwrap())
                .collect();
            ids.sort();
            prop_assert_eq!(&ids, expected, "moveout changed epoch {}", e);
        }
    }
}
