//! Randomized differential test: the vectorized scan pipeline
//! ([`NodeTableStore::scan_batch`]) against the row-at-a-time reference
//! path (`scan` + per-row predicate + projection), across mixed
//! ROS/WOS stores, deletes, epochs, own-transaction visibility, hash
//! ranges, row windows, predicates, and projections. Results must
//! match exactly — values, order, hashes, wire sizes, and which error
//! surfaces first.

use common::{DataType, Error, Expr, Row, Schema, Value};
use mppdb::segmentation::HashRange;
use mppdb::storage::{BatchScan, NodeTableStore};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The row-at-a-time pipeline the batched scan must reproduce.
#[allow(clippy::too_many_arguments)]
fn reference_scan(
    store: &NodeTableStore,
    as_of: u64,
    my_txn: Option<u64>,
    hash_range: Option<&HashRange>,
    row_range: Option<(u64, u64)>,
    predicate: Option<&Expr>,
    projection: Option<&[usize]>,
) -> Result<(Vec<Row>, Vec<u64>, u64), Error> {
    let visible = store.scan(as_of, my_txn, hash_range);
    let mut rows = Vec::new();
    let mut hashes = Vec::new();
    let mut scanned = 0u64;
    for (pos, v) in visible.into_iter().enumerate() {
        if let Some((start, end)) = row_range {
            let pos = pos as u64;
            if pos < start || pos >= end {
                continue;
            }
        }
        scanned += 1;
        if let Some(p) = predicate {
            if !p.matches(&v.row)? {
                continue;
            }
        }
        rows.push(match projection {
            Some(idx) => v.row.project(idx),
            None => v.row,
        });
        hashes.push(v.hash);
    }
    Ok((rows, hashes, scanned))
}

fn random_value(rng: &mut StdRng, dtype: DataType) -> Value {
    if rng.random_bool(0.1) {
        return Value::Null;
    }
    match dtype {
        DataType::Boolean => Value::Boolean(rng.random_bool(0.5)),
        // Small domains so predicates, RLE runs, and dictionaries all
        // get exercised.
        DataType::Int64 => Value::Int64(rng.random_range(-5..5)),
        DataType::Float64 => Value::Float64(rng.random_range(-4..4) as f64 * 0.5),
        DataType::Varchar => Value::Varchar(format!("s{}", rng.random_range(0..6))),
    }
}

fn random_literal(rng: &mut StdRng, dtype: DataType) -> Expr {
    // Occasionally a type-mismatched literal, so evaluation errors are
    // part of the differential surface.
    if rng.random_bool(0.1) {
        return Expr::lit(Value::Varchar("boom".into()));
    }
    match dtype {
        DataType::Boolean => Expr::lit(Value::Boolean(rng.random_bool(0.5))),
        DataType::Int64 => Expr::lit(Value::Int64(rng.random_range(-5..5))),
        DataType::Float64 => Expr::lit(Value::Float64(rng.random_range(-4..4) as f64 * 0.5)),
        DataType::Varchar => Expr::lit(Value::Varchar(format!("s{}", rng.random_range(0..6)))),
    }
}

fn random_leaf(rng: &mut StdRng, schema: &Schema) -> Expr {
    let fields = schema.fields();
    let f = &fields[rng.random_range(0..fields.len())];
    let col = Expr::col(f.name.clone());
    match rng.random_range(0..7) {
        0 => Expr::IsNull(Box::new(col)),
        1 => Expr::IsNotNull(Box::new(col)),
        2 => col.eq(random_literal(rng, f.dtype)),
        3 => col.lt(random_literal(rng, f.dtype)),
        4 => col.gt(random_literal(rng, f.dtype)),
        5 => col.lt_eq(random_literal(rng, f.dtype)),
        _ => col.gt_eq(random_literal(rng, f.dtype)),
    }
}

fn random_predicate(rng: &mut StdRng, schema: &Schema) -> Expr {
    let leaf = random_leaf(rng, schema);
    match rng.random_range(0..4) {
        0 => leaf,
        1 => leaf.and(random_leaf(rng, schema)),
        2 => leaf.or(random_leaf(rng, schema)),
        _ => Expr::Not(Box::new(leaf)),
    }
}

/// Build a store with a random mix of WOS batches, direct-load ROS
/// containers, moveouts, aborts, and (pending and committed) deletes.
/// Returns the store, the top committed epoch, and a still-open txn id.
fn random_store(rng: &mut StdRng, schema: &Schema) -> (NodeTableStore, u64, u64) {
    let ncols = schema.fields().len();
    let mut store = NodeTableStore::new(ncols);
    let mut epoch = 0u64;
    let mut txn = 100u64;

    for _ in 0..rng.random_range(2..6) {
        let n = rng.random_range(0..30);
        let rows: Vec<(Row, u64)> = (0..n)
            .map(|_| {
                let row = Row::new(
                    schema
                        .fields()
                        .iter()
                        .map(|f| random_value(rng, f.dtype))
                        .collect(),
                );
                (row, rng.random_range(0..1000))
            })
            .collect();
        txn += 1;
        if rng.random_bool(0.5) {
            store.insert_pending(rows, txn);
        } else {
            store.insert_pending_direct(rows, txn);
        }
        if rng.random_bool(0.15) {
            store.abort(txn);
        } else {
            epoch += 1;
            store.commit(txn, epoch);
        }
        if rng.random_bool(0.3) {
            store.moveout();
        }
        // Stage some deletes over what is currently visible.
        if rng.random_bool(0.5) {
            let visible = store.scan(epoch, None, None);
            if !visible.is_empty() {
                let locs: Vec<_> = visible
                    .iter()
                    .filter(|_| rng.random_bool(0.2))
                    .map(|v| v.loc)
                    .collect();
                txn += 1;
                store.delete_pending(&locs, txn);
                match rng.random_range(0..3) {
                    0 => store.abort(txn),
                    1 => {
                        epoch += 1;
                        store.commit(txn, epoch);
                    }
                    _ => {} // leave the delete pending under `txn`
                }
            }
        }
    }
    // One more batch left pending, to exercise own-txn visibility.
    txn += 1;
    let rows: Vec<(Row, u64)> = (0..rng.random_range(0..10))
        .map(|_| {
            let row = Row::new(
                schema
                    .fields()
                    .iter()
                    .map(|f| random_value(rng, f.dtype))
                    .collect(),
            );
            (row, rng.random_range(0..1000))
        })
        .collect();
    store.insert_pending(rows, txn);
    (store, epoch, txn)
}

fn random_schema(rng: &mut StdRng) -> Schema {
    let dtypes = [
        DataType::Int64,
        DataType::Float64,
        DataType::Varchar,
        DataType::Boolean,
    ];
    let n = rng.random_range(1..5);
    let fields: Vec<(String, DataType)> = (0..n)
        .map(|i| (format!("c{i}"), dtypes[rng.random_range(0..dtypes.len())]))
        .collect();
    let pairs: Vec<(&str, DataType)> = fields.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    Schema::from_pairs(&pairs)
}

#[test]
fn batched_scan_matches_reference() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for case in 0..60 {
        let schema = random_schema(&mut rng);
        let ncols = schema.fields().len();
        let (store, max_epoch, open_txn) = random_store(&mut rng, &schema);

        for query in 0..12 {
            let as_of = rng.random_range(0..max_epoch + 2);
            let my_txn = match rng.random_range(0..3) {
                0 => None,
                1 => Some(open_txn),
                _ => Some(9999), // unknown txn: sees only committed data
            };
            let hash_range = match rng.random_range(0..3) {
                0 => None,
                1 => Some(HashRange::new(rng.random_range(0..500), None)),
                _ => {
                    let start = rng.random_range(0..800);
                    Some(HashRange::new(
                        start,
                        Some(start + rng.random_range(1..400)),
                    ))
                }
            };
            let row_range = if rng.random_bool(0.3) {
                let start = rng.random_range(0..20u64);
                Some((start, start + rng.random_range(0..25u64)))
            } else {
                None
            };
            let predicate = if rng.random_bool(0.6) {
                Some(
                    random_predicate(&mut rng, &schema)
                        .bind(&schema)
                        .expect("bind over own schema"),
                )
            } else {
                None
            };
            let projection: Option<Vec<usize>> = if rng.random_bool(0.5) {
                // Subsets, reorderings, and duplicates are all legal.
                let k = rng.random_range(1..ncols + 2);
                Some((0..k).map(|_| rng.random_range(0..ncols)).collect())
            } else {
                None
            };
            let dtypes: Vec<DataType> = match &projection {
                Some(idx) => idx.iter().map(|&i| schema.field(i).dtype).collect(),
                None => schema.fields().iter().map(|f| f.dtype).collect(),
            };

            let tag = format!(
                "case {case} query {query}: as_of={as_of} my_txn={my_txn:?} \
                 hash={hash_range:?} window={row_range:?} pred={:?} proj={projection:?}",
                predicate.as_ref().map(|p| p.to_sql()),
            );

            let expected = reference_scan(
                &store,
                as_of,
                my_txn,
                hash_range.as_ref(),
                row_range,
                predicate.as_ref(),
                projection.as_deref(),
            );
            // Both skipping modes must reproduce the reference exactly:
            // zone-map container elimination and RLE run elimination
            // are pure no-row-can-match proofs, never result changes.
            for no_skip in [true, false] {
                let actual = store.scan_batch(&BatchScan {
                    as_of,
                    my_txn,
                    hash_range: hash_range.as_ref(),
                    row_range,
                    predicate: predicate.as_ref(),
                    projection: projection.as_deref(),
                    dtypes: &dtypes,
                    no_skip,
                });

                match (&expected, actual) {
                    (Ok((rows, hashes, scanned)), Ok(out)) => {
                        assert_eq!(
                            out.batch.hashes(),
                            hashes.as_slice(),
                            "hash vector diverged (no_skip={no_skip}): {tag}"
                        );
                        let visible = store.visible_count(as_of, my_txn) as u64;
                        if no_skip {
                            assert_eq!(out.scanned, *scanned, "scanned count diverged: {tag}");
                            assert_eq!(out.examined, visible, "examined != visible_count: {tag}");
                            assert_eq!(out.containers_skipped, 0, "skip while disabled: {tag}");
                            assert_eq!(out.rows_skipped, 0, "skip while disabled: {tag}");
                        } else {
                            // Container skips remove rows from `examined`;
                            // `rows_skipped` counts whole containers (which
                            // may include invisible rows), so the pair
                            // bounds the visible count from both sides.
                            assert!(
                                out.examined <= visible,
                                "examined beyond visible_count: {tag}"
                            );
                            assert!(
                                out.examined + out.rows_skipped >= visible,
                                "skipped more than accounted: {tag}"
                            );
                            assert!(
                                out.scanned <= *scanned,
                                "skipping scanned extra rows: {tag}"
                            );
                            assert!(
                                out.scanned + out.rows_skipped >= *scanned,
                                "scan skips unaccounted: {tag}"
                            );
                        }
                        assert_eq!(
                            out.batch.wire_size(),
                            rows.iter().map(Row::wire_size).sum::<usize>(),
                            "wire size diverged (no_skip={no_skip}): {tag}"
                        );
                        assert_eq!(
                            out.batch.text_wire_size(),
                            rows.iter().map(Row::text_wire_size).sum::<usize>(),
                            "text wire size diverged (no_skip={no_skip}): {tag}"
                        );
                        let batch_rows = out.batch.into_rows();
                        assert_eq!(
                            &batch_rows, rows,
                            "rows diverged (no_skip={no_skip}): {tag}"
                        );
                    }
                    (Err(e), Err(a)) => {
                        assert_eq!(
                            e.to_string(),
                            a.to_string(),
                            "different error (no_skip={no_skip}): {tag}"
                        );
                    }
                    (e, a) => panic!(
                        "reference and batched scans disagree on success \
                         (no_skip={no_skip}): reference={e:?} batched={a:?} ({tag})"
                    ),
                }
            }
        }
    }
}

#[test]
fn query_and_query_batched_agree_end_to_end() {
    use common::row;
    use mppdb::{Cluster, ClusterConfig, QuerySpec};

    let cluster = Cluster::new(ClusterConfig {
        node_count: 4,
        k_safety: 1,
        ..ClusterConfig::default()
    });
    let mut session = cluster.connect(0).unwrap();
    session
        .execute(
            "CREATE TABLE t (id BIGINT, grp VARCHAR, val DOUBLE) SEGMENTED BY HASH(id) ALL NODES",
        )
        .unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let rows: Vec<Row> = (0..500)
        .map(|i| {
            row![
                i as i64,
                format!("g{}", rng.random_range(0..5)),
                rng.random_range(0..100) as f64
            ]
        })
        .collect();
    session.insert("t", rows).unwrap();
    cluster.moveout_all();

    let specs = vec![
        QuerySpec::scan("t"),
        QuerySpec::scan("t").project(&["grp", "id"]),
        QuerySpec::scan("t")
            .filter(Expr::col("val").lt(Expr::lit(30.0f64)))
            .project(&["id"]),
        QuerySpec::scan("t")
            .filter(Expr::col("grp").eq(Expr::lit("g2")))
            .with_limit(17),
    ];
    for spec in specs {
        let rows = session.query(&spec).unwrap();
        let batched = session.query_batched(&spec).unwrap();
        assert!(batched.batch.is_some(), "batched read carries a batch");
        assert_eq!(batched.num_rows(), rows.rows.len());
        assert_eq!(batched.wire_bytes(), rows.wire_bytes());
        assert_eq!(batched.text_wire_bytes(), rows.text_wire_bytes());
        // Deterministic order, even with parallel per-segment scans.
        let again = session.query_batched(&spec).unwrap();
        assert_eq!(again.clone().into_rows(), batched.clone().into_rows());
        assert_eq!(batched.into_rows(), rows.rows);
    }
}

/// Pushed-down aggregation (node-side partials, zone-map fast paths,
/// conjunct reordering) must agree with materialize-then-aggregate in
/// every mode, for every request shape.
#[test]
fn aggregate_pushdown_matches_materialized_aggregation() {
    use common::agg::{aggregate_rows, AggCall, AggFunc, AggRequest};
    use common::row;
    use mppdb::{Cluster, ClusterConfig, QuerySpec};

    let cluster = Cluster::new(ClusterConfig {
        node_count: 4,
        k_safety: 1,
        ..ClusterConfig::default()
    });
    let mut session = cluster.connect(0).unwrap();
    session
        .execute(
            "CREATE TABLE t (id BIGINT, grp VARCHAR, val DOUBLE) SEGMENTED BY HASH(id) ALL NODES",
        )
        .unwrap();
    let schema = cluster.table_def("t").unwrap().schema;
    let mut rng = StdRng::seed_from_u64(11);
    let rows: Vec<Row> = (0..500)
        .map(|i| {
            row![
                i as i64,
                format!("g{}", rng.random_range(0..5)),
                rng.random_range(0..100) as f64
            ]
        })
        .collect();
    session.insert("t", rows).unwrap();
    cluster.moveout_all();

    let requests: Vec<(Vec<&str>, Vec<AggCall>)> = vec![
        (vec![], vec![AggCall::count_star()]),
        (
            vec![],
            vec![
                AggCall::new(AggFunc::Min, "val"),
                AggCall::new(AggFunc::Max, "val"),
                AggCall::count_star(),
            ],
        ),
        (
            vec!["grp"],
            vec![
                AggCall::new(AggFunc::Sum, "val"),
                AggCall::new(AggFunc::Avg, "val"),
                AggCall::count_star(),
            ],
        ),
        (vec!["grp"], vec![AggCall::new(AggFunc::Count, "id")]),
    ];
    let filters = [
        None,
        Some(Expr::col("val").lt(Expr::lit(50.0f64))),
        // A selective conjunction, so zone-map skipping and conjunct
        // reordering both engage on the aggregate path.
        Some(
            Expr::col("val")
                .lt(Expr::lit(30.0f64))
                .and(Expr::col("id").gt_eq(Expr::lit(400i64))),
        ),
        // A never-true predicate: zero-row aggregates.
        Some(Expr::col("val").lt(Expr::lit(-1.0f64))),
    ];
    let sort_key = |r: &Row| format!("{r:?}");
    for (group_by, calls) in &requests {
        for filter in &filters {
            let req = AggRequest::new(group_by, calls.clone());
            let mut base = QuerySpec::scan("t");
            if let Some(f) = filter {
                base = base.filter(f.clone());
            }
            let tag = format!(
                "group_by={group_by:?} calls={calls:?} filter={:?}",
                filter.as_ref().map(|f| f.to_sql())
            );

            // Reference: pull rows, aggregate at the caller.
            let pulled = session.query(&base.clone()).unwrap().rows;
            let (_, mut expected) = aggregate_rows(&schema, &pulled, &req).unwrap();
            expected.sort_by_key(sort_key);

            for no_skip in [false, true] {
                let mut spec = base.clone().aggregate(req.clone());
                if no_skip {
                    spec = spec.without_skipping();
                }
                let mut pushed = session.query(&spec).unwrap().rows;
                pushed.sort_by_key(sort_key);
                assert_eq!(pushed, expected, "no_skip={no_skip}: {tag}");
            }
        }
    }
}
