//! The discrete-event simulation engine.

use std::collections::VecDeque;

use crate::flow::max_min_rates;
use crate::resource::Topology;
use crate::task::{Phase, TaskId, Workload};
use crate::trace::UtilizationTrace;

const EPS: f64 = 1e-9;

/// Outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Simulated seconds until the last task finished.
    pub makespan: f64,
    /// Per-task start times (admission to a slot), indexed by `TaskId`.
    pub task_start: Vec<f64>,
    /// Per-task finish times, indexed by `TaskId`.
    pub task_finish: Vec<f64>,
    /// Utilization time series for traced resources.
    pub trace: UtilizationTrace,
}

#[derive(Debug)]
enum TaskState {
    /// Not all dependencies finished yet.
    Waiting {
        unmet_deps: usize,
    },
    /// In the pool's FIFO queue.
    Queued,
    /// Occupying a slot, executing `phase` with `remaining` work
    /// (seconds for delays, volume units for flows).
    Running {
        phase: usize,
        remaining: f64,
    },
    Done,
}

/// Runs a [`Workload`] against a [`Topology`] and produces timings plus
/// utilization traces.
pub struct SimEngine {
    topology: Topology,
    sample_dt: f64,
}

impl SimEngine {
    pub fn new(topology: Topology) -> SimEngine {
        SimEngine {
            topology,
            sample_dt: 1.0,
        }
    }

    /// Width of the utilization trace bins (default 1 simulated second).
    pub fn with_sample_dt(mut self, dt: f64) -> SimEngine {
        assert!(dt > 0.0);
        self.sample_dt = dt;
        self
    }

    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Run the workload to completion.
    ///
    /// Panics if the workload can never finish (circular waits cannot be
    /// constructed thanks to `Workload::add_task`'s dep check, so the
    /// only panic path is an internal invariant failure).
    pub fn run(&self, workload: &Workload) -> SimResult {
        let n = workload.tasks.len();
        let mut states: Vec<TaskState> = Vec::with_capacity(n);
        let mut dependents: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for (i, task) in workload.tasks.iter().enumerate() {
            for dep in &task.deps {
                dependents[dep.0].push(TaskId(i));
            }
            states.push(TaskState::Waiting {
                unmet_deps: task.deps.len(),
            });
        }

        let mut queues: Vec<VecDeque<TaskId>> = vec![VecDeque::new(); workload.pools.len()];
        let mut free_slots: Vec<usize> = workload.pools.iter().map(|p| p.slots).collect();
        let mut task_start = vec![f64::NAN; n];
        let mut task_finish = vec![f64::NAN; n];
        let mut trace = UtilizationTrace::new(&self.topology, self.sample_dt);
        let mut time = 0.0f64;
        let mut done_count = 0usize;

        // Tasks with no deps enter their pool queue in id order (Spark
        // launches partition tasks in order).
        for i in 0..n {
            if let TaskState::Waiting { unmet_deps: 0 } = states[i] {
                states[i] = TaskState::Queued;
                queues[workload.tasks[i].pool.0].push_back(TaskId(i));
            }
        }

        // Admission helper is inlined below (borrow-checker friendliness).
        loop {
            // Admit queued tasks into free slots.
            let mut just_finished: Vec<TaskId> = Vec::new();
            for pool in 0..queues.len() {
                while free_slots[pool] > 0 {
                    let Some(tid) = queues[pool].pop_front() else {
                        break;
                    };
                    free_slots[pool] -= 1;
                    task_start[tid.0] = time;
                    let task = &workload.tasks[tid.0];
                    if task.phases.is_empty() {
                        // Zero-work task: completes instantly.
                        states[tid.0] = TaskState::Done;
                        task_finish[tid.0] = time;
                        done_count += 1;
                        free_slots[pool] += 1;
                        just_finished.push(tid);
                    } else {
                        let remaining = phase_work(&task.phases[0]);
                        states[tid.0] = TaskState::Running {
                            phase: 0,
                            remaining,
                        };
                    }
                }
            }
            // Propagate completions of zero-work tasks (may unblock deps
            // into the same pools; loop until stable).
            while let Some(tid) = just_finished.pop() {
                for &dep_tid in &dependents[tid.0] {
                    if let TaskState::Waiting { unmet_deps } = &mut states[dep_tid.0] {
                        *unmet_deps -= 1;
                        if *unmet_deps == 0 {
                            states[dep_tid.0] = TaskState::Queued;
                            let pool = workload.tasks[dep_tid.0].pool.0;
                            queues[pool].push_back(dep_tid);
                            if free_slots[pool] > 0 {
                                // Re-run admission by falling through: we
                                // emulate by admitting inline.
                                let tid2 = queues[pool].pop_back().unwrap();
                                debug_assert_eq!(tid2, dep_tid);
                                free_slots[pool] -= 1;
                                task_start[tid2.0] = time;
                                let task = &workload.tasks[tid2.0];
                                if task.phases.is_empty() {
                                    states[tid2.0] = TaskState::Done;
                                    task_finish[tid2.0] = time;
                                    done_count += 1;
                                    free_slots[pool] += 1;
                                    just_finished.push(tid2);
                                } else {
                                    let remaining = phase_work(&task.phases[0]);
                                    states[tid2.0] = TaskState::Running {
                                        phase: 0,
                                        remaining,
                                    };
                                }
                            }
                        }
                    }
                }
            }

            if done_count == n {
                break;
            }

            // Gather running phases.
            let running: Vec<TaskId> = states
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s, TaskState::Running { .. }))
                .map(|(i, _)| TaskId(i))
                .collect();
            assert!(
                !running.is_empty(),
                "simulation stalled: no running tasks but {} unfinished",
                n - done_count
            );

            // Compute rates for flow phases.
            let flow_specs: Vec<(usize, &crate::flow::FlowSpec)> = running
                .iter()
                .enumerate()
                .filter_map(|(slot, tid)| {
                    let TaskState::Running { phase, .. } = &states[tid.0] else {
                        unreachable!()
                    };
                    match &workload.tasks[tid.0].phases[*phase] {
                        Phase::Flow(f) => Some((slot, f)),
                        Phase::Delay(_) => None,
                    }
                })
                .collect();
            let specs_only: Vec<&crate::flow::FlowSpec> =
                flow_specs.iter().map(|(_, f)| *f).collect();
            let rates = max_min_rates(&self.topology, &specs_only);

            // Per running task: progress rate (units/sec) for its phase.
            let mut task_rate = vec![1.0f64; running.len()]; // delays tick at 1 s/s
            for ((slot, _), &rate) in flow_specs.iter().zip(rates.iter()) {
                task_rate[*slot] = rate;
            }

            // Earliest completion.
            let mut dt = f64::INFINITY;
            for (slot, tid) in running.iter().enumerate() {
                let TaskState::Running { remaining, .. } = states[tid.0] else {
                    unreachable!()
                };
                let rate = task_rate[slot];
                let t_done = if rate.is_infinite() {
                    0.0
                } else {
                    remaining / rate
                };
                dt = dt.min(t_done);
            }
            assert!(
                dt.is_finite(),
                "simulation stalled: all running flows have zero rate"
            );
            let dt = dt.max(0.0);

            // Charge the trace for this interval.
            if dt > 0.0 {
                for ((slot, flow), &rate) in flow_specs.iter().zip(rates.iter()) {
                    let _ = slot;
                    if rate.is_finite() {
                        for &(rid, w) in &flow.demands {
                            trace.add_usage(rid, time, time + dt, w * rate);
                        }
                    }
                }
            }
            time += dt;

            // Advance running phases.
            for (slot, tid) in running.iter().enumerate() {
                let rate = task_rate[slot];
                let TaskState::Running { phase, remaining } = &mut states[tid.0] else {
                    unreachable!()
                };
                let progressed = if rate.is_infinite() {
                    *remaining
                } else {
                    rate * dt
                };
                *remaining -= progressed;
                if *remaining <= EPS {
                    // Phase complete; advance or finish.
                    let task = &workload.tasks[tid.0];
                    let next = *phase + 1;
                    if next < task.phases.len() {
                        states[tid.0] = TaskState::Running {
                            phase: next,
                            remaining: phase_work(&task.phases[next]),
                        };
                    } else {
                        states[tid.0] = TaskState::Done;
                        task_finish[tid.0] = time;
                        done_count += 1;
                        free_slots[task.pool.0] += 1;
                        for &dep_tid in &dependents[tid.0] {
                            if let TaskState::Waiting { unmet_deps } = &mut states[dep_tid.0] {
                                *unmet_deps -= 1;
                                if *unmet_deps == 0 {
                                    states[dep_tid.0] = TaskState::Queued;
                                    queues[workload.tasks[dep_tid.0].pool.0].push_back(dep_tid);
                                }
                            }
                        }
                    }
                }
            }
        }

        SimResult {
            makespan: time,
            task_start,
            task_finish,
            trace,
        }
    }
}

fn phase_work(phase: &Phase) -> f64 {
    match phase {
        Phase::Delay(s) => *s,
        Phase::Flow(f) => f.volume,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowSpec;
    use crate::task::SimTask;

    fn topo_link(cap: f64) -> (Topology, crate::resource::ResourceId) {
        let mut t = Topology::new();
        let l = t.add_resource("link", cap);
        (t, l)
    }

    #[test]
    fn single_transfer_time() {
        let (t, l) = topo_link(100.0);
        let mut w = Workload::new();
        let pool = w.add_pool("p", 4);
        w.add_task(SimTask::new(pool, "xfer").flow(FlowSpec::new(1000.0).on(l, 1.0)));
        let res = SimEngine::new(t).run(&w);
        assert!((res.makespan - 10.0).abs() < 1e-6, "{}", res.makespan);
    }

    #[test]
    fn shared_link_doubles_time() {
        let (t, l) = topo_link(100.0);
        let mut w = Workload::new();
        let pool = w.add_pool("p", 4);
        for i in 0..2 {
            w.add_task(SimTask::new(pool, format!("x{i}")).flow(FlowSpec::new(1000.0).on(l, 1.0)));
        }
        let res = SimEngine::new(t).run(&w);
        assert!((res.makespan - 20.0).abs() < 1e-6, "{}", res.makespan);
    }

    #[test]
    fn slot_limit_serializes_tasks() {
        let (t, l) = topo_link(100.0);
        let mut w = Workload::new();
        let pool = w.add_pool("p", 1);
        for i in 0..3 {
            w.add_task(SimTask::new(pool, format!("x{i}")).flow(FlowSpec::new(500.0).on(l, 1.0)));
        }
        let res = SimEngine::new(t).run(&w);
        // 3 sequential transfers of 5s each.
        assert!((res.makespan - 15.0).abs() < 1e-6, "{}", res.makespan);
        assert!((res.task_start[1] - 5.0).abs() < 1e-6);
        assert!((res.task_start[2] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn delays_and_flows_sequence() {
        let (t, l) = topo_link(100.0);
        let mut w = Workload::new();
        let pool = w.add_pool("p", 4);
        w.add_task(
            SimTask::new(pool, "x")
                .delay(2.0)
                .flow(FlowSpec::new(300.0).on(l, 1.0))
                .delay(1.0),
        );
        let res = SimEngine::new(t).run(&w);
        assert!((res.makespan - 6.0).abs() < 1e-6, "{}", res.makespan);
    }

    #[test]
    fn dependencies_gate_start() {
        let (t, l) = topo_link(100.0);
        let mut w = Workload::new();
        let pool = w.add_pool("p", 4);
        let a = w.add_task(SimTask::new(pool, "a").flow(FlowSpec::new(400.0).on(l, 1.0)));
        let b = w.add_task(SimTask::new(pool, "b").after(a).delay(1.0));
        let res = SimEngine::new(t).run(&w);
        assert!((res.task_start[b.0] - 4.0).abs() < 1e-6);
        assert!((res.makespan - 5.0).abs() < 1e-6);
    }

    #[test]
    fn zero_work_dependency_chain_completes() {
        let (t, _l) = topo_link(100.0);
        let mut w = Workload::new();
        let pool = w.add_pool("p", 1);
        let a = w.add_task(SimTask::new(pool, "a"));
        let b = w.add_task(SimTask::new(pool, "b").after(a));
        let c = w.add_task(SimTask::new(pool, "c").after(b));
        let res = SimEngine::new(t).run(&w);
        assert_eq!(res.makespan, 0.0);
        assert_eq!(res.task_finish[c.0], 0.0);
    }

    #[test]
    fn trace_captures_saturation() {
        let (t, l) = topo_link(100.0);
        let mut w = Workload::new();
        let pool = w.add_pool("p", 8);
        for i in 0..4 {
            w.add_task(SimTask::new(pool, format!("x{i}")).flow(FlowSpec::new(250.0).on(l, 1.0)));
        }
        let res = SimEngine::new(t).with_sample_dt(1.0).run(&w);
        // Link saturated for the whole 10s run.
        assert!((res.makespan - 10.0).abs() < 1e-6);
        for b in 0..10 {
            assert!(
                (res.trace.utilization(l, b) - 1.0).abs() < 1e-6,
                "bin {b}: {}",
                res.trace.utilization(l, b)
            );
        }
    }

    #[test]
    fn faster_flow_frees_bandwidth_for_slower() {
        // Two flows share a 100-unit/s link; one has 200 units, one 600.
        // Phase 1 (both active): each at 50/s; small one done at t=4.
        // Then big one alone at 100/s with 400 left: done at t=8.
        let (t, l) = topo_link(100.0);
        let mut w = Workload::new();
        let pool = w.add_pool("p", 4);
        let small = w.add_task(SimTask::new(pool, "s").flow(FlowSpec::new(200.0).on(l, 1.0)));
        let big = w.add_task(SimTask::new(pool, "b").flow(FlowSpec::new(600.0).on(l, 1.0)));
        let res = SimEngine::new(t).run(&w);
        assert!((res.task_finish[small.0] - 4.0).abs() < 1e-6);
        assert!((res.task_finish[big.0] - 8.0).abs() < 1e-6);
    }

    #[test]
    fn per_flow_cap_via_private_resource() {
        // A single flow capped at 40 units/s on a 100 link: 400 units in 10 s.
        let mut t = Topology::new();
        let l = t.add_resource("link", 100.0);
        let cap = t.add_untraced_resource("cap", 40.0);
        let mut w = Workload::new();
        let pool = w.add_pool("p", 4);
        w.add_task(SimTask::new(pool, "x").flow(FlowSpec::new(400.0).on(l, 1.0).on(cap, 1.0)));
        let res = SimEngine::new(t).run(&w);
        assert!((res.makespan - 10.0).abs() < 1e-6, "{}", res.makespan);
    }
}
