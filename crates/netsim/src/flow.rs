//! Flows and the weighted max-min fair rate allocator.

use crate::resource::{ResourceId, Topology};

/// A capacity-consuming piece of work.
///
/// A flow progresses at some rate `r` (units/second, chosen by the
/// allocator); while active it consumes `weight × r` on every resource
/// in `demands`. It completes after transferring `volume` units.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// `(resource, weight)` pairs. Weights must be positive.
    pub demands: Vec<(ResourceId, f64)>,
    /// Total units to move (e.g. bytes).
    pub volume: f64,
    /// Optional per-flow rate ceiling (e.g. the single-stream
    /// throughput of one client connection).
    pub rate_cap: Option<f64>,
}

impl FlowSpec {
    pub fn new(volume: f64) -> FlowSpec {
        assert!(volume >= 0.0, "flow volume must be non-negative");
        FlowSpec {
            demands: Vec::new(),
            volume,
            rate_cap: None,
        }
    }

    /// Bound the flow's rate regardless of available capacity.
    pub fn capped(mut self, cap: f64) -> FlowSpec {
        assert!(cap > 0.0, "rate cap must be positive");
        self.rate_cap = Some(cap);
        self
    }

    /// Add a resource demand. `weight` is the amount of the resource
    /// consumed per unit of flow rate (1.0 for a link carrying the
    /// bytes; `cpu_seconds_per_byte` for a CPU touching them).
    pub fn on(mut self, resource: ResourceId, weight: f64) -> FlowSpec {
        assert!(weight > 0.0, "flow demand weight must be positive");
        self.demands.push((resource, weight));
        self
    }
}

/// Compute weighted max-min fair rates for the given active flows.
///
/// Progressive filling: repeatedly find the bottleneck resource — the
/// one whose remaining capacity divided by the total weight of its
/// still-unfixed flows is smallest — and freeze those flows at that
/// fair rate. Flows with no demands get an infinite rate (represented
/// as `f64::INFINITY`; the engine treats such flows as completing
/// instantly).
///
/// Returns one rate per input flow, in order.
pub fn max_min_rates(topology: &Topology, flows: &[&FlowSpec]) -> Vec<f64> {
    let n = flows.len();
    let mut rates = vec![f64::INFINITY; n];
    if n == 0 {
        return rates;
    }

    let r_count = topology.len();
    let mut remaining: Vec<f64> = (0..r_count)
        .map(|i| topology.capacity(ResourceId(i)))
        .collect();
    // Total unfixed weight per resource.
    let mut weight_sum = vec![0.0f64; r_count];
    for flow in flows {
        for &(rid, w) in &flow.demands {
            weight_sum[rid.0] += w;
        }
    }
    let mut fixed = vec![false; n];
    let mut fixed_count = 0usize;
    for (i, f) in flows.iter().enumerate() {
        if f.demands.is_empty() {
            fixed[i] = true;
            fixed_count += 1;
            if let Some(cap) = f.rate_cap {
                rates[i] = cap;
            }
        }
    }

    while fixed_count < n {
        // Find the bottleneck resource among those with unfixed demand.
        let mut bottleneck: Option<(usize, f64)> = None;
        for r in 0..r_count {
            if weight_sum[r] <= 1e-12 {
                continue;
            }
            let fair = remaining[r].max(0.0) / weight_sum[r];
            match bottleneck {
                Some((_, best)) if fair >= best => {}
                _ => bottleneck = Some((r, fair)),
            }
        }
        let fair_rate = bottleneck.map(|(_, f)| f).unwrap_or(f64::INFINITY);
        // Per-flow caps below the bottleneck's fair share freeze first:
        // they release capacity back to the open flows.
        let mut froze_capped = false;
        for (i, flow) in flows.iter().enumerate() {
            if fixed[i] {
                continue;
            }
            if let Some(cap) = flow.rate_cap {
                if cap <= fair_rate {
                    fixed[i] = true;
                    fixed_count += 1;
                    rates[i] = cap;
                    for &(rid, w) in &flow.demands {
                        remaining[rid.0] -= w * cap;
                        weight_sum[rid.0] -= w;
                    }
                    froze_capped = true;
                }
            }
        }
        if froze_capped {
            continue;
        }
        let Some((bneck, fair_rate)) = bottleneck else {
            // No resource constrains the remaining flows: unbounded.
            break;
        };
        // Freeze every unfixed flow that traverses the bottleneck.
        for (i, flow) in flows.iter().enumerate() {
            if fixed[i] {
                continue;
            }
            if flow.demands.iter().any(|&(rid, _)| rid.0 == bneck) {
                fixed[i] = true;
                fixed_count += 1;
                rates[i] = fair_rate;
                for &(rid, w) in &flow.demands {
                    remaining[rid.0] -= w * fair_rate;
                    weight_sum[rid.0] -= w;
                }
            }
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo_one_link(cap: f64) -> (Topology, ResourceId) {
        let mut t = Topology::new();
        let l = t.add_resource("link", cap);
        (t, l)
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let (t, l) = topo_one_link(100.0);
        let f = FlowSpec::new(1000.0).on(l, 1.0);
        let rates = max_min_rates(&t, &[&f]);
        assert_eq!(rates, vec![100.0]);
    }

    #[test]
    fn equal_flows_share_equally() {
        let (t, l) = topo_one_link(100.0);
        let f1 = FlowSpec::new(1.0).on(l, 1.0);
        let f2 = FlowSpec::new(1.0).on(l, 1.0);
        let rates = max_min_rates(&t, &[&f1, &f2]);
        assert_eq!(rates, vec![50.0, 50.0]);
    }

    #[test]
    fn capped_flow_releases_capacity_to_others() {
        // One flow privately capped at 10, the other takes the rest.
        let mut t = Topology::new();
        let link = t.add_resource("link", 100.0);
        let cap = t.add_untraced_resource("cap", 10.0);
        let slow = FlowSpec::new(1.0).on(link, 1.0).on(cap, 1.0);
        let fast = FlowSpec::new(1.0).on(link, 1.0);
        let rates = max_min_rates(&t, &[&slow, &fast]);
        assert!((rates[0] - 10.0).abs() < 1e-9, "capped flow: {}", rates[0]);
        assert!((rates[1] - 90.0).abs() < 1e-9, "open flow: {}", rates[1]);
    }

    #[test]
    fn multi_resource_bottleneck() {
        // Flow A uses link1 only, flow B uses link1+link2, link2 is tight.
        let mut t = Topology::new();
        let l1 = t.add_resource("l1", 100.0);
        let l2 = t.add_resource("l2", 20.0);
        let a = FlowSpec::new(1.0).on(l1, 1.0);
        let b = FlowSpec::new(1.0).on(l1, 1.0).on(l2, 1.0);
        let rates = max_min_rates(&t, &[&a, &b]);
        assert!((rates[1] - 20.0).abs() < 1e-9);
        assert!((rates[0] - 80.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_demand_consumes_proportionally() {
        // CPU capacity 4 cores; a flow needing 0.01 cpu per unit can run
        // at 400 units/s alone.
        let mut t = Topology::new();
        let cpu = t.add_resource("cpu", 4.0);
        let f = FlowSpec::new(1.0).on(cpu, 0.01);
        let rates = max_min_rates(&t, &[&f]);
        assert!((rates[0] - 400.0).abs() < 1e-9);
    }

    #[test]
    fn native_rate_cap_limits_and_releases() {
        let (t, l) = topo_one_link(100.0);
        let slow = FlowSpec::new(1.0).on(l, 1.0).capped(10.0);
        let fast = FlowSpec::new(1.0).on(l, 1.0);
        let rates = max_min_rates(&t, &[&slow, &fast]);
        assert!((rates[0] - 10.0).abs() < 1e-9);
        assert!((rates[1] - 90.0).abs() < 1e-9);
        // A cap above the fair share has no effect.
        let loose = FlowSpec::new(1.0).on(l, 1.0).capped(500.0);
        let other = FlowSpec::new(1.0).on(l, 1.0);
        let rates = max_min_rates(&t, &[&loose, &other]);
        assert!((rates[0] - 50.0).abs() < 1e-9);
        assert!((rates[1] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn empty_demand_flow_is_unbounded() {
        let (t, _l) = topo_one_link(1.0);
        let f = FlowSpec::new(1.0);
        let rates = max_min_rates(&t, &[&f]);
        assert!(rates[0].is_infinite());
    }

    #[test]
    fn allocation_never_exceeds_capacity() {
        // Randomized-ish mix checked against the capacity invariant.
        let mut t = Topology::new();
        let links: Vec<_> = (0..4)
            .map(|i| t.add_resource(format!("l{i}"), 10.0 + i as f64))
            .collect();
        let flows: Vec<FlowSpec> = (0..20)
            .map(|i| {
                let mut f = FlowSpec::new(100.0);
                for (j, &l) in links.iter().enumerate() {
                    if (i + j) % 3 != 0 {
                        f = f.on(l, 0.5 + (j as f64) * 0.25);
                    }
                }
                if f.demands.is_empty() {
                    f = f.on(links[0], 1.0);
                }
                f
            })
            .collect();
        let refs: Vec<&FlowSpec> = flows.iter().collect();
        let rates = max_min_rates(&t, &refs);
        let mut usage = vec![0.0f64; t.len()];
        for (f, &r) in flows.iter().zip(rates.iter()) {
            assert!(r > 0.0, "every constrained flow makes progress");
            for &(rid, w) in &f.demands {
                usage[rid.0] += w * r;
            }
        }
        for (i, &u) in usage.iter().enumerate() {
            assert!(
                u <= t.capacity(ResourceId(i)) + 1e-6,
                "resource {i} overcommitted: {u}"
            );
        }
    }
}
