//! A discrete-event fluid-flow simulator for cluster workloads.
//!
//! The paper's evaluation (Figs. 6–12, Tables 2–4) measures wall-clock
//! times of data transfers on a 24-machine cluster with 1 GbE NICs. We
//! cannot measure those on a laptop, so the benchmark harness runs the
//! real connector code at a reduced scale, records what moved where (via
//! [`record::Recorder`]), scales the recorded volumes back up to paper
//! size, and replays them through this simulator to obtain the reported
//! timings and the per-node utilization traces of Table 2.
//!
//! # Model
//!
//! Everything that consumes capacity over time is a *resource* with a
//! fixed capacity in units/second: a NIC direction is a resource in
//! bytes/s, a node's CPU is a resource in core-seconds/s. A *flow* is a
//! piece of work with a total volume and a weight on each resource it
//! touches (e.g. a transfer of `B` bytes consumes `1×rate` on the source
//! egress NIC, `1×rate` on the destination ingress NIC, and
//! `cpu_per_byte×rate` on each endpoint's CPU). At any instant, active
//! flows share resources by **weighted max-min fairness** (progressive
//! filling); per-flow rate caps are expressed as private single-flow
//! resources, which keeps the allocator uniform.
//!
//! Tasks are sequences of phases ([`Phase::Delay`] for fixed latencies
//! such as connection setup, [`Phase::Flow`] for capacity-consuming
//! work). Tasks run on executor *pools* with bounded slots — this models
//! the Spark executor cores that gate how many of the N partitions run
//! concurrently — and may depend on other tasks (used for barrier steps
//! such as S2V's final commit).
//!
//! ```
//! use netsim::{FlowSpec, SimEngine, SimTask, Topology, Workload};
//!
//! // One 125 MB/s NIC; two tasks each move 500 MB through it, but the
//! // pool admits them one at a time.
//! let mut topo = Topology::new();
//! let nic = topo.add_resource("nic", 125e6);
//! let mut workload = Workload::new();
//! let pool = workload.add_pool("executors", 1);
//! for i in 0..2 {
//!     workload.add_task(
//!         SimTask::new(pool, format!("task{i}"))
//!             .delay(0.5) // connection setup
//!             .flow(FlowSpec::new(500e6).on(nic, 1.0)),
//!     );
//! }
//! let result = SimEngine::new(topo).run(&workload);
//! // 2 × (0.5 s setup + 4 s transfer) serialized on the single slot.
//! assert!((result.makespan - 9.0).abs() < 1e-6);
//! ```

pub mod engine;
pub mod flow;
pub mod record;
pub mod resource;
pub mod task;
pub mod trace;

pub use engine::{SimEngine, SimResult};
pub use flow::FlowSpec;
pub use record::{EventKind, NetClass, NodeRef, Recorder};
pub use resource::{ResourceId, Topology};
pub use task::{Phase, PoolId, SimTask, TaskId, Workload};
pub use trace::UtilizationTrace;
