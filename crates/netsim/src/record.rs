//! Operation recorder.
//!
//! The engines and the connector log what *actually* moved during a
//! functional run — bytes and rows per transfer, classified by network
//! (database-internal shuffle vs external system boundary), plus labeled
//! units of CPU work. The benchmark harness converts the drained log
//! into a simulator [`crate::Workload`], scaling volumes up to the
//! paper's dataset sizes.
//!
//! Recording is always on but cheap: one mutex-guarded `Vec` push per
//! transfer or work item (transfers are whole-partition, not per-row).

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

/// Which network a transfer crossed (the paper's hardware puts database
/// internal traffic and Spark traffic on separate 1 GbE interfaces,
/// Sec. 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetClass {
    /// Shuffle between database nodes (the traffic V2S's locality-aware
    /// queries are designed to eliminate, Sec. 3.1.2).
    DbInternal,
    /// Traffic crossing the system boundary (database ↔ compute engine,
    /// or compute engine ↔ DFS).
    External,
}

/// An endpoint of a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeRef {
    /// Database cluster node by index.
    Db(usize),
    /// Compute (Spark-like) cluster node by index.
    Compute(usize),
    /// DFS cluster node by index (the separate HDFS cluster of Fig. 12).
    Dfs(usize),
    /// The driver / client process.
    Client,
}

impl fmt::Display for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeRef::Db(i) => write!(f, "db{i}"),
            NodeRef::Compute(i) => write!(f, "compute{i}"),
            NodeRef::Dfs(i) => write!(f, "dfs{i}"),
            NodeRef::Client => write!(f, "client"),
        }
    }
}

/// What happened.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// Bytes moved from `src` to `dst`.
    Transfer {
        src: NodeRef,
        dst: NodeRef,
        class: NetClass,
        bytes: u64,
        rows: u64,
    },
    /// Labeled CPU work on a node (e.g. "avro_encode", "hash_eval",
    /// "copy_parse"); the harness maps labels to seconds-per-row/byte
    /// constants.
    Work {
        node: NodeRef,
        label: &'static str,
        rows: u64,
        bytes: u64,
    },
    /// A fixed-latency step (connection setup, commit, table DDL).
    Setup { node: NodeRef, label: &'static str },
}

/// One recorded event, attributed to a logical task.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Logical task (partition) index within the job, or `None` for
    /// driver-side work.
    pub task: Option<u64>,
    pub kind: EventKind,
}

/// A shared, thread-safe event log.
#[derive(Debug, Default)]
pub struct Recorder {
    events: Mutex<Vec<Event>>,
    muted: std::sync::atomic::AtomicBool,
}

/// RAII guard muting a recorder; recording resumes on drop.
pub struct MuteGuard<'a> {
    recorder: &'a Recorder,
}

impl Drop for MuteGuard<'_> {
    fn drop(&mut self) {
        self.recorder
            .muted
            .store(false, std::sync::atomic::Ordering::Release);
    }
}

impl Recorder {
    pub fn new() -> Arc<Recorder> {
        Arc::new(Recorder::default())
    }

    pub fn record(&self, task: Option<u64>, kind: EventKind) {
        if self.muted.load(std::sync::atomic::Ordering::Acquire) {
            return;
        }
        self.events.lock().push(Event { task, kind });
    }

    /// Suppress recording until the returned guard drops. Used where a
    /// substrate operation physically moves data that the modeled
    /// system would not (e.g. an atomic table rename realized as a row
    /// copy).
    pub fn mute(&self) -> MuteGuard<'_> {
        self.muted.store(true, std::sync::atomic::Ordering::Release);
        MuteGuard { recorder: self }
    }

    pub fn transfer(
        &self,
        task: Option<u64>,
        src: NodeRef,
        dst: NodeRef,
        class: NetClass,
        bytes: u64,
        rows: u64,
    ) {
        self.record(
            task,
            EventKind::Transfer {
                src,
                dst,
                class,
                bytes,
                rows,
            },
        );
    }

    pub fn work(
        &self,
        task: Option<u64>,
        node: NodeRef,
        label: &'static str,
        rows: u64,
        bytes: u64,
    ) {
        self.record(
            task,
            EventKind::Work {
                node,
                label,
                rows,
                bytes,
            },
        );
    }

    pub fn setup(&self, task: Option<u64>, node: NodeRef, label: &'static str) {
        self.record(task, EventKind::Setup { node, label });
    }

    /// Remove and return all events recorded so far.
    pub fn drain(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock())
    }

    /// Copy of the current log without draining it.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    pub fn clear(&self) {
        self.events.lock().clear();
    }

    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Total bytes transferred on the given network class.
    pub fn total_bytes(&self, class: NetClass) -> u64 {
        self.events
            .lock()
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Transfer {
                    class: c, bytes, ..
                } if *c == class => Some(*bytes),
                _ => None,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_drain() {
        let rec = Recorder::new();
        rec.transfer(
            Some(0),
            NodeRef::Db(1),
            NodeRef::Compute(2),
            NetClass::External,
            1000,
            10,
        );
        rec.work(Some(0), NodeRef::Db(1), "hash_eval", 10, 0);
        rec.setup(None, NodeRef::Client, "connect");
        assert_eq!(rec.len(), 3);
        let events = rec.drain();
        assert_eq!(events.len(), 3);
        assert!(rec.is_empty());
        assert_eq!(events[0].task, Some(0));
    }

    #[test]
    fn total_bytes_filters_by_class() {
        let rec = Recorder::new();
        rec.transfer(
            None,
            NodeRef::Db(0),
            NodeRef::Db(1),
            NetClass::DbInternal,
            500,
            5,
        );
        rec.transfer(
            None,
            NodeRef::Db(0),
            NodeRef::Compute(0),
            NetClass::External,
            300,
            3,
        );
        rec.transfer(
            None,
            NodeRef::Db(1),
            NodeRef::Db(2),
            NetClass::DbInternal,
            200,
            2,
        );
        assert_eq!(rec.total_bytes(NetClass::DbInternal), 700);
        assert_eq!(rec.total_bytes(NetClass::External), 300);
    }

    #[test]
    fn concurrent_recording() {
        let rec = Recorder::new();
        std::thread::scope(|s| {
            for t in 0..8 {
                let rec = Arc::clone(&rec);
                s.spawn(move || {
                    for _ in 0..100 {
                        rec.work(Some(t), NodeRef::Compute(0), "w", 1, 1);
                    }
                });
            }
        });
        assert_eq!(rec.len(), 800);
    }
}
