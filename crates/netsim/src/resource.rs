//! Capacity resources: NIC directions, CPUs, and private rate caps.

/// Identifies a resource within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub(crate) usize);

impl ResourceId {
    pub fn index(&self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Resource {
    pub name: String,
    pub capacity: f64,
    /// Whether the utilization trace should sample this resource.
    pub traced: bool,
}

/// The set of resources a simulation runs against.
///
/// The benchmark harness builds one topology per experiment: for the
/// paper's 4:8 cluster that is, per database node, an internal-NIC
/// egress/ingress pair, an external-NIC egress/ingress pair and a CPU
/// resource, and per compute node an external NIC pair and a CPU.
#[derive(Debug, Default, Clone)]
pub struct Topology {
    pub(crate) resources: Vec<Resource>,
}

impl Topology {
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Add a resource with the given capacity (units per simulated
    /// second). Returns its id.
    pub fn add_resource(&mut self, name: impl Into<String>, capacity: f64) -> ResourceId {
        self.add_resource_inner(name.into(), capacity, true)
    }

    /// Add a resource that is excluded from utilization traces (used for
    /// private per-flow rate caps, which are not physical).
    pub fn add_untraced_resource(&mut self, name: impl Into<String>, capacity: f64) -> ResourceId {
        self.add_resource_inner(name.into(), capacity, false)
    }

    fn add_resource_inner(&mut self, name: String, capacity: f64, traced: bool) -> ResourceId {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "resource {name} must have positive finite capacity, got {capacity}"
        );
        let id = ResourceId(self.resources.len());
        self.resources.push(Resource {
            name,
            capacity,
            traced,
        });
        id
    }

    pub fn len(&self) -> usize {
        self.resources.len()
    }

    pub fn is_empty(&self) -> bool {
        self.resources.is_empty()
    }

    pub fn capacity(&self, id: ResourceId) -> f64 {
        self.resources[id.0].capacity
    }

    pub fn name(&self, id: ResourceId) -> &str {
        &self.resources[id.0].name
    }

    pub fn is_traced(&self, id: ResourceId) -> bool {
        self.resources[id.0].traced
    }

    /// Look a resource up by name (linear scan; topologies are small).
    pub fn find(&self, name: &str) -> Option<ResourceId> {
        self.resources
            .iter()
            .position(|r| r.name == name)
            .map(ResourceId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut topo = Topology::new();
        let a = topo.add_resource("nic0.out", 125e6);
        let b = topo.add_resource("cpu0", 16.0);
        assert_eq!(topo.len(), 2);
        assert_eq!(topo.capacity(a), 125e6);
        assert_eq!(topo.name(b), "cpu0");
        assert_eq!(topo.find("cpu0"), Some(b));
        assert_eq!(topo.find("nope"), None);
    }

    #[test]
    #[should_panic(expected = "positive finite capacity")]
    fn zero_capacity_rejected() {
        Topology::new().add_resource("bad", 0.0);
    }

    #[test]
    fn untraced_resources_flagged() {
        let mut topo = Topology::new();
        let cap = topo.add_untraced_resource("flow-cap", 40e6);
        let nic = topo.add_resource("nic", 125e6);
        assert!(!topo.is_traced(cap));
        assert!(topo.is_traced(nic));
    }
}
