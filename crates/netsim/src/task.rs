//! Simulated tasks: phase sequences gated by executor pools and
//! dependencies.

use crate::flow::FlowSpec;

/// Index of a task within a [`Workload`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub usize);

/// Index of an executor pool within a [`Workload`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolId(pub usize);

/// One step of a task.
#[derive(Debug, Clone)]
pub enum Phase {
    /// A fixed latency (connection setup, query planning, commit fsync).
    Delay(f64),
    /// Capacity-consuming work allocated by max-min fairness.
    Flow(FlowSpec),
}

/// A task: an ordered list of phases, bound to an executor pool, with
/// optional predecessors that must finish first.
#[derive(Debug, Clone)]
pub struct SimTask {
    pub pool: PoolId,
    pub phases: Vec<Phase>,
    pub deps: Vec<TaskId>,
    /// Label carried through to results, for debugging/reporting.
    pub label: String,
}

impl SimTask {
    pub fn new(pool: PoolId, label: impl Into<String>) -> SimTask {
        SimTask {
            pool,
            phases: Vec::new(),
            deps: Vec::new(),
            label: label.into(),
        }
    }

    pub fn delay(mut self, seconds: f64) -> SimTask {
        assert!(seconds >= 0.0, "delay must be non-negative");
        if seconds > 0.0 {
            self.phases.push(Phase::Delay(seconds));
        }
        self
    }

    pub fn flow(mut self, flow: FlowSpec) -> SimTask {
        if flow.volume > 0.0 {
            self.phases.push(Phase::Flow(flow));
        }
        self
    }

    pub fn after(mut self, dep: TaskId) -> SimTask {
        self.deps.push(dep);
        self
    }

    pub fn after_all(mut self, deps: impl IntoIterator<Item = TaskId>) -> SimTask {
        self.deps.extend(deps);
        self
    }
}

/// A pool of executor slots. Tasks assigned to the pool wait FIFO for a
/// free slot; this models Spark's bounded executor cores (a 256-partition
/// job on a cluster with 192 task slots runs in waves, which is part of
/// why very high partition counts lose in Fig. 6).
#[derive(Debug, Clone)]
pub struct Pool {
    pub name: String,
    pub slots: usize,
}

/// A complete simulated workload: pools plus tasks.
#[derive(Debug, Default, Clone)]
pub struct Workload {
    pub(crate) pools: Vec<Pool>,
    pub(crate) tasks: Vec<SimTask>,
}

impl Workload {
    pub fn new() -> Workload {
        Workload::default()
    }

    pub fn add_pool(&mut self, name: impl Into<String>, slots: usize) -> PoolId {
        assert!(slots > 0, "pool must have at least one slot");
        let id = PoolId(self.pools.len());
        self.pools.push(Pool {
            name: name.into(),
            slots,
        });
        id
    }

    pub fn add_task(&mut self, task: SimTask) -> TaskId {
        assert!(
            task.pool.0 < self.pools.len(),
            "task references unknown pool"
        );
        for dep in &task.deps {
            assert!(dep.0 < self.tasks.len(), "task depends on a later task");
        }
        let id = TaskId(self.tasks.len());
        self.tasks.push(task);
        id
    }

    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::Topology;

    #[test]
    fn builder_drops_zero_phases() {
        let mut topo = Topology::new();
        let link = topo.add_resource("l", 1.0);
        let mut w = Workload::new();
        let pool = w.add_pool("p", 2);
        let t = SimTask::new(pool, "t")
            .delay(0.0)
            .flow(FlowSpec::new(0.0).on(link, 1.0))
            .delay(1.0);
        assert_eq!(t.phases.len(), 1);
        w.add_task(t);
        assert_eq!(w.task_count(), 1);
    }

    #[test]
    #[should_panic(expected = "depends on a later task")]
    fn forward_deps_rejected() {
        let mut w = Workload::new();
        let pool = w.add_pool("p", 1);
        w.add_task(SimTask::new(pool, "t").after(TaskId(5)));
    }
}
