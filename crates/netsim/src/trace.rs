//! Per-resource utilization time series (Table 2 of the paper).

use crate::resource::{ResourceId, Topology};

/// Utilization samples for every traced resource, in fixed-width bins.
///
/// Bin `i` covers simulated time `[i*dt, (i+1)*dt)`. The recorded value
/// is the *integral* of usage over the bin; [`UtilizationTrace::utilization`]
/// normalizes it into a 0..=1 fraction of capacity and
/// [`UtilizationTrace::throughput`] into average units/second (e.g. the
/// MBps series of Table 2).
#[derive(Debug, Clone)]
pub struct UtilizationTrace {
    sample_dt: f64,
    capacities: Vec<f64>,
    traced: Vec<bool>,
    /// `bins[r][i]` = integral of usage of resource r over bin i.
    bins: Vec<Vec<f64>>,
}

impl UtilizationTrace {
    pub fn new(topology: &Topology, sample_dt: f64) -> UtilizationTrace {
        assert!(sample_dt > 0.0, "sample_dt must be positive");
        let n = topology.len();
        UtilizationTrace {
            sample_dt,
            capacities: (0..n).map(|i| topology.capacity(ResourceId(i))).collect(),
            traced: (0..n).map(|i| topology.is_traced(ResourceId(i))).collect(),
            bins: vec![Vec::new(); n],
        }
    }

    pub fn sample_dt(&self) -> f64 {
        self.sample_dt
    }

    /// Add `usage_rate` (units/second) on `resource` over `[t0, t1)`.
    pub(crate) fn add_usage(&mut self, resource: ResourceId, t0: f64, t1: f64, usage_rate: f64) {
        if !self.traced[resource.0] || usage_rate <= 0.0 || t1 <= t0 {
            return;
        }
        let bins = &mut self.bins[resource.0];
        let first = (t0 / self.sample_dt).floor() as usize;
        let last = (t1 / self.sample_dt).ceil() as usize;
        if bins.len() < last {
            bins.resize(last, 0.0);
        }
        for (b, bin) in bins.iter_mut().enumerate().take(last).skip(first) {
            let lo = (b as f64 * self.sample_dt).max(t0);
            let hi = ((b + 1) as f64 * self.sample_dt).min(t1);
            if hi > lo {
                *bin += usage_rate * (hi - lo);
            }
        }
    }

    pub fn bin_count(&self, resource: ResourceId) -> usize {
        self.bins[resource.0].len()
    }

    /// Average utilization (fraction of capacity) of `resource` in bin `i`.
    pub fn utilization(&self, resource: ResourceId, bin: usize) -> f64 {
        let usage = self.bins[resource.0].get(bin).copied().unwrap_or(0.0);
        usage / (self.capacities[resource.0] * self.sample_dt)
    }

    /// Average usage rate (units/second) of `resource` in bin `i`.
    pub fn throughput(&self, resource: ResourceId, bin: usize) -> f64 {
        let usage = self.bins[resource.0].get(bin).copied().unwrap_or(0.0);
        usage / self.sample_dt
    }

    /// The full throughput series for a resource, one value per bin.
    pub fn throughput_series(&self, resource: ResourceId) -> Vec<f64> {
        (0..self.bin_count(resource))
            .map(|b| self.throughput(resource, b))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> (Topology, ResourceId) {
        let mut t = Topology::new();
        let l = t.add_resource("link", 100.0);
        (t, l)
    }

    #[test]
    fn usage_split_across_bins() {
        let (t, l) = topo();
        let mut trace = UtilizationTrace::new(&t, 1.0);
        // 50 units/s over [0.5, 2.5): bin 0 gets 25, bin 1 gets 50, bin 2 gets 25.
        trace.add_usage(l, 0.5, 2.5, 50.0);
        assert!((trace.throughput(l, 0) - 25.0).abs() < 1e-9);
        assert!((trace.throughput(l, 1) - 50.0).abs() < 1e-9);
        assert!((trace.throughput(l, 2) - 25.0).abs() < 1e-9);
        assert!((trace.utilization(l, 1) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn untraced_resources_ignored() {
        let mut t = Topology::new();
        let cap = t.add_untraced_resource("cap", 10.0);
        let mut trace = UtilizationTrace::new(&t, 1.0);
        trace.add_usage(cap, 0.0, 5.0, 10.0);
        assert_eq!(trace.bin_count(cap), 0);
    }

    #[test]
    fn accumulates_multiple_flows() {
        let (t, l) = topo();
        let mut trace = UtilizationTrace::new(&t, 1.0);
        trace.add_usage(l, 0.0, 1.0, 30.0);
        trace.add_usage(l, 0.0, 1.0, 20.0);
        assert!((trace.throughput(l, 0) - 50.0).abs() < 1e-9);
    }
}
