//! Property tests for the discrete-event engine: makespans respect
//! physical lower bounds, determinism holds, and slot limits behave.

use netsim::{FlowSpec, SimEngine, SimTask, Topology, Workload};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomJob {
    link_capacity: f64,
    slots: usize,
    /// Per task: (delay seconds, transfer volume).
    tasks: Vec<(f64, f64)>,
}

fn arb_job() -> impl Strategy<Value = RandomJob> {
    (
        10.0f64..1000.0,
        1usize..8,
        proptest::collection::vec((0.0f64..5.0, 0.0f64..5000.0), 1..20),
    )
        .prop_map(|(link_capacity, slots, tasks)| RandomJob {
            link_capacity,
            slots,
            tasks,
        })
}

fn run(job: &RandomJob) -> netsim::SimResult {
    let mut topo = Topology::new();
    let link = topo.add_resource("link", job.link_capacity);
    let mut workload = Workload::new();
    let pool = workload.add_pool("p", job.slots);
    for (i, &(delay, volume)) in job.tasks.iter().enumerate() {
        workload.add_task(
            SimTask::new(pool, format!("t{i}"))
                .delay(delay)
                .flow(FlowSpec::new(volume).on(link, 1.0)),
        );
    }
    SimEngine::new(topo).run(&workload)
}

proptest! {
    #[test]
    fn makespan_respects_lower_bounds(job in arb_job()) {
        let result = run(&job);

        // Bound 1: total volume over link capacity.
        let total_volume: f64 = job.tasks.iter().map(|t| t.1).sum();
        let volume_bound = total_volume / job.link_capacity;
        // Bound 2: the longest single task run alone.
        let task_bound = job
            .tasks
            .iter()
            .map(|&(d, v)| d + v / job.link_capacity)
            .fold(0.0, f64::max);
        // Bound 3: critical path through the slot-limited pool
        // (delays + transfers cannot beat total work / slots).
        let work_bound = job
            .tasks
            .iter()
            .map(|&(d, v)| d + v / job.link_capacity)
            .sum::<f64>()
            / job.slots as f64;

        let lower = volume_bound.max(task_bound).max(work_bound * 0.999_999);
        prop_assert!(
            result.makespan >= lower * (1.0 - 1e-6) - 1e-9,
            "makespan {} below lower bound {}",
            result.makespan,
            lower
        );

        // Upper bound: fully serialized execution.
        let serial: f64 = job
            .tasks
            .iter()
            .map(|&(d, v)| d + v / job.link_capacity)
            .sum();
        prop_assert!(
            result.makespan <= serial * (1.0 + 1e-6) + 1e-9,
            "makespan {} exceeds serial bound {}",
            result.makespan,
            serial
        );

        // Every task finished, in-window.
        for (i, &finish) in result.task_finish.iter().enumerate() {
            prop_assert!(finish.is_finite(), "task {i} never finished");
            prop_assert!(finish <= result.makespan + 1e-9);
            prop_assert!(result.task_start[i] <= finish + 1e-9);
        }
    }

    #[test]
    fn simulation_is_deterministic(job in arb_job()) {
        let a = run(&job);
        let b = run(&job);
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.task_finish, b.task_finish);
    }

    #[test]
    fn single_slot_pool_serializes_exactly(
        tasks in proptest::collection::vec((0.1f64..2.0, 10.0f64..500.0), 1..10)
    ) {
        let job = RandomJob {
            link_capacity: 100.0,
            slots: 1,
            tasks,
        };
        let result = run(&job);
        let serial: f64 = job
            .tasks
            .iter()
            .map(|&(d, v)| d + v / job.link_capacity)
            .sum();
        prop_assert!((result.makespan - serial).abs() < 1e-6);
    }
}
