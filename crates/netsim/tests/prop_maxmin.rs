//! Property tests for the weighted max-min fair allocator: capacity
//! feasibility, cap respect, progress, and work conservation on
//! arbitrary topologies.

use netsim::flow::max_min_rates;
use netsim::{FlowSpec, Topology};
use proptest::prelude::*;

/// Per flow: demands as `(resource index, weight)`, optional cap.
type RawFlow = (Vec<(usize, f64)>, Option<f64>);

#[derive(Debug, Clone)]
struct Scenario {
    capacities: Vec<f64>,
    flows: Vec<RawFlow>,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    let caps = proptest::collection::vec(1.0f64..1000.0, 1..6);
    caps.prop_flat_map(|capacities| {
        let r = capacities.len();
        let demand = (0..r, 0.1f64..4.0);
        let flow = (
            proptest::collection::vec(demand, 1..4),
            proptest::option::of(0.5f64..500.0),
        );
        let flows = proptest::collection::vec(flow, 1..12);
        (Just(capacities), flows).prop_map(|(capacities, raw)| Scenario {
            capacities,
            flows: raw
                .into_iter()
                .map(|(mut demands, cap)| {
                    // Deduplicate resources within a flow (weights add).
                    demands.sort_by_key(|&(r, _)| r);
                    demands.dedup_by(|a, b| {
                        if a.0 == b.0 {
                            b.1 += a.1;
                            true
                        } else {
                            false
                        }
                    });
                    (demands, cap)
                })
                .collect(),
        })
    })
}

proptest! {
    #[test]
    fn allocation_invariants(scenario in arb_scenario()) {
        let mut topo = Topology::new();
        let ids: Vec<_> = scenario
            .capacities
            .iter()
            .enumerate()
            .map(|(i, &c)| topo.add_resource(format!("r{i}"), c))
            .collect();
        let flows: Vec<FlowSpec> = scenario
            .flows
            .iter()
            .map(|(demands, cap)| {
                let mut f = FlowSpec::new(1.0);
                for &(r, w) in demands {
                    f = f.on(ids[r], w);
                }
                if let Some(c) = cap {
                    f = f.capped(*c);
                }
                f
            })
            .collect();
        let refs: Vec<&FlowSpec> = flows.iter().collect();
        let rates = max_min_rates(&topo, &refs);

        // 1. Feasibility: no resource overcommitted.
        let mut usage = vec![0.0f64; scenario.capacities.len()];
        for (f, &rate) in flows.iter().zip(&rates) {
            prop_assert!(rate.is_finite());
            for &(rid, w) in &f.demands {
                usage[rid.index()] += w * rate;
            }
        }
        for (u, &c) in usage.iter().zip(&scenario.capacities) {
            prop_assert!(*u <= c * (1.0 + 1e-6), "overcommitted: {u} > {c}");
        }

        // 2. Caps respected; every flow makes progress.
        for (f, &rate) in flows.iter().zip(&rates) {
            prop_assert!(rate > 0.0, "constrained flow starved");
            if let Some(cap) = f.rate_cap {
                prop_assert!(rate <= cap * (1.0 + 1e-9), "cap violated: {rate} > {cap}");
            }
        }

        // 3. Work conservation: a flow below its cap must be limited by
        //    some (nearly) saturated resource it traverses.
        for (f, &rate) in flows.iter().zip(&rates) {
            let at_cap = f.rate_cap.is_some_and(|c| rate >= c * (1.0 - 1e-6));
            if at_cap {
                continue;
            }
            let bottlenecked = f.demands.iter().any(|&(rid, _)| {
                usage[rid.index()] >= scenario.capacities[rid.index()] * (1.0 - 1e-6)
            });
            prop_assert!(
                bottlenecked,
                "flow at rate {rate} has headroom on every resource it uses"
            );
        }
    }

    #[test]
    fn identical_flows_get_identical_rates(
        n in 2usize..10,
        cap in 10.0f64..1000.0,
    ) {
        let mut topo = Topology::new();
        let link = topo.add_resource("link", cap);
        let flows: Vec<FlowSpec> =
            (0..n).map(|_| FlowSpec::new(1.0).on(link, 1.0)).collect();
        let refs: Vec<&FlowSpec> = flows.iter().collect();
        let rates = max_min_rates(&topo, &refs);
        for &r in &rates {
            prop_assert!((r - cap / n as f64).abs() < 1e-6);
        }
    }
}
