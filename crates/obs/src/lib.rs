//! A process-wide data collector, modeled on Vertica's Data Collector
//! (the monitoring layer behind its `dc_*` system tables).
//!
//! Three kinds of telemetry:
//!
//! * **Events** ([`Event`]) — structured records (an [`EventKind`],
//!   fixed fields, a monotonic timestamp and sequence number) kept in
//!   sharded in-memory ring buffers. Each thread writes to its own
//!   shard, so hot paths never contend on one lock; a snapshot drains
//!   all shards and re-sorts by sequence number.
//! * **Counters** — named monotonic `u64`s (`rows loaded`, `task
//!   retries`, ...), updated with a single atomic add.
//! * **Timers** — named log2-bucketed histograms of span durations,
//!   recorded via [`Collector::record_time`] or the RAII
//!   [`Span`] guard.
//! * **Histograms** ([`Histo`]) — named log-linear value histograms
//!   with exact-rank quantile extraction at ~1.6% bucket resolution
//!   (and *exactly* for values below [`HISTO_LINEAR_MAX`]), recorded
//!   via [`Collector::record_histo`]. Finished trace spans also feed a
//!   histogram named after the span, so P50/P95/P99 per span name come
//!   for free.
//! * **Traces** ([`trace`]) — span trees with explicit by-value
//!   context ([`TraceCtx`]), started with [`Collector::trace_start`]
//!   and grown with [`Collector::span_start`] /
//!   [`Collector::span_finish`].
//!
//! The process-wide instance is [`global()`]; isolated instances
//! ([`Collector::new`]) exist for tests. Collection can be switched
//! off at runtime ([`Collector::set_enabled`]): every recording entry
//! point checks one relaxed atomic load and returns before building
//! the record, so disabled instrumentation costs a branch.
//!
//! The database surfaces a snapshot of the global collector as the
//! `dc_events` / `dc_counters` system tables, making observability
//! SQL-queryable exactly as in the paper's database.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

pub mod names;
pub mod trace;

pub use trace::{SpanId, SpanRecord, TraceCtx, TraceId};

/// Number of event shards; writers pick one per thread.
const SHARDS: usize = 16;

/// Ring capacity per shard. Oldest events are dropped (and counted)
/// once a shard fills, bounding memory for long processes.
const SHARD_CAP: usize = 16_384;

/// The event taxonomy, spanning the three instrumented layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    // Compute-engine scheduler.
    TaskLaunch,
    TaskFinish,
    TaskRetry,
    TaskSpeculative,
    JobKill,
    JobFinish,
    // Database.
    TxnBegin,
    TxnCommit,
    TxnAbort,
    EpochAdvance,
    CopyLoad,
    PoolAdmit,
    SessionOpen,
    SessionClose,
    /// A node kill/restore or an injected fault firing (chaos layer).
    FaultInject,
    // Connector.
    S2vPhase,
    V2sPiece,
    MdScore,
    /// A hedged read launched its buddy-node attempt.
    Hedge,
    /// A per-node circuit breaker changed state (opened, half-opened,
    /// or closed).
    BreakerTrip,
}

impl EventKind {
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::TaskLaunch => "task_launch",
            EventKind::TaskFinish => "task_finish",
            EventKind::TaskRetry => "task_retry",
            EventKind::TaskSpeculative => "task_speculative",
            EventKind::JobKill => "job_kill",
            EventKind::JobFinish => "job_finish",
            EventKind::TxnBegin => "txn_begin",
            EventKind::TxnCommit => "txn_commit",
            EventKind::TxnAbort => "txn_abort",
            EventKind::EpochAdvance => "epoch_advance",
            EventKind::CopyLoad => "copy_load",
            EventKind::PoolAdmit => "pool_admit",
            EventKind::SessionOpen => "session_open",
            EventKind::SessionClose => "session_close",
            EventKind::FaultInject => "fault_inject",
            EventKind::S2vPhase => "s2v_phase",
            EventKind::V2sPiece => "v2s_piece",
            EventKind::MdScore => "md_score",
            EventKind::Hedge => "hedge",
            EventKind::BreakerTrip => "breaker_trip",
        }
    }
}

/// One structured record in the event log.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Global sequence number; total order across shards.
    pub seq: u64,
    /// Microseconds since the collector was created.
    pub ts_us: u64,
    /// Span duration in microseconds (0 for instantaneous events).
    pub dur_us: u64,
    pub kind: EventKind,
    /// Job name or id the event belongs to, when known.
    pub job: Option<String>,
    /// Task / partition index, when known.
    pub task: Option<u64>,
    /// Node index (database or compute, per layer), when known.
    pub node: Option<u64>,
    /// Row count the event accounts for.
    pub rows: u64,
    /// Byte volume the event accounts for.
    pub bytes: u64,
    /// Free-form detail (phase name, pool name, reject reason, ...).
    pub detail: String,
}

/// Aggregated statistics for one named timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimerStats {
    pub count: u64,
    pub sum_us: u64,
    pub min_us: u64,
    pub max_us: u64,
    /// Approximate percentiles from log2 buckets (upper bound of the
    /// bucket holding the percentile).
    pub p50_us: u64,
    pub p99_us: u64,
}

#[derive(Debug)]
struct Timer {
    count: u64,
    sum_us: u64,
    min_us: u64,
    max_us: u64,
    /// `buckets[i]` counts durations with `dur_us < 2^i` (first
    /// matching bucket).
    buckets: [u64; 64],
}

impl Default for Timer {
    fn default() -> Timer {
        Timer {
            count: 0,
            sum_us: 0,
            min_us: 0,
            max_us: 0,
            buckets: [0; 64],
        }
    }
}

impl Timer {
    fn record(&mut self, dur_us: u64) {
        self.count += 1;
        self.sum_us += dur_us;
        if self.count == 1 || dur_us < self.min_us {
            self.min_us = dur_us;
        }
        if dur_us > self.max_us {
            self.max_us = dur_us;
        }
        let bucket = (64 - dur_us.leading_zeros()).min(63) as usize;
        self.buckets[bucket] += 1;
    }

    fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                // Upper bound of bucket i, clamped to the observed max.
                let bound = if i >= 63 { u64::MAX } else { (1u64 << i) - 1 };
                return bound.min(self.max_us).max(self.min_us);
            }
        }
        self.max_us
    }

    fn stats(&self) -> TimerStats {
        TimerStats {
            count: self.count,
            sum_us: self.sum_us,
            min_us: self.min_us,
            max_us: self.max_us,
            p50_us: self.percentile(0.50),
            p99_us: self.percentile(0.99),
        }
    }
}

/// Values below this record into their own unit-wide bucket, so
/// quantiles of small values are exact, not bucket-rounded.
pub const HISTO_LINEAR_MAX: u64 = 64;

/// Sub-buckets per power-of-two octave above the linear range: the
/// bucket width is `2^(msb-6)`, bounding relative error at 1/64.
const HISTO_SUB: u64 = 64;

/// 64 linear buckets + 64 sub-buckets for each octave 2^6 ..= 2^63.
const HISTO_BUCKETS: usize = (HISTO_LINEAR_MAX + (63 - 6 + 1) * HISTO_SUB) as usize;

/// Aggregated statistics for one histogram, quantiles included.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistoStats {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

/// A fixed-bucket log-linear histogram (the `Metric::Histo` shape):
/// values below [`HISTO_LINEAR_MAX`] get exact unit buckets; above
/// that, each power-of-two octave splits into 64 sub-buckets, so a
/// quantile is off by at most 1/64 of the value. [`Histo::quantile`]
/// does exact *rank* selection — it returns the inclusive upper bound
/// of the bucket holding the `ceil(q·n)`-th smallest sample, clamped
/// to the observed `[min, max]` — so for small values it reproduces
/// the sorted-reference answer exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct Histo {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Box<[u64]>,
}

impl Default for Histo {
    fn default() -> Histo {
        Histo {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: vec![0; HISTO_BUCKETS].into_boxed_slice(),
        }
    }
}

/// Bucket index holding `value`.
pub fn histo_bucket_index(value: u64) -> usize {
    if value < HISTO_LINEAR_MAX {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros() as u64; // >= 6
    let offset = (value >> (msb - 6)) - HISTO_SUB; // 0..64 within the octave
    (HISTO_LINEAR_MAX + (msb - 6) * HISTO_SUB + offset) as usize
}

/// Smallest value mapping to bucket `index`.
pub fn histo_bucket_floor(index: usize) -> u64 {
    let index = index as u64;
    if index < HISTO_LINEAR_MAX {
        return index;
    }
    let octave = (index - HISTO_LINEAR_MAX) / HISTO_SUB;
    let pos = (index - HISTO_LINEAR_MAX) % HISTO_SUB;
    (((HISTO_SUB + pos) as u128) << octave) as u64
}

/// Largest value mapping to bucket `index` — what [`Histo::quantile`]
/// reports (before clamping), and what a reference computation should
/// round a sorted sample up to.
pub fn histo_bucket_bound(index: usize) -> u64 {
    let index = index as u64;
    if index < HISTO_LINEAR_MAX {
        return index;
    }
    let octave = (index - HISTO_LINEAR_MAX) / HISTO_SUB;
    let pos = (index - HISTO_LINEAR_MAX) % HISTO_SUB;
    ((((HISTO_SUB + pos + 1) as u128) << octave) - 1) as u64
}

impl Histo {
    pub fn new() -> Histo {
        Histo::default()
    }

    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        if self.count == 1 || value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
        self.buckets[histo_bucket_index(value)] += 1;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn min(&self) -> u64 {
        self.min
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact-rank quantile at bucket resolution: the upper bound of
    /// the bucket holding the `ceil(q·count)`-th smallest sample,
    /// clamped to the observed `[min, max]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return histo_bucket_bound(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    pub fn stats(&self) -> HistoStats {
        HistoStats {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }

    /// The distribution recorded between `earlier` and `self`
    /// (bucket-wise subtraction) — what one experiment contributed.
    /// `min`/`max` of the delta are reconstructed from the surviving
    /// buckets, so they carry bucket resolution rather than being
    /// sample-exact.
    pub fn since(&self, earlier: &Histo) -> Histo {
        let mut out = Histo {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            ..Histo::default()
        };
        for (i, (now, before)) in self.buckets.iter().zip(earlier.buckets.iter()).enumerate() {
            let delta = now.saturating_sub(*before);
            out.buckets[i] = delta;
            if delta > 0 {
                let floor = histo_bucket_floor(i).max(self.min);
                let bound = histo_bucket_bound(i).min(self.max);
                if out.max == 0 || floor < out.min {
                    out.min = floor;
                }
                if bound > out.max {
                    out.max = bound;
                }
            }
        }
        if out.count == 0 {
            out.min = 0;
            out.max = 0;
        }
        out
    }
}

/// A point-in-time copy of everything the collector holds.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// All retained events, in sequence order.
    pub events: Vec<Event>,
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Timer name → aggregated stats.
    pub timers: BTreeMap<String, TimerStats>,
    /// Histogram name → full histogram (so deltas via [`Histo::since`]
    /// can still extract quantiles).
    pub histos: BTreeMap<String, Histo>,
    /// Events discarded because a shard's ring filled.
    pub dropped_events: u64,
    /// Spans discarded because a trace hit its span cap (or its trace
    /// was already evicted).
    pub dropped_spans: u64,
}

impl Snapshot {
    /// Counter increments between `earlier` and `self` — what an
    /// experiment consumed, independent of whatever ran before it.
    pub fn counters_since(&self, earlier: &Snapshot) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .map(|(name, v)| {
                let before = earlier.counters.get(name).copied().unwrap_or(0);
                (name.clone(), v.saturating_sub(before))
            })
            .filter(|(_, delta)| *delta > 0)
            .collect()
    }

    /// Events of one kind, in order.
    pub fn events_of(&self, kind: EventKind) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.kind == kind)
    }
}

/// The data collector. See the crate docs for the model.
pub struct Collector {
    enabled: AtomicBool,
    start: Instant,
    seq: AtomicU64,
    shards: Vec<Mutex<std::collections::VecDeque<Event>>>,
    dropped: AtomicU64,
    counters: RwLock<HashMap<&'static str, Arc<AtomicU64>>>,
    timers: RwLock<HashMap<&'static str, Arc<Mutex<Timer>>>>,
    histos: RwLock<HashMap<&'static str, Arc<Mutex<Histo>>>>,
    traces: Mutex<trace::TraceStore>,
    next_shard: AtomicUsize,
}

/// `Registry` is the collector's public face for snapshot consumers
/// (benches snapshot "the registry"); it is the same type.
pub type Registry = Collector;

impl Default for Collector {
    fn default() -> Collector {
        Collector::new()
    }
}

impl Collector {
    pub fn new() -> Collector {
        Collector {
            enabled: AtomicBool::new(true),
            start: Instant::now(),
            seq: AtomicU64::new(0),
            shards: (0..SHARDS)
                .map(|_| Mutex::new(std::collections::VecDeque::new()))
                .collect(),
            dropped: AtomicU64::new(0),
            counters: RwLock::new(HashMap::new()),
            timers: RwLock::new(HashMap::new()),
            histos: RwLock::new(HashMap::new()),
            traces: Mutex::new(trace::TraceStore::default()),
            next_shard: AtomicUsize::new(0),
        }
    }

    /// Runtime toggle. Disabled collectors drop every record at the
    /// entry point, before field closures run.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn shard_index(&self) -> usize {
        thread_local! {
            static SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
        }
        SHARD.with(|s| {
            if s.get() == usize::MAX {
                s.set(self.next_shard.fetch_add(1, Ordering::Relaxed) % SHARDS);
            }
            s.get()
        })
    }

    /// Record one event. `fill` runs only when collection is enabled,
    /// so argument formatting costs nothing when it is off.
    pub fn emit(&self, kind: EventKind, fill: impl FnOnce(&mut Event)) {
        if !self.is_enabled() {
            return;
        }
        let mut event = Event {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            ts_us: self.start.elapsed().as_micros() as u64,
            dur_us: 0,
            kind,
            job: None,
            task: None,
            node: None,
            rows: 0,
            bytes: 0,
            detail: String::new(),
        };
        fill(&mut event);
        let mut shard = self.shards[self.shard_index()].lock();
        if shard.len() >= SHARD_CAP {
            shard.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        shard.push_back(event);
    }

    fn counter(&self, name: &'static str) -> Arc<AtomicU64> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .entry(name)
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    /// Add `delta` to a named counter.
    pub fn add(&self, name: &'static str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        self.counter(name).fetch_add(delta, Ordering::Relaxed);
    }

    /// Add 1 to a named counter.
    pub fn incr(&self, name: &'static str) {
        self.add(name, 1);
    }

    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .read()
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Record one span duration into a named timer histogram.
    pub fn record_time(&self, name: &'static str, dur: Duration) {
        if !self.is_enabled() {
            return;
        }
        let timer = {
            let read = self.timers.read();
            match read.get(name) {
                Some(t) => Arc::clone(t),
                None => {
                    drop(read);
                    Arc::clone(
                        self.timers
                            .write()
                            .entry(name)
                            .or_insert_with(|| Arc::new(Mutex::new(Timer::default()))),
                    )
                }
            }
        };
        timer.lock().record(dur.as_micros() as u64);
    }

    /// Record one value into a named log-linear histogram.
    pub fn record_histo(&self, name: &'static str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        let histo = {
            let read = self.histos.read();
            match read.get(name) {
                Some(h) => Arc::clone(h),
                None => {
                    drop(read);
                    Arc::clone(
                        self.histos
                            .write()
                            .entry(name)
                            .or_insert_with(|| Arc::new(Mutex::new(Histo::default()))),
                    )
                }
            }
        };
        histo.lock().record(value);
    }

    /// A point-in-time copy of one named histogram, if it exists.
    pub fn histo(&self, name: &str) -> Option<Histo> {
        self.histos.read().get(name).map(|h| h.lock().clone())
    }

    /// Start a new trace rooted at a span called `name`. Returns
    /// [`TraceCtx::NONE`] when collection is disabled, which turns all
    /// downstream span operations into no-ops.
    pub fn trace_start(&self, name: &'static str) -> TraceCtx {
        if !self.is_enabled() {
            return TraceCtx::NONE;
        }
        let now = self.start.elapsed().as_micros() as u64;
        self.traces.lock().start_trace(name, now)
    }

    /// Start a child span of `parent`. A `NONE` parent (untraced call
    /// path, or disabled collection at trace start) yields `NONE`.
    pub fn span_start(&self, name: &'static str, parent: TraceCtx) -> TraceCtx {
        if parent.is_none() || !self.is_enabled() {
            return TraceCtx::NONE;
        }
        let now = self.start.elapsed().as_micros() as u64;
        self.traces.lock().start_span(name, parent, now)
    }

    /// Finish the span `ctx` points at, stamping its end time and
    /// letting `fill` set tags (node, rows, failed, ...). The span's
    /// duration also lands in the histogram named after the span, so
    /// every span name has P50/P95/P99 without separate bookkeeping.
    pub fn span_finish(&self, ctx: TraceCtx, fill: impl FnOnce(&mut SpanRecord)) {
        if ctx.is_none() || !self.is_enabled() {
            return;
        }
        let now = self.start.elapsed().as_micros() as u64;
        let finished = self.traces.lock().finish_span(ctx, now, fill);
        if let Some((name, dur_us)) = finished {
            self.record_histo(name, dur_us);
        }
    }

    /// All retained spans of one trace, in span-id order.
    pub fn trace_spans(&self, trace: TraceId) -> Vec<SpanRecord> {
        self.traces.lock().spans_of(trace)
    }

    /// All retained spans across traces, grouped by trace in creation
    /// order (the `dc_spans` feed).
    pub fn all_spans(&self) -> Vec<SpanRecord> {
        self.traces.lock().all_spans()
    }

    /// Ids of retained traces, in creation order.
    pub fn trace_ids(&self) -> Vec<TraceId> {
        self.traces.lock().trace_ids()
    }

    /// Start a RAII span; its wall time is recorded when the guard
    /// drops (or sooner via [`Span::finish`]).
    pub fn span<'a>(&'a self, name: &'static str) -> Span<'a> {
        Span {
            collector: self,
            name,
            start: Instant::now(),
            done: false,
        }
    }

    /// Copy out events, counters, and timers.
    pub fn snapshot(&self) -> Snapshot {
        let mut events: Vec<Event> = Vec::new();
        for shard in &self.shards {
            events.extend(shard.lock().iter().cloned());
        }
        events.sort_by_key(|e| e.seq);
        let counters = self
            .counters
            .read()
            .iter()
            .map(|(name, v)| (name.to_string(), v.load(Ordering::Relaxed)))
            .collect();
        let timers = self
            .timers
            .read()
            .iter()
            .map(|(name, t)| (name.to_string(), t.lock().stats()))
            .collect();
        let histos = self
            .histos
            .read()
            .iter()
            .map(|(name, h)| (name.to_string(), h.lock().clone()))
            .collect();
        Snapshot {
            events,
            counters,
            timers,
            histos,
            dropped_events: self.dropped.load(Ordering::Relaxed),
            dropped_spans: self.traces.lock().dropped_spans,
        }
    }

    /// Discard all retained events, counters, timers, histograms, and
    /// traces.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
        self.counters.write().clear();
        self.timers.write().clear();
        self.histos.write().clear();
        self.traces.lock().clear();
        self.dropped.store(0, Ordering::Relaxed);
    }
}

/// RAII timer guard from [`Collector::span`].
pub struct Span<'a> {
    collector: &'a Collector,
    name: &'static str,
    start: Instant,
    done: bool,
}

impl Span<'_> {
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Record now and return the measured duration.
    pub fn finish(mut self) -> Duration {
        let dur = self.start.elapsed();
        self.collector.record_time(self.name, dur);
        self.done = true;
        dur
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.collector.record_time(self.name, self.start.elapsed());
        }
    }
}

/// The process-wide collector instance all layers record into.
///
/// Lock-order-witness findings are *not* pushed in here: the witness
/// hooks run while a freshly acquired guard is still held, so bumping
/// a collector counter from them could re-enter the collector's own
/// locks and self-deadlock. `dc_counters` folds the `lockwitness.*`
/// rows in at scan time instead (see `mppdb::system`).
pub fn global() -> &'static Collector {
    static GLOBAL: OnceLock<Collector> = OnceLock::new();
    GLOBAL.get_or_init(Collector::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn events_are_sequenced_and_carry_fields() {
        let c = Collector::new();
        c.emit(EventKind::TaskLaunch, |e| {
            e.job = Some("j1".into());
            e.task = Some(3);
        });
        c.emit(EventKind::TaskFinish, |e| {
            e.job = Some("j1".into());
            e.rows = 10;
            e.bytes = 100;
        });
        let snap = c.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].kind, EventKind::TaskLaunch);
        assert_eq!(snap.events[0].task, Some(3));
        assert!(snap.events[0].seq < snap.events[1].seq);
        assert!(snap.events[0].ts_us <= snap.events[1].ts_us);
        assert_eq!(snap.events[1].rows, 10);
        assert_eq!(snap.events_of(EventKind::TaskFinish).count(), 1);
    }

    #[test]
    fn counters_accumulate_and_delta() {
        let c = Collector::new();
        c.add("x.rows", 5);
        let before = c.snapshot();
        c.add("x.rows", 7);
        c.incr("x.jobs");
        let after = c.snapshot();
        assert_eq!(after.counters["x.rows"], 12);
        let delta = after.counters_since(&before);
        assert_eq!(delta["x.rows"], 7);
        assert_eq!(delta["x.jobs"], 1);
    }

    #[test]
    fn timers_track_distribution() {
        let c = Collector::new();
        for us in [10u64, 20, 30, 40, 5000] {
            c.record_time("t", Duration::from_micros(us));
        }
        let stats = c.snapshot().timers["t"];
        assert_eq!(stats.count, 5);
        assert_eq!(stats.sum_us, 5100);
        assert_eq!(stats.min_us, 10);
        assert_eq!(stats.max_us, 5000);
        assert!(stats.p50_us >= 10 && stats.p50_us < 5000, "{stats:?}");
        assert!(stats.p99_us >= stats.p50_us);
        assert!(stats.p99_us <= 5000);
    }

    #[test]
    fn span_guard_records_on_drop_and_finish() {
        let c = Collector::new();
        {
            let _s = c.span("implicit");
        }
        let d = c.span("explicit").finish();
        let snap = c.snapshot();
        assert_eq!(snap.timers["implicit"].count, 1);
        assert_eq!(snap.timers["explicit"].count, 1);
        assert!(snap.timers["explicit"].sum_us <= d.as_micros() as u64 + 1);
    }

    #[test]
    fn disabled_collector_records_nothing_and_skips_closures() {
        let c = Collector::new();
        c.set_enabled(false);
        let ran = AtomicU32::new(0);
        c.emit(EventKind::TxnBegin, |_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        c.add("n", 3);
        c.record_time("t", Duration::from_micros(9));
        assert_eq!(ran.load(Ordering::Relaxed), 0, "fill closure must not run");
        let snap = c.snapshot();
        assert!(snap.events.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.timers.is_empty());
        c.set_enabled(true);
        c.incr("n");
        assert_eq!(c.counter_value("n"), 1);
    }

    #[test]
    fn ring_buffer_drops_oldest_beyond_capacity() {
        let c = Collector::new();
        for _ in 0..(SHARD_CAP + 10) {
            c.emit(EventKind::TxnBegin, |_| {});
        }
        let snap = c.snapshot();
        assert_eq!(snap.events.len(), SHARD_CAP);
        assert_eq!(snap.dropped_events, 10);
        // The survivors are the newest events.
        assert_eq!(snap.events[0].seq, 10);
    }

    #[test]
    fn concurrent_writers_land_in_one_total_order() {
        let c = Arc::new(Collector::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        c.emit(EventKind::CopyLoad, |e| {
                            e.node = Some(t);
                            e.rows = i;
                        });
                        c.add("rows", 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = c.snapshot();
        assert_eq!(snap.events.len(), 8 * 500);
        assert_eq!(snap.counters["rows"], 8 * 500);
        assert!(snap.events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn clear_resets_everything() {
        let c = Collector::new();
        c.emit(EventKind::TxnBegin, |_| {});
        c.add("n", 2);
        c.record_time("t", Duration::from_micros(1));
        let ctx = c.trace_start("root");
        c.span_finish(ctx, |_| {});
        c.record_histo("h", 9);
        c.clear();
        let snap = c.snapshot();
        assert!(snap.events.is_empty() && snap.counters.is_empty() && snap.timers.is_empty());
        assert!(snap.histos.is_empty());
        assert!(c.all_spans().is_empty());
    }

    /// Quantiles are *exact* against a sorted reference for values in
    /// the linear range, and exact-at-bucket-resolution above it: the
    /// histogram answer equals the bucket upper bound of the sorted
    /// sample at rank `ceil(q·n)`, clamped to the observed extrema.
    #[test]
    fn histo_quantiles_match_sorted_reference() {
        let mut sorted: Vec<u64> = (1..=50).collect(); // all < HISTO_LINEAR_MAX
        let mut h = Histo::new();
        for &v in &sorted {
            h.record(v);
        }
        sorted.sort_unstable();
        for q in [0.01, 0.25, 0.50, 0.75, 0.95, 0.99, 1.0] {
            let rank = ((sorted.len() as f64) * q).ceil().max(1.0) as usize;
            assert_eq!(h.quantile(q), sorted[rank - 1], "q={q}");
        }

        // A long-tailed distribution crossing octaves: the reference
        // maps each sorted sample through the public bucket mapping.
        let values: Vec<u64> = (0..500u64).map(|i| (i * i * 37) % 90_000).collect();
        let mut h = Histo::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.50, 0.95, 0.99] {
            let rank = ((sorted.len() as f64) * q).ceil().max(1.0) as usize;
            let expect = histo_bucket_bound(histo_bucket_index(sorted[rank - 1]))
                .min(h.max())
                .max(h.min());
            assert_eq!(h.quantile(q), expect, "q={q}");
            // Bucket resolution: within 1/64 of the true rank value.
            let truth = sorted[rank - 1];
            assert!(h.quantile(q) >= truth, "q={q}");
            assert!(h.quantile(q) <= truth + truth / 64 + 1, "q={q}");
        }
        assert_eq!(h.stats().count, 500);
    }

    #[test]
    fn histo_bucket_mapping_is_monotone_and_consistent() {
        for v in (0..4096u64).chain([1 << 20, (1 << 40) + 12345, u64::MAX]) {
            let i = histo_bucket_index(v);
            assert!(histo_bucket_floor(i) <= v, "floor({i}) > {v}");
            assert!(histo_bucket_bound(i) >= v, "bound({i}) < {v}");
        }
        for i in 1..HISTO_BUCKETS {
            assert_eq!(
                histo_bucket_floor(i),
                histo_bucket_bound(i - 1).wrapping_add(1),
                "gap/overlap at bucket {i}"
            );
        }
    }

    #[test]
    fn histo_since_subtracts_and_keeps_quantiles() {
        let mut h = Histo::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let before = h.clone();
        for v in [40u64, 50, 60, 61, 62] {
            h.record(v);
        }
        let delta = h.since(&before);
        assert_eq!(delta.count(), 5);
        assert_eq!(delta.min(), 40);
        assert_eq!(delta.max(), 62);
        assert_eq!(delta.quantile(0.5), 60); // rank 3 of [40,50,60,61,62]
        assert_eq!(delta.quantile(1.0), 62);
    }

    #[test]
    fn spans_build_a_tree_and_feed_histograms() {
        let c = Collector::new();
        let root = c.trace_start("job");
        let child = c.span_start("phase", root);
        let grand = c.span_start("attempt", child);
        c.span_finish(grand, |s| {
            s.node = Some(2);
            s.attempt = 1;
            s.failed = true;
        });
        c.span_finish(child, |s| s.rows = 7);
        c.span_finish(root, |_| {});
        let spans = c.trace_spans(root.trace);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "job");
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].parent, Some(root.span));
        assert_eq!(spans[2].parent, Some(child.span));
        assert!(spans[2].failed);
        assert_eq!(spans[1].rows, 7);
        assert!(spans.iter().all(|s| s.end_us.is_some()));
        assert!(trace::validate(&spans).is_empty());
        // Every finished span landed in a same-named histogram.
        let snap = c.snapshot();
        for name in ["job", "phase", "attempt"] {
            assert_eq!(snap.histos[name].count(), 1, "{name}");
        }
        assert_eq!(c.trace_ids(), vec![root.trace]);
    }

    /// The disabled-mode no-op discipline extends to tracing: a
    /// disabled collector hands out `NONE` contexts, runs no fill
    /// closures, stores no spans, and records no histograms.
    #[test]
    fn disabled_tracing_is_a_no_op() {
        let c = Collector::new();
        c.set_enabled(false);
        let ran = AtomicU32::new(0);
        let root = c.trace_start("job");
        assert!(root.is_none());
        let child = c.span_start("phase", root);
        assert!(child.is_none());
        c.span_finish(child, |_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        c.record_histo("h", 5);
        assert_eq!(ran.load(Ordering::Relaxed), 0, "fill must not run");
        let snap = c.snapshot();
        assert!(c.all_spans().is_empty());
        assert!(snap.histos.is_empty());
        assert_eq!(snap.dropped_spans, 0);
        // Spans started while enabled but finished while disabled stay
        // unclosed rather than recording.
        c.set_enabled(true);
        let root = c.trace_start("job");
        c.set_enabled(false);
        c.span_finish(root, |_| {});
        let spans = c.trace_spans(root.trace);
        assert_eq!(spans[0].end_us, None);
    }

    #[test]
    fn span_cap_drops_and_counts() {
        let c = Collector::new();
        let root = c.trace_start("job");
        let mut dropped = 0;
        for _ in 0..9000 {
            let ctx = c.span_start("s", root);
            if ctx.is_none() {
                dropped += 1;
            } else {
                c.span_finish(ctx, |_| {});
            }
        }
        assert!(dropped > 0);
        assert_eq!(c.snapshot().dropped_spans, dropped);
        // Children of a dropped span are no-ops, not errors.
        let ctx = c.span_start("s", TraceCtx::NONE);
        assert!(ctx.is_none());
    }
}
