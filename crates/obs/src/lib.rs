//! A process-wide data collector, modeled on Vertica's Data Collector
//! (the monitoring layer behind its `dc_*` system tables).
//!
//! Three kinds of telemetry:
//!
//! * **Events** ([`Event`]) — structured records (an [`EventKind`],
//!   fixed fields, a monotonic timestamp and sequence number) kept in
//!   sharded in-memory ring buffers. Each thread writes to its own
//!   shard, so hot paths never contend on one lock; a snapshot drains
//!   all shards and re-sorts by sequence number.
//! * **Counters** — named monotonic `u64`s (`rows loaded`, `task
//!   retries`, ...), updated with a single atomic add.
//! * **Timers** — named log2-bucketed histograms of span durations,
//!   recorded via [`Collector::record_time`] or the RAII
//!   [`Span`] guard.
//!
//! The process-wide instance is [`global()`]; isolated instances
//! ([`Collector::new`]) exist for tests. Collection can be switched
//! off at runtime ([`Collector::set_enabled`]): every recording entry
//! point checks one relaxed atomic load and returns before building
//! the record, so disabled instrumentation costs a branch.
//!
//! The database surfaces a snapshot of the global collector as the
//! `dc_events` / `dc_counters` system tables, making observability
//! SQL-queryable exactly as in the paper's database.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

pub mod names;

/// Number of event shards; writers pick one per thread.
const SHARDS: usize = 16;

/// Ring capacity per shard. Oldest events are dropped (and counted)
/// once a shard fills, bounding memory for long processes.
const SHARD_CAP: usize = 16_384;

/// The event taxonomy, spanning the three instrumented layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    // Compute-engine scheduler.
    TaskLaunch,
    TaskFinish,
    TaskRetry,
    TaskSpeculative,
    JobKill,
    JobFinish,
    // Database.
    TxnBegin,
    TxnCommit,
    TxnAbort,
    EpochAdvance,
    CopyLoad,
    PoolAdmit,
    SessionOpen,
    SessionClose,
    /// A node kill/restore or an injected fault firing (chaos layer).
    FaultInject,
    // Connector.
    S2vPhase,
    V2sPiece,
    MdScore,
    /// A hedged read launched its buddy-node attempt.
    Hedge,
    /// A per-node circuit breaker changed state (opened, half-opened,
    /// or closed).
    BreakerTrip,
}

impl EventKind {
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::TaskLaunch => "task_launch",
            EventKind::TaskFinish => "task_finish",
            EventKind::TaskRetry => "task_retry",
            EventKind::TaskSpeculative => "task_speculative",
            EventKind::JobKill => "job_kill",
            EventKind::JobFinish => "job_finish",
            EventKind::TxnBegin => "txn_begin",
            EventKind::TxnCommit => "txn_commit",
            EventKind::TxnAbort => "txn_abort",
            EventKind::EpochAdvance => "epoch_advance",
            EventKind::CopyLoad => "copy_load",
            EventKind::PoolAdmit => "pool_admit",
            EventKind::SessionOpen => "session_open",
            EventKind::SessionClose => "session_close",
            EventKind::FaultInject => "fault_inject",
            EventKind::S2vPhase => "s2v_phase",
            EventKind::V2sPiece => "v2s_piece",
            EventKind::MdScore => "md_score",
            EventKind::Hedge => "hedge",
            EventKind::BreakerTrip => "breaker_trip",
        }
    }
}

/// One structured record in the event log.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Global sequence number; total order across shards.
    pub seq: u64,
    /// Microseconds since the collector was created.
    pub ts_us: u64,
    /// Span duration in microseconds (0 for instantaneous events).
    pub dur_us: u64,
    pub kind: EventKind,
    /// Job name or id the event belongs to, when known.
    pub job: Option<String>,
    /// Task / partition index, when known.
    pub task: Option<u64>,
    /// Node index (database or compute, per layer), when known.
    pub node: Option<u64>,
    /// Row count the event accounts for.
    pub rows: u64,
    /// Byte volume the event accounts for.
    pub bytes: u64,
    /// Free-form detail (phase name, pool name, reject reason, ...).
    pub detail: String,
}

/// Aggregated statistics for one named timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimerStats {
    pub count: u64,
    pub sum_us: u64,
    pub min_us: u64,
    pub max_us: u64,
    /// Approximate percentiles from log2 buckets (upper bound of the
    /// bucket holding the percentile).
    pub p50_us: u64,
    pub p99_us: u64,
}

#[derive(Debug)]
struct Timer {
    count: u64,
    sum_us: u64,
    min_us: u64,
    max_us: u64,
    /// `buckets[i]` counts durations with `dur_us < 2^i` (first
    /// matching bucket).
    buckets: [u64; 64],
}

impl Default for Timer {
    fn default() -> Timer {
        Timer {
            count: 0,
            sum_us: 0,
            min_us: 0,
            max_us: 0,
            buckets: [0; 64],
        }
    }
}

impl Timer {
    fn record(&mut self, dur_us: u64) {
        self.count += 1;
        self.sum_us += dur_us;
        if self.count == 1 || dur_us < self.min_us {
            self.min_us = dur_us;
        }
        if dur_us > self.max_us {
            self.max_us = dur_us;
        }
        let bucket = (64 - dur_us.leading_zeros()).min(63) as usize;
        self.buckets[bucket] += 1;
    }

    fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                // Upper bound of bucket i, clamped to the observed max.
                let bound = if i >= 63 { u64::MAX } else { (1u64 << i) - 1 };
                return bound.min(self.max_us).max(self.min_us);
            }
        }
        self.max_us
    }

    fn stats(&self) -> TimerStats {
        TimerStats {
            count: self.count,
            sum_us: self.sum_us,
            min_us: self.min_us,
            max_us: self.max_us,
            p50_us: self.percentile(0.50),
            p99_us: self.percentile(0.99),
        }
    }
}

/// A point-in-time copy of everything the collector holds.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// All retained events, in sequence order.
    pub events: Vec<Event>,
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Timer name → aggregated stats.
    pub timers: BTreeMap<String, TimerStats>,
    /// Events discarded because a shard's ring filled.
    pub dropped_events: u64,
}

impl Snapshot {
    /// Counter increments between `earlier` and `self` — what an
    /// experiment consumed, independent of whatever ran before it.
    pub fn counters_since(&self, earlier: &Snapshot) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .map(|(name, v)| {
                let before = earlier.counters.get(name).copied().unwrap_or(0);
                (name.clone(), v.saturating_sub(before))
            })
            .filter(|(_, delta)| *delta > 0)
            .collect()
    }

    /// Events of one kind, in order.
    pub fn events_of(&self, kind: EventKind) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.kind == kind)
    }
}

/// The data collector. See the crate docs for the model.
pub struct Collector {
    enabled: AtomicBool,
    start: Instant,
    seq: AtomicU64,
    shards: Vec<Mutex<std::collections::VecDeque<Event>>>,
    dropped: AtomicU64,
    counters: RwLock<HashMap<&'static str, Arc<AtomicU64>>>,
    timers: RwLock<HashMap<&'static str, Arc<Mutex<Timer>>>>,
    next_shard: AtomicUsize,
}

/// `Registry` is the collector's public face for snapshot consumers
/// (benches snapshot "the registry"); it is the same type.
pub type Registry = Collector;

impl Default for Collector {
    fn default() -> Collector {
        Collector::new()
    }
}

impl Collector {
    pub fn new() -> Collector {
        Collector {
            enabled: AtomicBool::new(true),
            start: Instant::now(),
            seq: AtomicU64::new(0),
            shards: (0..SHARDS)
                .map(|_| Mutex::new(std::collections::VecDeque::new()))
                .collect(),
            dropped: AtomicU64::new(0),
            counters: RwLock::new(HashMap::new()),
            timers: RwLock::new(HashMap::new()),
            next_shard: AtomicUsize::new(0),
        }
    }

    /// Runtime toggle. Disabled collectors drop every record at the
    /// entry point, before field closures run.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn shard_index(&self) -> usize {
        thread_local! {
            static SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
        }
        SHARD.with(|s| {
            if s.get() == usize::MAX {
                s.set(self.next_shard.fetch_add(1, Ordering::Relaxed) % SHARDS);
            }
            s.get()
        })
    }

    /// Record one event. `fill` runs only when collection is enabled,
    /// so argument formatting costs nothing when it is off.
    pub fn emit(&self, kind: EventKind, fill: impl FnOnce(&mut Event)) {
        if !self.is_enabled() {
            return;
        }
        let mut event = Event {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            ts_us: self.start.elapsed().as_micros() as u64,
            dur_us: 0,
            kind,
            job: None,
            task: None,
            node: None,
            rows: 0,
            bytes: 0,
            detail: String::new(),
        };
        fill(&mut event);
        let mut shard = self.shards[self.shard_index()].lock();
        if shard.len() >= SHARD_CAP {
            shard.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        shard.push_back(event);
    }

    fn counter(&self, name: &'static str) -> Arc<AtomicU64> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .entry(name)
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    /// Add `delta` to a named counter.
    pub fn add(&self, name: &'static str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        self.counter(name).fetch_add(delta, Ordering::Relaxed);
    }

    /// Add 1 to a named counter.
    pub fn incr(&self, name: &'static str) {
        self.add(name, 1);
    }

    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .read()
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Record one span duration into a named timer histogram.
    pub fn record_time(&self, name: &'static str, dur: Duration) {
        if !self.is_enabled() {
            return;
        }
        let timer = {
            let read = self.timers.read();
            match read.get(name) {
                Some(t) => Arc::clone(t),
                None => {
                    drop(read);
                    Arc::clone(
                        self.timers
                            .write()
                            .entry(name)
                            .or_insert_with(|| Arc::new(Mutex::new(Timer::default()))),
                    )
                }
            }
        };
        timer.lock().record(dur.as_micros() as u64);
    }

    /// Start a RAII span; its wall time is recorded when the guard
    /// drops (or sooner via [`Span::finish`]).
    pub fn span<'a>(&'a self, name: &'static str) -> Span<'a> {
        Span {
            collector: self,
            name,
            start: Instant::now(),
            done: false,
        }
    }

    /// Copy out events, counters, and timers.
    pub fn snapshot(&self) -> Snapshot {
        let mut events: Vec<Event> = Vec::new();
        for shard in &self.shards {
            events.extend(shard.lock().iter().cloned());
        }
        events.sort_by_key(|e| e.seq);
        let counters = self
            .counters
            .read()
            .iter()
            .map(|(name, v)| (name.to_string(), v.load(Ordering::Relaxed)))
            .collect();
        let timers = self
            .timers
            .read()
            .iter()
            .map(|(name, t)| (name.to_string(), t.lock().stats()))
            .collect();
        Snapshot {
            events,
            counters,
            timers,
            dropped_events: self.dropped.load(Ordering::Relaxed),
        }
    }

    /// Discard all retained events, counters, and timers.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
        self.counters.write().clear();
        self.timers.write().clear();
        self.dropped.store(0, Ordering::Relaxed);
    }
}

/// RAII timer guard from [`Collector::span`].
pub struct Span<'a> {
    collector: &'a Collector,
    name: &'static str,
    start: Instant,
    done: bool,
}

impl Span<'_> {
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Record now and return the measured duration.
    pub fn finish(mut self) -> Duration {
        let dur = self.start.elapsed();
        self.collector.record_time(self.name, dur);
        self.done = true;
        dur
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.collector.record_time(self.name, self.start.elapsed());
        }
    }
}

/// The process-wide collector instance all layers record into.
///
/// Lock-order-witness findings are *not* pushed in here: the witness
/// hooks run while a freshly acquired guard is still held, so bumping
/// a collector counter from them could re-enter the collector's own
/// locks and self-deadlock. `dc_counters` folds the `lockwitness.*`
/// rows in at scan time instead (see `mppdb::system`).
pub fn global() -> &'static Collector {
    static GLOBAL: OnceLock<Collector> = OnceLock::new();
    GLOBAL.get_or_init(Collector::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn events_are_sequenced_and_carry_fields() {
        let c = Collector::new();
        c.emit(EventKind::TaskLaunch, |e| {
            e.job = Some("j1".into());
            e.task = Some(3);
        });
        c.emit(EventKind::TaskFinish, |e| {
            e.job = Some("j1".into());
            e.rows = 10;
            e.bytes = 100;
        });
        let snap = c.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].kind, EventKind::TaskLaunch);
        assert_eq!(snap.events[0].task, Some(3));
        assert!(snap.events[0].seq < snap.events[1].seq);
        assert!(snap.events[0].ts_us <= snap.events[1].ts_us);
        assert_eq!(snap.events[1].rows, 10);
        assert_eq!(snap.events_of(EventKind::TaskFinish).count(), 1);
    }

    #[test]
    fn counters_accumulate_and_delta() {
        let c = Collector::new();
        c.add("x.rows", 5);
        let before = c.snapshot();
        c.add("x.rows", 7);
        c.incr("x.jobs");
        let after = c.snapshot();
        assert_eq!(after.counters["x.rows"], 12);
        let delta = after.counters_since(&before);
        assert_eq!(delta["x.rows"], 7);
        assert_eq!(delta["x.jobs"], 1);
    }

    #[test]
    fn timers_track_distribution() {
        let c = Collector::new();
        for us in [10u64, 20, 30, 40, 5000] {
            c.record_time("t", Duration::from_micros(us));
        }
        let stats = c.snapshot().timers["t"];
        assert_eq!(stats.count, 5);
        assert_eq!(stats.sum_us, 5100);
        assert_eq!(stats.min_us, 10);
        assert_eq!(stats.max_us, 5000);
        assert!(stats.p50_us >= 10 && stats.p50_us < 5000, "{stats:?}");
        assert!(stats.p99_us >= stats.p50_us);
        assert!(stats.p99_us <= 5000);
    }

    #[test]
    fn span_guard_records_on_drop_and_finish() {
        let c = Collector::new();
        {
            let _s = c.span("implicit");
        }
        let d = c.span("explicit").finish();
        let snap = c.snapshot();
        assert_eq!(snap.timers["implicit"].count, 1);
        assert_eq!(snap.timers["explicit"].count, 1);
        assert!(snap.timers["explicit"].sum_us <= d.as_micros() as u64 + 1);
    }

    #[test]
    fn disabled_collector_records_nothing_and_skips_closures() {
        let c = Collector::new();
        c.set_enabled(false);
        let ran = AtomicU32::new(0);
        c.emit(EventKind::TxnBegin, |_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        c.add("n", 3);
        c.record_time("t", Duration::from_micros(9));
        assert_eq!(ran.load(Ordering::Relaxed), 0, "fill closure must not run");
        let snap = c.snapshot();
        assert!(snap.events.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.timers.is_empty());
        c.set_enabled(true);
        c.incr("n");
        assert_eq!(c.counter_value("n"), 1);
    }

    #[test]
    fn ring_buffer_drops_oldest_beyond_capacity() {
        let c = Collector::new();
        for _ in 0..(SHARD_CAP + 10) {
            c.emit(EventKind::TxnBegin, |_| {});
        }
        let snap = c.snapshot();
        assert_eq!(snap.events.len(), SHARD_CAP);
        assert_eq!(snap.dropped_events, 10);
        // The survivors are the newest events.
        assert_eq!(snap.events[0].seq, 10);
    }

    #[test]
    fn concurrent_writers_land_in_one_total_order() {
        let c = Arc::new(Collector::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        c.emit(EventKind::CopyLoad, |e| {
                            e.node = Some(t);
                            e.rows = i;
                        });
                        c.add("rows", 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = c.snapshot();
        assert_eq!(snap.events.len(), 8 * 500);
        assert_eq!(snap.counters["rows"], 8 * 500);
        assert!(snap.events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn clear_resets_everything() {
        let c = Collector::new();
        c.emit(EventKind::TxnBegin, |_| {});
        c.add("n", 2);
        c.record_time("t", Duration::from_micros(1));
        c.clear();
        let snap = c.snapshot();
        assert!(snap.events.is_empty() && snap.counters.is_empty() && snap.timers.is_empty());
    }
}
