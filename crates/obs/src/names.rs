//! Single-source registry of every data-collector counter and timer
//! name in the workspace.
//!
//! Emit sites across the fabric record into the process-wide collector
//! by string name. Before this module those names were free-floating
//! literals, so a typo at one site ("hedge.winz") silently created a
//! phantom counter that no `dc_counters` consumer would ever find. Now
//! every name lives in [`DEFS`], and the `fabriclint` workspace linter
//! cross-checks both directions:
//!
//! * a name recorded via `obs::global()` that is not in [`DEFS`] is an
//!   *unregistered* counter — a lint error at the emit site;
//! * a [`DEFS`] row whose name appears nowhere else in the workspace is
//!   a *dead* row — a lint error here.
//!
//! Names that are emitted from more than one call site are additionally
//! hoisted into `pub const`s so the duplication is a compile-time
//! symbol, not a copy-pasted string.
//!
//! Timer names (kind [`NameKind::Timer`]) surface in `dc_counters` as
//! six derived rows (`<name>.count`, `.sum_us`, `.min_us`, `.max_us`,
//! `.p50_us`, `.p99_us`); [`is_registered`] accepts those derived
//! spellings too.
//!
//! Span names (kind [`NameKind::Span`]) are recorded via
//! `trace_start`/`span_start` and surface twice: as `dc_spans` rows and
//! — because every finished span feeds a histogram named after it — as
//! `dc_histograms` rows. Standalone histograms (kind
//! [`NameKind::Histo`], via `record_histo`) surface only in
//! `dc_histograms`.

/// Breaker half-open probe was rejected (no probe budget left).
pub const BREAKER_REJECTED: &str = "breaker.rejected";
/// COPY rows rejected by parse/coercion errors (within tolerance).
pub const DB_COPY_REJECTS: &str = "db.copy_rejects";
/// A retry loop abandoned its operation because the job deadline passed.
pub const DEADLINE_EXPIRED: &str = "deadline.expired";
/// Op tag for injected-latency sleeps (also the lock-witness hazard tag).
pub const FAULT_DELAY: &str = "fault.delay";
/// Any injected fault fired (site-specific counters break this down).
pub const FAULT_INJECTED: &str = "fault.injected";
/// Span for one arm (primary or buddy) of a hedged read.
pub const HEDGE_ATTEMPT: &str = "hedge.attempt";
/// Distinct lock classes (creation sites) the witness has registered.
pub const LOCKWITNESS_CLASSES: &str = "lockwitness.classes";
/// The lock-order witness recorded a new acquisition-order edge.
pub const LOCKWITNESS_EDGES: &str = "lockwitness.edges";
/// The lock-order witness found a cycle: a potential deadlock.
pub const LOCKWITNESS_CYCLES: &str = "lockwitness.cycles";
/// A thread slept in the fault injector while holding a lock.
pub const LOCKWITNESS_HAZARDS: &str = "lockwitness.hazards";
/// Span for one attempt inside a retry/failover loop.
pub const RETRY_ATTEMPT: &str = "retry.attempt";
/// A retry loop gave up (attempts or deadline exhausted).
pub const RETRY_GAVE_UP: &str = "retry.gave_up";
/// Op tag for the save-to-Vertica finalize step (global commit fan-in).
pub const S2V_FINALIZE: &str = "s2v.finalize";
/// Op tag for save-to-Vertica setup (target/staging table DDL).
pub const S2V_SETUP: &str = "s2v.setup";
/// Per-phase save-to-Vertica timers, indexed by `phase - 1`.
pub const S2V_PHASE_TIMERS: [&str; 5] = [
    "s2v.phase1_us",
    "s2v.phase2_us",
    "s2v.phase3_us",
    "s2v.phase4_us",
    "s2v.phase5_us",
];
/// A speculative duplicate of a straggler task was launched.
pub const SCHED_SPECULATIVE_TASKS: &str = "sched.speculative_tasks";
/// Op tag for Vertica-to-Spark connect attempts.
pub const V2S_CONNECT: &str = "v2s.connect";
/// Op tag for the Vertica-to-Spark schema/open probe.
pub const V2S_OPEN: &str = "v2s.open";
/// Op tag for per-piece Vertica-to-Spark reads.
pub const V2S_PIECE: &str = "v2s.piece";
/// Op tag for Vertica-to-Spark partition planning (count probe).
pub const V2S_PLAN: &str = "v2s.plan";

/// How a registered name is recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameKind {
    /// Monotonic counter via `incr`/`add`.
    Counter,
    /// Duration histogram via `record_time`/`span`.
    Timer,
    /// Synthesized by a snapshot consumer, not recorded at an emit site.
    Builtin,
    /// An operation/event tag: flows into `dc_events` rows and error
    /// contexts rather than `dc_counters`.
    Event,
    /// A trace span via `trace_start`/`span_start`: flows into
    /// `dc_spans`, and (since every finished span records its duration
    /// into a same-named histogram) into `dc_histograms`. Span names
    /// double as operation tags in retry contexts and events.
    Span,
    /// A value histogram via `record_histo`: flows into
    /// `dc_histograms`.
    Histo,
}

/// One registered name.
#[derive(Debug, Clone, Copy)]
pub struct NameDef {
    pub name: &'static str,
    pub kind: NameKind,
    pub help: &'static str,
}

/// The registry. Sorted by name; `fabriclint` parses this table
/// textually, so keep entries in the literal `NameDef { .. }` form.
pub static DEFS: &[NameDef] = &[
    NameDef {
        name: "agg.pushdown.partials_merged",
        kind: NameKind::Counter,
        help: "per-piece partial aggregates merged exactly once at the driver",
    },
    NameDef {
        name: "agg.pushdown.queries",
        kind: NameKind::Counter,
        help: "table scans executed as partial-aggregate pushdowns",
    },
    NameDef {
        name: "agg.pushdown.stats_answered",
        kind: NameKind::Counter,
        help: "ROS containers whose aggregate was answered from zone maps alone",
    },
    NameDef {
        name: "breaker.close",
        kind: NameKind::Counter,
        help: "circuit breaker closed after a successful probe",
    },
    NameDef {
        name: "breaker.half_open",
        kind: NameKind::Counter,
        help: "circuit breaker moved to half-open after cooldown",
    },
    NameDef {
        name: "breaker.open",
        kind: NameKind::Counter,
        help: "circuit breaker opened on error-score breach",
    },
    NameDef {
        name: BREAKER_REJECTED,
        kind: NameKind::Counter,
        help: "operation rejected by an open breaker",
    },
    NameDef {
        name: "db.commit_us",
        kind: NameKind::Timer,
        help: "commit critical-section wall time",
    },
    NameDef {
        name: "db.copy",
        kind: NameKind::Span,
        help: "span for one COPY statement on a session",
    },
    NameDef {
        name: "db.copy_bytes",
        kind: NameKind::Counter,
        help: "bytes ingested by COPY",
    },
    NameDef {
        name: DB_COPY_REJECTS,
        kind: NameKind::Counter,
        help: "COPY rows rejected by parse/coercion errors",
    },
    NameDef {
        name: "db.copy_rows",
        kind: NameKind::Counter,
        help: "rows loaded by COPY",
    },
    NameDef {
        name: "db.copy_us",
        kind: NameKind::Timer,
        help: "COPY statement wall time",
    },
    NameDef {
        name: "db.epoch_advance",
        kind: NameKind::Counter,
        help: "cluster epoch advanced at commit",
    },
    NameDef {
        name: "db.node_kills",
        kind: NameKind::Counter,
        help: "nodes taken down (chaos or operator)",
    },
    NameDef {
        name: "db.node_restores",
        kind: NameKind::Counter,
        help: "nodes brought back up",
    },
    NameDef {
        name: "db.pool_admissions",
        kind: NameKind::Counter,
        help: "statements admitted by a resource pool",
    },
    NameDef {
        name: "db.pool_admit_wait_us",
        kind: NameKind::Timer,
        help: "time a statement waited for pool admission",
    },
    NameDef {
        name: "db.pool_queued",
        kind: NameKind::Counter,
        help: "statements that had to queue for a pool slot",
    },
    NameDef {
        name: "db.query",
        kind: NameKind::Span,
        help: "span for one query (table or system scan) on a session",
    },
    NameDef {
        name: "db.sessions_closed",
        kind: NameKind::Counter,
        help: "client sessions closed",
    },
    NameDef {
        name: "db.sessions_opened",
        kind: NameKind::Counter,
        help: "client sessions opened",
    },
    NameDef {
        name: "db.txn_abort",
        kind: NameKind::Counter,
        help: "transactions aborted",
    },
    NameDef {
        name: "db.txn_begin",
        kind: NameKind::Counter,
        help: "transactions begun",
    },
    NameDef {
        name: "db.txn_commit",
        kind: NameKind::Counter,
        help: "transactions committed",
    },
    NameDef {
        name: "dc.dropped_events",
        kind: NameKind::Builtin,
        help: "events discarded because a collector shard ring filled",
    },
    NameDef {
        name: "dc.dropped_spans",
        kind: NameKind::Builtin,
        help: "spans discarded because a trace hit its span cap",
    },
    NameDef {
        name: DEADLINE_EXPIRED,
        kind: NameKind::Counter,
        help: "operations abandoned because the job deadline passed",
    },
    NameDef {
        name: "failover.connects",
        kind: NameKind::Counter,
        help: "connections re-established on a different node",
    },
    NameDef {
        name: "failover.reads",
        kind: NameKind::Counter,
        help: "V2S pieces served by a buddy after primary failure",
    },
    NameDef {
        name: "fault.connect_refused",
        kind: NameKind::Counter,
        help: "injected connect refusals fired",
    },
    NameDef {
        name: FAULT_DELAY,
        kind: NameKind::Event,
        help: "operation tag for injected-latency sleeps (lock witness hazard tag)",
    },
    NameDef {
        name: "fault.delay_us",
        kind: NameKind::Timer,
        help: "injected grey-failure delay per firing",
    },
    NameDef {
        name: FAULT_INJECTED,
        kind: NameKind::Counter,
        help: "any injected fault fired",
    },
    NameDef {
        name: "fault.mid_copy",
        kind: NameKind::Counter,
        help: "injected mid-COPY crashes fired",
    },
    NameDef {
        name: "fault.moveout",
        kind: NameKind::Counter,
        help: "injected tuple-mover pass crashes fired",
    },
    NameDef {
        name: "fault.post_commit",
        kind: NameKind::Counter,
        help: "injected lost-commit-acks fired",
    },
    NameDef {
        name: "fault.rebalance",
        kind: NameKind::Counter,
        help: "injected mid-migration rebalance crashes fired",
    },
    NameDef {
        name: "fault.slow_connect",
        kind: NameKind::Counter,
        help: "injected connect slowdowns fired",
    },
    NameDef {
        name: "fault.slow_copy",
        kind: NameKind::Counter,
        help: "injected COPY slowdowns fired",
    },
    NameDef {
        name: "fault.slow_scan",
        kind: NameKind::Counter,
        help: "injected scan slowdowns fired",
    },
    NameDef {
        name: "health.failures",
        kind: NameKind::Counter,
        help: "operations recorded as failures by a health tracker",
    },
    NameDef {
        name: "health.steered_connects",
        kind: NameKind::Counter,
        help: "connect attempts steered away from open breakers",
    },
    NameDef {
        name: "health.successes",
        kind: NameKind::Counter,
        help: "operations recorded as successes by a health tracker",
    },
    NameDef {
        name: HEDGE_ATTEMPT,
        kind: NameKind::Span,
        help: "span for one arm (primary or buddy) of a hedged read",
    },
    NameDef {
        name: "hedge.cancelled",
        kind: NameKind::Counter,
        help: "hedged-read losers abandoned in flight",
    },
    NameDef {
        name: "hedge.launched",
        kind: NameKind::Counter,
        help: "hedged buddy attempts launched",
    },
    NameDef {
        name: "hedge.primary_wins",
        kind: NameKind::Counter,
        help: "hedged reads won by the primary attempt",
    },
    NameDef {
        name: "hedge.wins",
        kind: NameKind::Counter,
        help: "hedged reads won by the buddy attempt",
    },
    NameDef {
        name: LOCKWITNESS_CLASSES,
        kind: NameKind::Builtin,
        help: "distinct lock classes (creation sites) registered",
    },
    NameDef {
        name: LOCKWITNESS_CYCLES,
        kind: NameKind::Builtin,
        help: "lock-order cycles (potential deadlocks) detected",
    },
    NameDef {
        name: LOCKWITNESS_EDGES,
        kind: NameKind::Builtin,
        help: "distinct lock acquisition-order edges recorded",
    },
    NameDef {
        name: LOCKWITNESS_HAZARDS,
        kind: NameKind::Builtin,
        help: "injected sleeps taken while holding a lock",
    },
    NameDef {
        name: "md.models_deployed",
        kind: NameKind::Counter,
        help: "PMML models deployed for in-database scoring",
    },
    NameDef {
        name: "md.predictions",
        kind: NameKind::Counter,
        help: "in-database model scoring calls",
    },
    NameDef {
        name: "planner.conjuncts_reordered",
        kind: NameKind::Counter,
        help: "containers whose predicate conjuncts ran in a stats-chosen order",
    },
    NameDef {
        name: "planner.estimated_rows",
        kind: NameKind::Counter,
        help: "rows the stats-driven planner estimated a scan would leave",
    },
    NameDef {
        name: "rebalance.flips",
        kind: NameKind::Counter,
        help: "segment-map versions made authoritative at an epoch boundary",
    },
    NameDef {
        name: "rebalance.migration_us",
        kind: NameKind::Timer,
        help: "wall time to copy one migrating range to its target node",
    },
    NameDef {
        name: "rebalance.migrations",
        kind: NameKind::Counter,
        help: "rebalance range copies landed durably",
    },
    NameDef {
        name: "rebalance.migrations_skipped",
        kind: NameKind::Counter,
        help: "migrations skipped on resume because an earlier run landed them",
    },
    NameDef {
        name: "rebalance.node_adds",
        kind: NameKind::Counter,
        help: "nodes added to the cluster online",
    },
    NameDef {
        name: "rebalance.node_removes",
        kind: NameKind::Counter,
        help: "member nodes drained and retired online",
    },
    NameDef {
        name: "rebalance.resumes",
        kind: NameKind::Counter,
        help: "interrupted rebalance plans resumed",
    },
    NameDef {
        name: "rebalance.rows_copied",
        kind: NameKind::Counter,
        help: "rows copied by rebalance migrations",
    },
    NameDef {
        name: RETRY_ATTEMPT,
        kind: NameKind::Span,
        help: "span for one attempt inside a retry/failover loop",
    },
    NameDef {
        name: "retry.attempts",
        kind: NameKind::Counter,
        help: "retry attempts after a transient failure",
    },
    NameDef {
        name: "retry.backoff_us",
        kind: NameKind::Timer,
        help: "backoff sleeps between retry attempts",
    },
    NameDef {
        name: RETRY_GAVE_UP,
        kind: NameKind::Counter,
        help: "retry loops that gave up",
    },
    NameDef {
        name: "retry.recovered",
        kind: NameKind::Counter,
        help: "operations that succeeded after at least one retry",
    },
    NameDef {
        name: "s2v.final_commits",
        kind: NameKind::Counter,
        help: "S2V final commit transactions",
    },
    NameDef {
        name: S2V_FINALIZE,
        kind: NameKind::Span,
        help: "span and op tag for the S2V finalize step",
    },
    NameDef {
        name: "s2v.job",
        kind: NameKind::Span,
        help: "root span of one S2V save job",
    },
    NameDef {
        name: "s2v.jobs",
        kind: NameKind::Counter,
        help: "S2V save jobs run",
    },
    NameDef {
        name: "s2v.phase1",
        kind: NameKind::Span,
        help: "span and op tag for S2V phase 1 (save into staging)",
    },
    NameDef {
        name: "s2v.phase1_us",
        kind: NameKind::Timer,
        help: "S2V phase 1 wall time",
    },
    NameDef {
        name: "s2v.phase2",
        kind: NameKind::Span,
        help: "span and op tag for S2V phase 2 (staging validation)",
    },
    NameDef {
        name: "s2v.phase2_us",
        kind: NameKind::Timer,
        help: "S2V phase 2 wall time",
    },
    NameDef {
        name: "s2v.phase3",
        kind: NameKind::Span,
        help: "span and op tag for S2V phase 3 (swap into target)",
    },
    NameDef {
        name: "s2v.phase3_us",
        kind: NameKind::Timer,
        help: "S2V phase 3 wall time",
    },
    NameDef {
        name: "s2v.phase4",
        kind: NameKind::Span,
        help: "span and op tag for S2V phase 4 (commit fan-in)",
    },
    NameDef {
        name: "s2v.phase4_us",
        kind: NameKind::Timer,
        help: "S2V phase 4 wall time",
    },
    NameDef {
        name: "s2v.phase5",
        kind: NameKind::Span,
        help: "span and op tag for S2V phase 5 (cleanup)",
    },
    NameDef {
        name: "s2v.phase5_us",
        kind: NameKind::Timer,
        help: "S2V phase 5 wall time",
    },
    NameDef {
        name: "s2v.rows_loaded",
        kind: NameKind::Counter,
        help: "rows loaded by S2V saves",
    },
    NameDef {
        name: "s2v.rows_rejected",
        kind: NameKind::Counter,
        help: "rows rejected by S2V saves",
    },
    NameDef {
        name: "s2v.save_us",
        kind: NameKind::Timer,
        help: "end-to-end S2V save wall time",
    },
    NameDef {
        name: S2V_SETUP,
        kind: NameKind::Span,
        help: "span and op tag for S2V setup (target/staging table DDL)",
    },
    NameDef {
        name: "s2v.teardown",
        kind: NameKind::Span,
        help: "span and op tag for S2V staging teardown",
    },
    NameDef {
        name: "scan.containers_skipped",
        kind: NameKind::Counter,
        help: "whole ROS containers skipped by zone-map pruning",
    },
    NameDef {
        name: "scan.rows_examined",
        kind: NameKind::Counter,
        help: "rows visibility-checked by columnar scans",
    },
    NameDef {
        name: "scan.rows_skipped",
        kind: NameKind::Counter,
        help: "rows eliminated by zone maps and RLE-run pruning without evaluation",
    },
    NameDef {
        name: "scan.values_decoded",
        kind: NameKind::Counter,
        help: "column values decoded by columnar scans",
    },
    NameDef {
        name: "sched.jobs",
        kind: NameKind::Counter,
        help: "jobs submitted to the scheduler",
    },
    NameDef {
        name: "sched.jobs_killed",
        kind: NameKind::Counter,
        help: "jobs killed before completion",
    },
    NameDef {
        name: "sched.slot_wait_us",
        kind: NameKind::Timer,
        help: "time a task waited for a worker slot",
    },
    NameDef {
        name: SCHED_SPECULATIVE_TASKS,
        kind: NameKind::Counter,
        help: "speculative straggler duplicates launched",
    },
    NameDef {
        name: "sched.stragglers_detected",
        kind: NameKind::Counter,
        help: "tasks flagged as stragglers by the watchdog",
    },
    NameDef {
        name: "sched.task",
        kind: NameKind::Span,
        help: "span for one scheduler task attempt",
    },
    NameDef {
        name: "sched.task_retries",
        kind: NameKind::Counter,
        help: "task attempts retried after failure",
    },
    NameDef {
        name: "sched.task_run_us",
        kind: NameKind::Timer,
        help: "task execution wall time",
    },
    NameDef {
        name: "sched.tasks_finished",
        kind: NameKind::Counter,
        help: "task attempts finished successfully",
    },
    NameDef {
        name: "sched.tasks_launched",
        kind: NameKind::Counter,
        help: "task attempts launched",
    },
    NameDef {
        name: "shed.queue_full",
        kind: NameKind::Counter,
        help: "statements shed because the pool queue was full",
    },
    NameDef {
        name: "shed.timeout",
        kind: NameKind::Counter,
        help: "statements shed after waiting past the queue timeout",
    },
    NameDef {
        name: "shed.total",
        kind: NameKind::Counter,
        help: "all statements shed by admission control",
    },
    NameDef {
        name: "stats.build_us",
        kind: NameKind::Timer,
        help: "time to compute per-container column statistics at ROS creation",
    },
    NameDef {
        name: "stream.age_flushes",
        kind: NameKind::Counter,
        help: "streaming micro-batches flushed by the flush_ms age limit rather than batch_rows",
    },
    NameDef {
        name: "stream.batch_us",
        kind: NameKind::Timer,
        help: "wall time to flush one streaming micro-batch through the COPY protocol",
    },
    NameDef {
        name: "stream.batches",
        kind: NameKind::Counter,
        help: "streaming micro-batches committed",
    },
    NameDef {
        name: "stream.rows",
        kind: NameKind::Counter,
        help: "rows loaded via streaming micro-batches",
    },
    NameDef {
        name: "tm.containers_merged",
        kind: NameKind::Counter,
        help: "ROS containers consumed by tuple-mover mergeout",
    },
    NameDef {
        name: "tm.mergeout_runs",
        kind: NameKind::Counter,
        help: "tuple-mover mergeout operations performed",
    },
    NameDef {
        name: "tm.mergeout_us",
        kind: NameKind::Timer,
        help: "time spent compacting ROS containers in one mergeout",
    },
    NameDef {
        name: "tm.moveout_runs",
        kind: NameKind::Counter,
        help: "tuple-mover moveout operations performed",
    },
    NameDef {
        name: "tm.moveout_us",
        kind: NameKind::Timer,
        help: "time spent draining committed WOS rows in one moveout",
    },
    NameDef {
        name: "tm.rows_merged",
        kind: NameKind::Counter,
        help: "rows rewritten by tuple-mover mergeout",
    },
    NameDef {
        name: "tm.rows_moved",
        kind: NameKind::Counter,
        help: "rows drained WOS to ROS by tuple-mover moveout",
    },
    NameDef {
        name: "tm.sheds",
        kind: NameKind::Counter,
        help: "tuple-mover passes shed on pool-full or busy table lock",
    },
    NameDef {
        name: "v2s.bytes",
        kind: NameKind::Counter,
        help: "bytes transferred by V2S pieces",
    },
    NameDef {
        name: V2S_CONNECT,
        kind: NameKind::Event,
        help: "op tag for V2S connect attempts",
    },
    NameDef {
        name: "v2s.load",
        kind: NameKind::Span,
        help: "root span of one V2S load (relation open through scan)",
    },
    NameDef {
        name: "v2s.map_refresh",
        kind: NameKind::Counter,
        help: "V2S segment-map refreshes after a StaleSegmentMap rejection",
    },
    NameDef {
        name: V2S_OPEN,
        kind: NameKind::Span,
        help: "span and op tag for the V2S schema/open probe",
    },
    NameDef {
        name: V2S_PIECE,
        kind: NameKind::Span,
        help: "span and op tag for per-piece V2S reads",
    },
    NameDef {
        name: "v2s.piece_bytes",
        kind: NameKind::Histo,
        help: "bytes per fetched V2S piece",
    },
    NameDef {
        name: "v2s.piece_us",
        kind: NameKind::Timer,
        help: "V2S piece fetch wall time",
    },
    NameDef {
        name: "v2s.pieces",
        kind: NameKind::Counter,
        help: "V2S pieces fetched",
    },
    NameDef {
        name: V2S_PLAN,
        kind: NameKind::Span,
        help: "span and op tag for V2S partition planning",
    },
    NameDef {
        name: "v2s.query",
        kind: NameKind::Event,
        help: "op tag for one-shot V2S queries",
    },
    NameDef {
        name: "v2s.rows",
        kind: NameKind::Counter,
        help: "rows transferred by V2S pieces",
    },
];

/// Look up a registered name exactly.
pub fn lookup(name: &str) -> Option<&'static NameDef> {
    DEFS.iter().find(|d| d.name == name)
}

/// Whether `name` is registered, accepting the six derived spellings a
/// timer contributes to `dc_counters` (`<timer>.p99_us`, ...).
pub fn is_registered(name: &str) -> bool {
    if lookup(name).is_some() {
        return true;
    }
    for suffix in [
        ".count", ".sum_us", ".min_us", ".max_us", ".p50_us", ".p99_us",
    ] {
        if let Some(base) = name.strip_suffix(suffix) {
            return matches!(lookup(base), Some(d) if d.kind == NameKind::Timer);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sorted order keeps diffs reviewable and makes duplicates obvious;
    /// uniqueness is what the dedupe guarantee rests on.
    #[test]
    fn defs_are_sorted_and_unique() {
        for pair in DEFS.windows(2) {
            assert!(
                pair[0].name < pair[1].name,
                "DEFS out of order or duplicated: {:?} then {:?}",
                pair[0].name,
                pair[1].name
            );
        }
    }

    #[test]
    fn lookup_and_derived_timer_names_resolve() {
        assert_eq!(
            lookup(RETRY_GAVE_UP).map(|d| d.kind),
            Some(NameKind::Counter)
        );
        assert!(is_registered("s2v.save_us"));
        assert!(is_registered("s2v.save_us.p99_us"));
        assert!(!is_registered("s2v.save_us.p98_us"));
        assert!(!is_registered("hedge.winz"));
        // Derived suffixes only apply to timers, not counters.
        assert!(!is_registered("hedge.wins.count"));
    }

    #[test]
    fn every_def_has_help_text() {
        for d in DEFS {
            assert!(!d.help.is_empty(), "{} has no help text", d.name);
        }
    }
}
