//! Distributed tracing: span trees with explicit, by-value context.
//!
//! A *trace* is one job-scoped tree of *spans*. Every span knows its
//! trace, its parent, a registered name, wall-clock bounds from the
//! collector's monotonic clock, and a small fixed tag set (node, task,
//! attempt, rows, bytes, failed, detail) — the same vocabulary as
//! [`crate::Event`], so `dc_spans` rows read like `dc_events` rows with
//! ancestry.
//!
//! Context travels **by value**: a [`TraceCtx`] is a 16-byte `Copy`
//! struct handed down call chains and across threads as an ordinary
//! argument. No thread-locals — the fabric moves work between threads
//! constantly (scheduler slots, hedged-read buddies, retry attempts),
//! and TLS would silently re-parent spans whenever a closure migrated.
//! A `TraceCtx` is also the *null* propagation token: [`TraceCtx::NONE`]
//! (trace id 0) flows through untraced call paths and turns every span
//! operation downstream into a cheap no-op, so instrumented code never
//! branches on "am I being traced".
//!
//! Span ids are allocated sequentially per trace under the trace-store
//! lock — no ambient entropy, so a single-threaded replay yields
//! identical ids and concurrent replays yield identical *shapes* (see
//! [`shape_digest`], which canonicalizes child order).
//!
//! The analysis helpers ([`critical_path`], [`render`], [`validate`])
//! work on a plain `Vec<SpanRecord>` snapshot, so they can run against
//! a live collector, a `dc_spans` dump, or a hand-built fixture.

use std::collections::HashMap;

/// Identifies one trace (one job). Id 0 is reserved for "not traced".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

/// Identifies one span within its trace. Ids start at 1 (the root).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

/// The propagation token: which trace we are in and which span is the
/// current parent. Passed by value through every layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    pub trace: TraceId,
    pub span: SpanId,
}

impl TraceCtx {
    /// The null context: all span operations through it are no-ops.
    pub const NONE: TraceCtx = TraceCtx {
        trace: TraceId(0),
        span: SpanId(0),
    };

    pub fn is_none(self) -> bool {
        self.trace.0 == 0
    }

    pub fn is_some(self) -> bool {
        !self.is_none()
    }
}

impl Default for TraceCtx {
    fn default() -> TraceCtx {
        TraceCtx::NONE
    }
}

/// One finished-or-in-flight span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    pub trace: TraceId,
    pub span: SpanId,
    /// Parent span within the same trace; `None` only for the root.
    pub parent: Option<SpanId>,
    pub name: &'static str,
    /// Microseconds since the collector was created.
    pub start_us: u64,
    /// Set by `span_finish`; `None` marks an unclosed span.
    pub end_us: Option<u64>,
    /// Database or executor node, when known.
    pub node: Option<u64>,
    /// Task / partition index, when known.
    pub task: Option<u64>,
    /// 1-based attempt number (0 = not an attempt-scoped span).
    pub attempt: u32,
    pub rows: u64,
    pub bytes: u64,
    /// The operation under this span failed (it may have been retried
    /// by a sibling attempt).
    pub failed: bool,
    /// Free-form detail (phase label, error class, winner/loser, ...).
    pub detail: String,
}

impl SpanRecord {
    /// Span duration in microseconds; 0 while unclosed.
    pub fn dur_us(&self) -> u64 {
        self.end_us
            .map(|e| e.saturating_sub(self.start_us))
            .unwrap_or(0)
    }
}

/// Retained traces before the oldest is evicted.
const MAX_TRACES: usize = 128;

/// Spans retained per trace; further `span_start`s return
/// [`TraceCtx::NONE`] and count as dropped.
const MAX_SPANS_PER_TRACE: usize = 8_192;

/// Collector-internal store of live and recently finished traces.
#[derive(Debug, Default)]
pub(crate) struct TraceStore {
    next_trace: u64,
    /// Trace ids in creation order (eviction order).
    order: std::collections::VecDeque<u64>,
    traces: HashMap<u64, TraceBuf>,
    pub(crate) dropped_spans: u64,
}

#[derive(Debug)]
struct TraceBuf {
    next_span: u64,
    /// Sorted by span id: ids are allocated and pushed under one lock.
    spans: Vec<SpanRecord>,
}

impl TraceStore {
    pub(crate) fn start_trace(&mut self, name: &'static str, start_us: u64) -> TraceCtx {
        self.next_trace += 1;
        let trace = TraceId(self.next_trace);
        if self.order.len() >= MAX_TRACES {
            if let Some(old) = self.order.pop_front() {
                self.traces.remove(&old);
            }
        }
        self.order.push_back(trace.0);
        let root = SpanId(1);
        self.traces.insert(
            trace.0,
            TraceBuf {
                next_span: 2,
                spans: vec![blank(trace, root, None, name, start_us)],
            },
        );
        TraceCtx { trace, span: root }
    }

    pub(crate) fn start_span(
        &mut self,
        name: &'static str,
        parent: TraceCtx,
        start_us: u64,
    ) -> TraceCtx {
        let Some(buf) = self.traces.get_mut(&parent.trace.0) else {
            // Trace evicted (or forged ctx): drop silently.
            self.dropped_spans += 1;
            return TraceCtx::NONE;
        };
        if buf.spans.len() >= MAX_SPANS_PER_TRACE {
            self.dropped_spans += 1;
            return TraceCtx::NONE;
        }
        let span = SpanId(buf.next_span);
        buf.next_span += 1;
        buf.spans
            .push(blank(parent.trace, span, Some(parent.span), name, start_us));
        TraceCtx {
            trace: parent.trace,
            span,
        }
    }

    /// Close a span, returning `(name, dur_us)` so the collector can
    /// feed the per-span-name histogram outside the store lock.
    pub(crate) fn finish_span(
        &mut self,
        ctx: TraceCtx,
        end_us: u64,
        fill: impl FnOnce(&mut SpanRecord),
    ) -> Option<(&'static str, u64)> {
        let buf = self.traces.get_mut(&ctx.trace.0)?;
        let idx = buf
            .spans
            .binary_search_by_key(&ctx.span.0, |s| s.span.0)
            .ok()?;
        let span = &mut buf.spans[idx];
        if span.end_us.is_some() {
            return None; // double-finish: keep the first close
        }
        span.end_us = Some(end_us.max(span.start_us));
        fill(span);
        Some((span.name, span.dur_us()))
    }

    pub(crate) fn spans_of(&self, trace: TraceId) -> Vec<SpanRecord> {
        self.traces
            .get(&trace.0)
            .map(|b| b.spans.clone())
            .unwrap_or_default()
    }

    /// All retained spans, grouped by trace in creation order.
    pub(crate) fn all_spans(&self) -> Vec<SpanRecord> {
        let mut out = Vec::new();
        for id in &self.order {
            if let Some(buf) = self.traces.get(id) {
                out.extend(buf.spans.iter().cloned());
            }
        }
        out
    }

    pub(crate) fn trace_ids(&self) -> Vec<TraceId> {
        self.order.iter().map(|&id| TraceId(id)).collect()
    }

    pub(crate) fn clear(&mut self) {
        self.order.clear();
        self.traces.clear();
        self.dropped_spans = 0;
        // next_trace keeps counting: trace ids stay unique for the
        // process lifetime so stale TraceCtx values cannot alias a
        // post-clear trace.
    }
}

fn blank(
    trace: TraceId,
    span: SpanId,
    parent: Option<SpanId>,
    name: &'static str,
    start_us: u64,
) -> SpanRecord {
    SpanRecord {
        trace,
        span,
        parent,
        name,
        start_us,
        end_us: None,
        node: None,
        task: None,
        attempt: 0,
        rows: 0,
        bytes: 0,
        failed: false,
        detail: String::new(),
    }
}

// ---------------------------------------------------------------------
// Analysis over a span snapshot.
// ---------------------------------------------------------------------

/// Structural problems [`validate`] reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceIssue {
    /// A non-root span whose parent id is absent from the snapshot.
    Orphan { span: SpanId, name: &'static str },
    /// A span that was started but never finished.
    Unclosed { span: SpanId, name: &'static str },
}

/// Check a single trace's spans for orphans and unclosed spans.
pub fn validate(spans: &[SpanRecord]) -> Vec<TraceIssue> {
    let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.span.0).collect();
    let mut issues = Vec::new();
    for s in spans {
        if let Some(p) = s.parent {
            if !ids.contains(&p.0) {
                issues.push(TraceIssue::Orphan {
                    span: s.span,
                    name: s.name,
                });
            }
        }
        if s.end_us.is_none() {
            issues.push(TraceIssue::Unclosed {
                span: s.span,
                name: s.name,
            });
        }
    }
    issues
}

/// Indices of `spans` forming the tree: `children[i]` lists the child
/// indices of `spans[i]`, display-ordered (start time, then span id).
struct Tree {
    root: usize,
    children: Vec<Vec<usize>>,
}

fn build_tree(spans: &[SpanRecord]) -> Option<Tree> {
    let by_id: HashMap<u64, usize> = spans
        .iter()
        .enumerate()
        .map(|(i, s)| (s.span.0, i))
        .collect();
    let mut root = None;
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    for (i, s) in spans.iter().enumerate() {
        match s.parent {
            None => root = Some(i),
            Some(p) => {
                if let Some(&pi) = by_id.get(&p.0) {
                    children[pi].push(i);
                }
                // Orphans are surfaced by `validate`, not rendered.
            }
        }
    }
    for kids in &mut children {
        kids.sort_by_key(|&i| (spans[i].start_us, spans[i].span.0));
    }
    root.map(|root| Tree { root, children })
}

/// A canonical digest of the tree *shape*: names, tags, and ancestry,
/// with children sorted by stable keys and all ids and times erased.
/// Two runs of the same seeded workload must produce equal digests even
/// though span ids and wall-times differ run to run.
pub fn shape_digest(spans: &[SpanRecord]) -> String {
    fn node(spans: &[SpanRecord], tree: &Tree, i: usize, out: &mut String) {
        let s = &spans[i];
        out.push_str(s.name);
        if let Some(t) = s.task {
            out.push_str(&format!("#t{t}"));
        }
        if s.attempt > 0 {
            out.push_str(&format!("#a{}", s.attempt));
        }
        if s.failed {
            out.push_str("#failed");
        }
        let mut kids = tree.children[i].clone();
        kids.sort_by(|&a, &b| {
            let (a, b) = (&spans[a], &spans[b]);
            (a.name, a.task, a.attempt, a.node, a.span.0)
                .cmp(&(b.name, b.task, b.attempt, b.node, b.span.0))
        });
        if !kids.is_empty() {
            out.push('(');
            for (n, k) in kids.into_iter().enumerate() {
                if n > 0 {
                    out.push(' ');
                }
                node(spans, tree, k, out);
            }
            out.push(')');
        }
    }
    let mut out = String::new();
    if let Some(tree) = build_tree(spans) {
        node(spans, &tree, tree.root, &mut out);
    }
    out
}

/// One hop of a critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalStep {
    pub span: SpanId,
    pub name: &'static str,
    pub node: Option<u64>,
    pub task: Option<u64>,
    pub attempt: u32,
    pub failed: bool,
    /// Microseconds attributed exclusively to this hop: its duration
    /// minus the duration of the next hop down the path.
    pub self_us: u64,
}

/// Walk a finished trace from the root, at each level descending into
/// the child that finishes last (the chain the job actually waited
/// on), and attribute each hop the time its own level added. Ties
/// break on later start, then higher span id. The step durations sum
/// to the root duration whenever children nest inside their parents.
pub fn critical_path(spans: &[SpanRecord]) -> Vec<CriticalStep> {
    let Some(tree) = build_tree(spans) else {
        return Vec::new();
    };
    let mut path = vec![tree.root];
    let mut cur = tree.root;
    loop {
        let next = tree.children[cur]
            .iter()
            .copied()
            .filter(|&i| spans[i].end_us.is_some())
            .max_by_key(|&i| (spans[i].end_us, spans[i].start_us, spans[i].span.0));
        match next {
            Some(n) => {
                path.push(n);
                cur = n;
            }
            None => break,
        }
    }
    path.iter()
        .enumerate()
        .map(|(depth, &i)| {
            let s = &spans[i];
            let child_dur = path.get(depth + 1).map(|&c| spans[c].dur_us()).unwrap_or(0);
            CriticalStep {
                span: s.span,
                name: s.name,
                node: s.node,
                task: s.task,
                attempt: s.attempt,
                failed: s.failed,
                self_us: s.dur_us().saturating_sub(child_dur),
            }
        })
        .collect()
}

/// The critical path as one line — what `dc_trace_summary` shows:
/// hops ordered by attributed time, each with its share of the root
/// duration, e.g. `78% s2v.phase3 (node 2, attempt 2)`.
pub fn critical_path_text(spans: &[SpanRecord]) -> String {
    let steps = critical_path(spans);
    let total: u64 = steps.iter().map(|s| s.self_us).sum();
    let mut ranked: Vec<&CriticalStep> = steps.iter().collect();
    ranked.sort_by_key(|s| std::cmp::Reverse((s.self_us, s.span.0)));
    let mut out = String::new();
    for (n, s) in ranked.iter().take(4).enumerate() {
        if n > 0 {
            out.push_str(" > ");
        }
        let pct = (s.self_us * 100 + total / 2)
            .checked_div(total)
            .unwrap_or(0);
        out.push_str(&format!("{pct}% {}", s.name));
        let mut tags = Vec::new();
        if let Some(node) = s.node {
            tags.push(format!("node {node}"));
        }
        if s.attempt > 0 {
            tags.push(format!("attempt {}", s.attempt));
        }
        if s.failed {
            tags.push("failed".to_string());
        }
        if !tags.is_empty() {
            out.push_str(&format!(" ({})", tags.join(", ")));
        }
    }
    out
}

/// Render one trace as an indented text tree (a textual flamegraph):
/// every span with its duration, tags, and ancestry, followed by the
/// critical-path line.
pub fn render(spans: &[SpanRecord]) -> String {
    fn fmt_us(us: u64) -> String {
        if us >= 1_000 {
            format!("{}.{}ms", us / 1_000, (us % 1_000) / 100)
        } else {
            format!("{us}us")
        }
    }
    fn line(s: &SpanRecord) -> String {
        let mut out = format!("{} {}", s.name, fmt_us(s.dur_us()));
        if let Some(t) = s.task {
            out.push_str(&format!(" task {t}"));
        }
        if s.attempt > 0 {
            out.push_str(&format!(" attempt {}", s.attempt));
        }
        if let Some(n) = s.node {
            out.push_str(&format!(" node {n}"));
        }
        if s.rows > 0 {
            out.push_str(&format!(" rows {}", s.rows));
        }
        if s.failed {
            out.push_str(" FAILED");
        }
        if s.end_us.is_none() {
            out.push_str(" UNCLOSED");
        }
        if !s.detail.is_empty() {
            out.push_str(&format!(" [{}]", s.detail));
        }
        out
    }
    fn walk(
        spans: &[SpanRecord],
        tree: &Tree,
        i: usize,
        prefix: &str,
        root: bool,
        last: bool,
        out: &mut String,
    ) {
        let (branch, cont) = if root {
            ("", "")
        } else if last {
            ("`- ", "   ")
        } else {
            ("|- ", "|  ")
        };
        out.push_str(prefix);
        out.push_str(branch);
        out.push_str(&line(&spans[i]));
        out.push('\n');
        let kids = &tree.children[i];
        for (n, &k) in kids.iter().enumerate() {
            let child_prefix = format!("{prefix}{cont}");
            walk(
                spans,
                tree,
                k,
                &child_prefix,
                false,
                n + 1 == kids.len(),
                out,
            );
        }
    }
    let Some(tree) = build_tree(spans) else {
        return String::from("(empty trace)\n");
    };
    let mut out = String::new();
    out.push_str(&format!("trace {}\n", spans[tree.root].trace.0));
    walk(spans, &tree, tree.root, "", true, true, &mut out);
    out.push_str(&format!("critical path: {}\n", critical_path_text(spans)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        id: u64,
        parent: Option<u64>,
        name: &'static str,
        start: u64,
        end: Option<u64>,
    ) -> SpanRecord {
        SpanRecord {
            trace: TraceId(1),
            span: SpanId(id),
            parent: parent.map(SpanId),
            name,
            start_us: start,
            end_us: end,
            node: None,
            task: None,
            attempt: 0,
            rows: 0,
            bytes: 0,
            failed: false,
            detail: String::new(),
        }
    }

    #[test]
    fn validate_finds_orphans_and_unclosed() {
        let spans = vec![
            span(1, None, "root", 0, Some(100)),
            span(2, Some(1), "ok", 10, Some(20)),
            span(3, Some(99), "lost", 10, Some(20)),
            span(4, Some(1), "open", 30, None),
        ];
        let issues = validate(&spans);
        assert!(issues.contains(&TraceIssue::Orphan {
            span: SpanId(3),
            name: "lost"
        }));
        assert!(issues.contains(&TraceIssue::Unclosed {
            span: SpanId(4),
            name: "open"
        }));
        assert_eq!(issues.len(), 2);
    }

    #[test]
    fn critical_path_follows_latest_finisher_and_sums_to_root() {
        // root [0,100]; fast child [0,30]; slow child [10,90] with its
        // own child [20,80].
        let spans = vec![
            span(1, None, "root", 0, Some(100)),
            span(2, Some(1), "fast", 0, Some(30)),
            span(3, Some(1), "slow", 10, Some(90)),
            span(4, Some(3), "inner", 20, Some(80)),
        ];
        let path = critical_path(&spans);
        let names: Vec<_> = path.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["root", "slow", "inner"]);
        assert_eq!(path.iter().map(|s| s.self_us).sum::<u64>(), 100);
        assert_eq!(path[0].self_us, 20); // 100 - 80
        assert_eq!(path[1].self_us, 20); // 80 - 60
        assert_eq!(path[2].self_us, 60);
        let text = critical_path_text(&spans);
        assert!(text.starts_with("60% inner"), "{text}");
    }

    #[test]
    fn shape_digest_ignores_ids_times_and_sibling_order() {
        let mut a = vec![
            span(1, None, "root", 0, Some(100)),
            span(2, Some(1), "x", 0, Some(10)),
            span(3, Some(1), "y", 5, Some(20)),
        ];
        a[1].task = Some(0);
        a[2].task = Some(1);
        // Same logical tree, different ids, times, and arrival order.
        let mut b = vec![
            span(7, None, "root", 1000, Some(1500)),
            span(9, Some(7), "y", 1100, Some(1200)),
            span(8, Some(7), "x", 1400, Some(1450)),
        ];
        b[1].task = Some(1);
        b[2].task = Some(0);
        assert_eq!(shape_digest(&a), shape_digest(&b));
        // But a failure tag changes the shape.
        let mut c = a.clone();
        c[2].failed = true;
        assert_ne!(shape_digest(&a), shape_digest(&c));
    }

    #[test]
    fn render_shows_tree_and_tags() {
        let mut spans = vec![
            span(1, None, "s2v.job", 0, Some(5000)),
            span(2, Some(1), "s2v.phase1", 100, Some(2100)),
        ];
        spans[1].node = Some(2);
        spans[1].attempt = 2;
        spans[1].failed = true;
        let text = render(&spans);
        assert!(text.contains("s2v.job 5.0ms"), "{text}");
        // Children carry branch prefixes; only the root is flush-left.
        assert!(
            text.contains("`- s2v.phase1 2.0ms attempt 2 node 2 FAILED"),
            "{text}"
        );
        assert!(text.contains("critical path:"), "{text}");
    }

    #[test]
    fn render_indents_nested_children() {
        let spans = vec![
            span(1, None, "s2v.job", 0, Some(5000)),
            span(2, Some(1), "sched.task", 100, Some(2100)),
            span(3, Some(2), "s2v.phase1", 200, Some(900)),
            span(4, Some(2), "s2v.phase2", 900, Some(2000)),
            span(5, Some(1), "s2v.teardown", 2100, Some(2200)),
        ];
        let text = render(&spans);
        assert!(text.contains("|- sched.task"), "{text}");
        assert!(text.contains("|  |- s2v.phase1"), "{text}");
        assert!(text.contains("|  `- s2v.phase2"), "{text}");
        assert!(text.contains("`- s2v.teardown"), "{text}");
    }
}
