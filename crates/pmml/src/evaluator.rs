//! Model evaluators — the "generic model evaluator for models whose
//! input is a numeric vector and the output is a number" of Sec. 3.3.

use common::error::{Error, Result};

use crate::model::{MiningFunction, NormalizationMethod, PmmlDocument, PmmlModel};

/// An executable form of a parsed PMML document.
///
/// All supported models take a numeric feature vector and produce a
/// number: the regression value, the positive-class probability (logit
/// models), or the nearest cluster index. This matches the scoring UDF
/// contract the paper's `PMMLPredict` exposes to SQL.
#[derive(Debug, Clone)]
pub struct Evaluator {
    inputs: Vec<String>,
    kind: EvalKind,
}

#[derive(Debug, Clone)]
enum EvalKind {
    Regression {
        intercept: f64,
        coefficients: Vec<f64>,
        normalization: NormalizationMethod,
        classification: bool,
    },
    Clustering {
        centers: Vec<Vec<f64>>,
    },
}

impl Evaluator {
    pub fn from_document(doc: &PmmlDocument) -> Result<Evaluator> {
        match &doc.model {
            PmmlModel::Regression(m) => Ok(Evaluator {
                inputs: m.coefficients.iter().map(|(n, _)| n.clone()).collect(),
                kind: EvalKind::Regression {
                    intercept: m.intercept,
                    coefficients: m.coefficients.iter().map(|(_, c)| *c).collect(),
                    normalization: m.normalization,
                    classification: m.function == MiningFunction::Classification,
                },
            }),
            PmmlModel::Clustering(m) => {
                if m.clusters.is_empty() {
                    return Err(Error::Eval("clustering model has no clusters".into()));
                }
                Ok(Evaluator {
                    inputs: m.fields.clone(),
                    kind: EvalKind::Clustering {
                        centers: m.clusters.iter().map(|(_, c)| c.clone()).collect(),
                    },
                })
            }
        }
    }

    /// Parse a PMML XML string and build its evaluator.
    pub fn from_xml(xml: &str) -> Result<Evaluator> {
        Evaluator::from_document(&PmmlDocument::from_xml(xml)?)
    }

    /// Input field names, in the order `predict` expects them.
    pub fn input_fields(&self) -> &[String] {
        &self.inputs
    }

    /// Score a feature vector.
    pub fn predict(&self, features: &[f64]) -> Result<f64> {
        if features.len() != self.inputs.len() {
            return Err(Error::Eval(format!(
                "model expects {} features, got {}",
                self.inputs.len(),
                features.len()
            )));
        }
        Ok(match &self.kind {
            EvalKind::Regression {
                intercept,
                coefficients,
                normalization,
                ..
            } => {
                let score = intercept
                    + coefficients
                        .iter()
                        .zip(features)
                        .map(|(c, x)| c * x)
                        .sum::<f64>();
                match normalization {
                    NormalizationMethod::None => score,
                    NormalizationMethod::Logit => 1.0 / (1.0 + (-score).exp()),
                }
            }
            EvalKind::Clustering { centers } => {
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for (i, center) in centers.iter().enumerate() {
                    let d: f64 = center
                        .iter()
                        .zip(features)
                        .map(|(c, x)| (c - x) * (c - x))
                        .sum();
                    if d < best_d {
                        best_d = d;
                        best = i;
                    }
                }
                best as f64
            }
        })
    }

    /// Binary class decision for classification models: probability
    /// thresholded at 0.5. Errors for non-classification models.
    pub fn predict_class(&self, features: &[f64]) -> Result<bool> {
        match &self.kind {
            EvalKind::Regression {
                classification: true,
                ..
            } => Ok(self.predict(features)? >= 0.5),
            _ => Err(Error::Eval(
                "predict_class requires a classification model".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ClusteringModel, RegressionModel};

    fn linear_doc() -> PmmlDocument {
        PmmlDocument::new(
            "m",
            "test",
            PmmlModel::Regression(RegressionModel {
                function: MiningFunction::Regression,
                normalization: NormalizationMethod::None,
                intercept: 1.0,
                coefficients: vec![("a".into(), 2.0), ("b".into(), -1.0)],
                target: "y".into(),
            }),
        )
    }

    #[test]
    fn linear_regression_prediction() {
        let e = Evaluator::from_document(&linear_doc()).unwrap();
        assert_eq!(e.predict(&[3.0, 4.0]).unwrap(), 1.0 + 6.0 - 4.0);
        assert_eq!(e.input_fields(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn logistic_prediction_is_probability() {
        let doc = PmmlDocument::new(
            "m",
            "test",
            PmmlModel::Regression(RegressionModel {
                function: MiningFunction::Classification,
                normalization: NormalizationMethod::Logit,
                intercept: 0.0,
                coefficients: vec![("x".into(), 1.0)],
                target: "label".into(),
            }),
        );
        let e = Evaluator::from_document(&doc).unwrap();
        let p0 = e.predict(&[0.0]).unwrap();
        assert!((p0 - 0.5).abs() < 1e-12);
        let p_hi = e.predict(&[10.0]).unwrap();
        assert!(p_hi > 0.999);
        assert!(e.predict_class(&[10.0]).unwrap());
        assert!(!e.predict_class(&[-10.0]).unwrap());
    }

    #[test]
    fn clustering_prediction_nearest_center() {
        let doc = PmmlDocument::new(
            "m",
            "test",
            PmmlModel::Clustering(ClusteringModel {
                fields: vec!["a".into(), "b".into()],
                clusters: vec![
                    ("c0".into(), vec![0.0, 0.0]),
                    ("c1".into(), vec![10.0, 10.0]),
                ],
            }),
        );
        let e = Evaluator::from_document(&doc).unwrap();
        assert_eq!(e.predict(&[1.0, 1.0]).unwrap(), 0.0);
        assert_eq!(e.predict(&[9.0, 8.0]).unwrap(), 1.0);
    }

    #[test]
    fn arity_checked() {
        let e = Evaluator::from_document(&linear_doc()).unwrap();
        assert!(e.predict(&[1.0]).is_err());
        assert!(e.predict(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn predict_class_requires_classification() {
        let e = Evaluator::from_document(&linear_doc()).unwrap();
        assert!(e.predict_class(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn xml_round_trip_to_evaluator() {
        let xml = linear_doc().to_xml();
        let e = Evaluator::from_xml(&xml).unwrap();
        assert_eq!(e.predict(&[1.0, 1.0]).unwrap(), 2.0);
    }
}
