//! PMML (Predictive Model Markup Language) support — a mini-JPMML.
//!
//! The paper's MD component (Sec. 3.3) exports models trained in the
//! compute engine's ML library as PMML, deploys the documents into the
//! database's internal DFS, and evaluates them from SQL via a generic
//! scoring UDF whose input is a numeric vector and whose output is a
//! number. This crate provides everything that requires:
//!
//! * a small XML writer and parser ([`xml`]),
//! * the PMML document model ([`model`]): header, data dictionary, and
//!   the model families the paper names — regression (linear & logistic)
//!   and clustering (k-means),
//! * evaluators ([`evaluator`]) that re-execute a parsed document.

pub mod evaluator;
pub mod model;
pub mod xml;

pub use evaluator::Evaluator;
pub use model::{
    ClusteringModel, DataField, MiningFunction, NormalizationMethod, PmmlDocument, PmmlModel,
    RegressionModel,
};
