//! The PMML document model and its XML (de)serialization.
//!
//! We target the PMML 4.1 general structure the paper cites: a `PMML`
//! root with `Header` and `DataDictionary`, followed by one model
//! element. Two model families cover what the paper's pipeline exports:
//! `RegressionModel` (linear regression, and binary logistic regression
//! via the logit normalization method) and `ClusteringModel` (k-means
//! with squared Euclidean comparison).

use common::error::{Error, Result};

use crate::xml::{parse, XmlElement};

/// PMML mining functions used by the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MiningFunction {
    Regression,
    Classification,
    Clustering,
}

impl MiningFunction {
    fn pmml_name(&self) -> &'static str {
        match self {
            MiningFunction::Regression => "regression",
            MiningFunction::Classification => "classification",
            MiningFunction::Clustering => "clustering",
        }
    }

    fn from_pmml_name(name: &str) -> Result<MiningFunction> {
        match name {
            "regression" => Ok(MiningFunction::Regression),
            "classification" => Ok(MiningFunction::Classification),
            "clustering" => Ok(MiningFunction::Clustering),
            other => Err(Error::Parse(format!("unknown mining function {other:?}"))),
        }
    }
}

/// Output normalization for regression models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NormalizationMethod {
    #[default]
    None,
    /// Logistic link: `1 / (1 + e^-score)` — binary logistic regression.
    Logit,
}

impl NormalizationMethod {
    fn pmml_name(&self) -> &'static str {
        match self {
            NormalizationMethod::None => "none",
            NormalizationMethod::Logit => "logit",
        }
    }

    fn from_pmml_name(name: &str) -> Result<NormalizationMethod> {
        match name {
            "none" => Ok(NormalizationMethod::None),
            "logit" => Ok(NormalizationMethod::Logit),
            other => Err(Error::Parse(format!(
                "unknown normalization method {other:?}"
            ))),
        }
    }
}

/// An entry of the data dictionary.
#[derive(Debug, Clone, PartialEq)]
pub struct DataField {
    pub name: String,
    /// "continuous" or "categorical".
    pub optype: String,
    /// PMML data type name, e.g. "double".
    pub dtype: String,
}

impl DataField {
    pub fn continuous(name: impl Into<String>) -> DataField {
        DataField {
            name: name.into(),
            optype: "continuous".into(),
            dtype: "double".into(),
        }
    }
}

/// A (linear or logistic) regression model: `score = intercept +
/// Σ coefficient_i · feature_i`, optionally normalized.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionModel {
    pub function: MiningFunction,
    pub normalization: NormalizationMethod,
    pub intercept: f64,
    /// `(field name, coefficient)` pairs, in feature order.
    pub coefficients: Vec<(String, f64)>,
    /// Name of the predicted field.
    pub target: String,
}

/// A clustering model: centers compared by squared Euclidean distance.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteringModel {
    /// Feature field names, in center-coordinate order.
    pub fields: Vec<String>,
    /// `(cluster id, center coordinates)` pairs.
    pub clusters: Vec<(String, Vec<f64>)>,
}

/// The model payload of a document.
#[derive(Debug, Clone, PartialEq)]
pub enum PmmlModel {
    Regression(RegressionModel),
    Clustering(ClusteringModel),
}

impl PmmlModel {
    /// Names of the input fields in evaluation order.
    pub fn input_fields(&self) -> Vec<String> {
        match self {
            PmmlModel::Regression(m) => m.coefficients.iter().map(|(n, _)| n.clone()).collect(),
            PmmlModel::Clustering(m) => m.fields.clone(),
        }
    }

    /// A short type tag ("regression", "classification", "clustering")
    /// used as model metadata by the deployment tables.
    pub fn model_type(&self) -> &'static str {
        match self {
            PmmlModel::Regression(m) => m.function.pmml_name(),
            PmmlModel::Clustering(_) => "clustering",
        }
    }
}

/// A complete PMML document.
#[derive(Debug, Clone, PartialEq)]
pub struct PmmlDocument {
    pub version: String,
    /// Producing application name recorded in the header.
    pub application: String,
    pub model_name: String,
    pub model: PmmlModel,
}

impl PmmlDocument {
    pub fn new(
        model_name: impl Into<String>,
        application: impl Into<String>,
        model: PmmlModel,
    ) -> PmmlDocument {
        PmmlDocument {
            version: "4.1".into(),
            application: application.into(),
            model_name: model_name.into(),
            model,
        }
    }

    /// Serialize to a PMML XML document.
    pub fn to_xml(&self) -> String {
        let mut root = XmlElement::new("PMML")
            .attr("version", &self.version)
            .attr("xmlns", "http://www.dmg.org/PMML-4_1");
        root = root.child(
            XmlElement::new("Header")
                .attr("description", "fabric model export")
                .child(XmlElement::new("Application").attr("name", &self.application)),
        );

        // Data dictionary from the model's fields.
        let mut dict = XmlElement::new("DataDictionary");
        let mut fields: Vec<DataField> = self
            .model
            .input_fields()
            .into_iter()
            .map(DataField::continuous)
            .collect();
        if let PmmlModel::Regression(m) = &self.model {
            fields.push(DataField {
                name: m.target.clone(),
                optype: "continuous".into(),
                dtype: "double".into(),
            });
        }
        dict = dict.attr("numberOfFields", fields.len());
        for f in &fields {
            dict = dict.child(
                XmlElement::new("DataField")
                    .attr("name", &f.name)
                    .attr("optype", &f.optype)
                    .attr("dataType", &f.dtype),
            );
        }
        root = root.child(dict);

        root = root.child(match &self.model {
            PmmlModel::Regression(m) => regression_to_xml(&self.model_name, m),
            PmmlModel::Clustering(m) => clustering_to_xml(&self.model_name, m),
        });
        root.to_document()
    }

    /// Parse a PMML XML document.
    pub fn from_xml(xml: &str) -> Result<PmmlDocument> {
        let root = parse(xml)?;
        if root.name != "PMML" {
            return Err(Error::Parse(format!(
                "root element is <{}>, not <PMML>",
                root.name
            )));
        }
        let version = root.get_attr("version").unwrap_or("4.1").to_string();
        let application = root
            .find("Header")
            .and_then(|h| h.find("Application"))
            .and_then(|a| a.get_attr("name"))
            .unwrap_or("unknown")
            .to_string();

        if let Some(el) = root.find("RegressionModel") {
            let (name, model) = regression_from_xml(el)?;
            return Ok(PmmlDocument {
                version,
                application,
                model_name: name,
                model: PmmlModel::Regression(model),
            });
        }
        if let Some(el) = root.find("ClusteringModel") {
            let (name, model) = clustering_from_xml(el)?;
            return Ok(PmmlDocument {
                version,
                application,
                model_name: name,
                model: PmmlModel::Clustering(model),
            });
        }
        Err(Error::Parse(
            "no supported model element in PMML document".into(),
        ))
    }
}

fn mining_schema(inputs: &[String], target: Option<&str>) -> XmlElement {
    let mut schema = XmlElement::new("MiningSchema");
    for f in inputs {
        schema = schema.child(
            XmlElement::new("MiningField")
                .attr("name", f)
                .attr("usageType", "active"),
        );
    }
    if let Some(t) = target {
        schema = schema.child(
            XmlElement::new("MiningField")
                .attr("name", t)
                .attr("usageType", "predicted"),
        );
    }
    schema
}

fn regression_to_xml(model_name: &str, m: &RegressionModel) -> XmlElement {
    let inputs: Vec<String> = m.coefficients.iter().map(|(n, _)| n.clone()).collect();
    let mut table = XmlElement::new("RegressionTable").attr("intercept", m.intercept);
    if m.function == MiningFunction::Classification {
        table = table.attr("targetCategory", "1");
    }
    for (name, coef) in &m.coefficients {
        table = table.child(
            XmlElement::new("NumericPredictor")
                .attr("name", name)
                .attr("coefficient", coef),
        );
    }
    XmlElement::new("RegressionModel")
        .attr("modelName", model_name)
        .attr("functionName", m.function.pmml_name())
        .attr("normalizationMethod", m.normalization.pmml_name())
        .child(mining_schema(&inputs, Some(&m.target)))
        .child(table)
}

fn regression_from_xml(el: &XmlElement) -> Result<(String, RegressionModel)> {
    let model_name = el.get_attr("modelName").unwrap_or("model").to_string();
    let function = MiningFunction::from_pmml_name(el.require_attr("functionName")?)?;
    let normalization = match el.get_attr("normalizationMethod") {
        Some(n) => NormalizationMethod::from_pmml_name(n)?,
        None => NormalizationMethod::None,
    };
    let table = el.require("RegressionTable")?;
    let intercept = parse_f64(table.require_attr("intercept")?)?;
    let mut coefficients = Vec::new();
    for p in table.find_all("NumericPredictor") {
        coefficients.push((
            p.require_attr("name")?.to_string(),
            parse_f64(p.require_attr("coefficient")?)?,
        ));
    }
    let target = el
        .find("MiningSchema")
        .and_then(|s| {
            s.find_all("MiningField")
                .find(|f| f.get_attr("usageType") == Some("predicted"))
        })
        .and_then(|f| f.get_attr("name"))
        .unwrap_or("prediction")
        .to_string();
    Ok((
        model_name,
        RegressionModel {
            function,
            normalization,
            intercept,
            coefficients,
            target,
        },
    ))
}

fn clustering_to_xml(model_name: &str, m: &ClusteringModel) -> XmlElement {
    let mut el = XmlElement::new("ClusteringModel")
        .attr("modelName", model_name)
        .attr("functionName", "clustering")
        .attr("modelClass", "centerBased")
        .attr("numberOfClusters", m.clusters.len())
        .child(mining_schema(&m.fields, None))
        .child(
            XmlElement::new("ComparisonMeasure")
                .attr("kind", "distance")
                .child(XmlElement::new("squaredEuclidean")),
        );
    for f in &m.fields {
        el = el.child(
            XmlElement::new("ClusteringField")
                .attr("field", f)
                .attr("compareFunction", "absDiff"),
        );
    }
    for (id, center) in &m.clusters {
        let coords: Vec<String> = center.iter().map(|c| c.to_string()).collect();
        el = el.child(
            XmlElement::new("Cluster").attr("id", id).child(
                XmlElement::new("Array")
                    .attr("n", center.len())
                    .attr("type", "real")
                    .with_text(coords.join(" ")),
            ),
        );
    }
    el
}

fn clustering_from_xml(el: &XmlElement) -> Result<(String, ClusteringModel)> {
    let model_name = el.get_attr("modelName").unwrap_or("model").to_string();
    let fields: Vec<String> = el
        .find_all("ClusteringField")
        .map(|f| f.require_attr("field").map(str::to_string))
        .collect::<Result<_>>()?;
    let mut clusters = Vec::new();
    for c in el.find_all("Cluster") {
        let id = c.require_attr("id")?.to_string();
        let array = c.require("Array")?;
        let coords = array
            .text
            .split_whitespace()
            .map(parse_f64)
            .collect::<Result<Vec<_>>>()?;
        if coords.len() != fields.len() {
            return Err(Error::Parse(format!(
                "cluster {id} has {} coordinates for {} fields",
                coords.len(),
                fields.len()
            )));
        }
        clusters.push((id, coords));
    }
    if clusters.is_empty() {
        return Err(Error::Parse("clustering model has no clusters".into()));
    }
    Ok((model_name, ClusteringModel { fields, clusters }))
}

fn parse_f64(s: &str) -> Result<f64> {
    s.parse::<f64>()
        .map_err(|e| Error::Parse(format!("bad number {s:?}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear() -> PmmlDocument {
        PmmlDocument::new(
            "price_model",
            "sparklet-mllib",
            PmmlModel::Regression(RegressionModel {
                function: MiningFunction::Regression,
                normalization: NormalizationMethod::None,
                intercept: 1.5,
                coefficients: vec![("sqft".into(), 0.25), ("rooms".into(), -3.0)],
                target: "price".into(),
            }),
        )
    }

    fn logistic() -> PmmlDocument {
        PmmlDocument::new(
            "churn",
            "sparklet-mllib",
            PmmlModel::Regression(RegressionModel {
                function: MiningFunction::Classification,
                normalization: NormalizationMethod::Logit,
                intercept: -0.5,
                coefficients: vec![("x1".into(), 2.0), ("x2".into(), 0.125)],
                target: "label".into(),
            }),
        )
    }

    fn kmeans() -> PmmlDocument {
        PmmlDocument::new(
            "segments",
            "sparklet-mllib",
            PmmlModel::Clustering(ClusteringModel {
                fields: vec!["a".into(), "b".into()],
                clusters: vec![("0".into(), vec![0.0, 0.0]), ("1".into(), vec![10.0, -1.5])],
            }),
        )
    }

    #[test]
    fn regression_round_trip() {
        let doc = linear();
        let xml = doc.to_xml();
        assert!(xml.contains("functionName=\"regression\""));
        assert_eq!(PmmlDocument::from_xml(&xml).unwrap(), doc);
    }

    #[test]
    fn logistic_round_trip_keeps_logit() {
        let doc = logistic();
        let back = PmmlDocument::from_xml(&doc.to_xml()).unwrap();
        assert_eq!(back, doc);
        let PmmlModel::Regression(m) = &back.model else {
            panic!()
        };
        assert_eq!(m.normalization, NormalizationMethod::Logit);
        assert_eq!(m.function, MiningFunction::Classification);
    }

    #[test]
    fn clustering_round_trip() {
        let doc = kmeans();
        let xml = doc.to_xml();
        assert!(xml.contains("squaredEuclidean"));
        assert_eq!(PmmlDocument::from_xml(&xml).unwrap(), doc);
    }

    #[test]
    fn input_fields_order() {
        assert_eq!(linear().model.input_fields(), vec!["sqft", "rooms"]);
        assert_eq!(kmeans().model.input_fields(), vec!["a", "b"]);
    }

    #[test]
    fn model_type_tags() {
        assert_eq!(linear().model.model_type(), "regression");
        assert_eq!(logistic().model.model_type(), "classification");
        assert_eq!(kmeans().model.model_type(), "clustering");
    }

    #[test]
    fn rejects_document_without_model() {
        let xml = XmlElement::new("PMML").attr("version", "4.1").to_document();
        assert!(PmmlDocument::from_xml(&xml).is_err());
    }

    #[test]
    fn rejects_cluster_arity_mismatch() {
        let mut doc = kmeans();
        let PmmlModel::Clustering(m) = &mut doc.model else {
            panic!()
        };
        m.clusters[0].1.push(9.0);
        assert!(PmmlDocument::from_xml(&doc.to_xml()).is_err());
    }
}
