//! A small XML element model with writer and parser.
//!
//! PMML is XML; rather than pull in an XML dependency this module
//! implements the subset PMML documents need: nested elements,
//! attributes, text content, the `<?xml ?>` declaration, comments, and
//! the five standard entities.

use std::fmt::Write as _;

use common::error::{Error, Result};

/// An XML element: name, attributes, children, and (leaf) text.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct XmlElement {
    pub name: String,
    pub attrs: Vec<(String, String)>,
    pub children: Vec<XmlElement>,
    pub text: String,
}

impl XmlElement {
    pub fn new(name: impl Into<String>) -> XmlElement {
        XmlElement {
            name: name.into(),
            ..XmlElement::default()
        }
    }

    pub fn attr(mut self, name: impl Into<String>, value: impl ToString) -> XmlElement {
        self.attrs.push((name.into(), value.to_string()));
        self
    }

    pub fn child(mut self, child: XmlElement) -> XmlElement {
        self.children.push(child);
        self
    }

    pub fn with_text(mut self, text: impl Into<String>) -> XmlElement {
        self.text = text.into();
        self
    }

    /// Value of the named attribute, if present.
    pub fn get_attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Required attribute, with a descriptive error.
    pub fn require_attr(&self, name: &str) -> Result<&str> {
        self.get_attr(name).ok_or_else(|| {
            Error::Parse(format!(
                "element <{}> missing attribute {name:?}",
                self.name
            ))
        })
    }

    /// First child with the given element name.
    pub fn find(&self, name: &str) -> Option<&XmlElement> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Required child element, with a descriptive error.
    pub fn require(&self, name: &str) -> Result<&XmlElement> {
        self.find(name)
            .ok_or_else(|| Error::Parse(format!("element <{}> missing child <{name}>", self.name)))
    }

    /// All children with the given element name.
    pub fn find_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlElement> {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Serialize with an XML declaration and 2-space indentation.
    pub fn to_document(&self) -> String {
        let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        self.write_indented(&mut out, 0);
        out
    }

    fn write_indented(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attrs {
            let _ = write!(out, " {k}=\"{}\"", escape(v));
        }
        if self.children.is_empty() && self.text.is_empty() {
            out.push_str("/>\n");
            return;
        }
        out.push('>');
        if !self.text.is_empty() {
            out.push_str(&escape(&self.text));
        }
        if !self.children.is_empty() {
            out.push('\n');
            for c in &self.children {
                c.write_indented(out, depth + 1);
            }
            for _ in 0..depth {
                out.push_str("  ");
            }
        }
        let _ = writeln!(out, "</{}>", self.name);
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String> {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp..];
        let Some(semi) = after.find(';') else {
            return Err(Error::Parse("unterminated entity".into()));
        };
        match &after[..=semi] {
            "&amp;" => out.push('&'),
            "&lt;" => out.push('<'),
            "&gt;" => out.push('>'),
            "&quot;" => out.push('"'),
            "&apos;" => out.push('\''),
            other => return Err(Error::Parse(format!("unknown entity {other}"))),
        }
        rest = &after[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Parse an XML document into its root element.
pub fn parse(input: &str) -> Result<XmlElement> {
    let mut parser = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    parser.skip_prolog()?;
    let root = parser.parse_element()?;
    parser.skip_whitespace_and_comments()?;
    if parser.pos != parser.input.len() {
        return Err(Error::Parse("trailing content after root element".into()));
    }
    Ok(root)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_whitespace_and_comments(&mut self) -> Result<()> {
        loop {
            self.skip_whitespace();
            if self.starts_with("<!--") {
                let Some(end) = find_from(self.input, self.pos, b"-->") else {
                    return Err(Error::Parse("unterminated comment".into()));
                };
                self.pos = end + 3;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_prolog(&mut self) -> Result<()> {
        self.skip_whitespace();
        if self.starts_with("<?xml") {
            let Some(end) = find_from(self.input, self.pos, b"?>") else {
                return Err(Error::Parse("unterminated xml declaration".into()));
            };
            self.pos = end + 2;
        }
        self.skip_whitespace_and_comments()
    }

    fn parse_name(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b':' || c == b'.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(Error::Parse(format!("expected name at byte {}", self.pos)));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn parse_element(&mut self) -> Result<XmlElement> {
        if self.peek() != Some(b'<') {
            return Err(Error::Parse(format!("expected '<' at byte {}", self.pos)));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        let mut element = XmlElement::new(name);

        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(Error::Parse("expected '>' after '/'".into()));
                    }
                    self.pos += 1;
                    return Ok(element);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    self.skip_whitespace();
                    if self.peek() != Some(b'=') {
                        return Err(Error::Parse(format!("attribute {attr_name} missing '='")));
                    }
                    self.pos += 1;
                    self.skip_whitespace();
                    let quote = self.peek();
                    if quote != Some(b'"') && quote != Some(b'\'') {
                        return Err(Error::Parse(format!(
                            "attribute {attr_name} value not quoted"
                        )));
                    }
                    let quote = quote.unwrap();
                    self.pos += 1;
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == quote {
                            break;
                        }
                        self.pos += 1;
                    }
                    if self.peek() != Some(quote) {
                        return Err(Error::Parse(format!(
                            "unterminated value for attribute {attr_name}"
                        )));
                    }
                    let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                    self.pos += 1;
                    element.attrs.push((attr_name, unescape(&raw)?));
                }
                None => return Err(Error::Parse("unexpected end of input in tag".into())),
            }
        }

        // Content: text and child elements until the closing tag.
        let mut text = String::new();
        loop {
            if self.starts_with("<!--") {
                let Some(end) = find_from(self.input, self.pos, b"-->") else {
                    return Err(Error::Parse("unterminated comment".into()));
                };
                self.pos = end + 3;
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != element.name {
                    return Err(Error::Parse(format!(
                        "mismatched close tag: <{}> closed by </{close}>",
                        element.name
                    )));
                }
                self.skip_whitespace();
                if self.peek() != Some(b'>') {
                    return Err(Error::Parse("expected '>' in close tag".into()));
                }
                self.pos += 1;
                element.text = text.trim().to_string();
                return Ok(element);
            }
            match self.peek() {
                Some(b'<') => element.children.push(self.parse_element()?),
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'<' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                    text.push_str(&unescape(&raw)?);
                }
                None => {
                    return Err(Error::Parse(format!(
                        "unexpected end of input inside <{}>",
                        element.name
                    )))
                }
            }
        }
    }
}

fn find_from(haystack: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_serialize() {
        let doc = XmlElement::new("PMML")
            .attr("version", "4.1")
            .child(XmlElement::new("Header").attr("description", "test"))
            .child(XmlElement::new("Note").with_text("a < b & c"));
        let xml = doc.to_document();
        assert!(xml.starts_with("<?xml"));
        assert!(xml.contains("<Header description=\"test\"/>"));
        assert!(xml.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn parse_round_trip() {
        let doc = XmlElement::new("Root")
            .attr("a", "1")
            .attr("b", "x \"quoted\" & <odd>")
            .child(
                XmlElement::new("Child")
                    .attr("k", "v")
                    .with_text("hello & goodbye"),
            )
            .child(XmlElement::new("Empty"));
        let xml = doc.to_document();
        let parsed = parse(&xml).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parse_with_comments_and_declaration() {
        let xml = r#"<?xml version="1.0"?>
        <!-- leading comment -->
        <A x='single'>
            <!-- inner comment -->
            <B/>
        </A>
        <!-- trailing comment -->"#;
        let parsed = parse(xml).unwrap();
        assert_eq!(parsed.name, "A");
        assert_eq!(parsed.get_attr("x"), Some("single"));
        assert_eq!(parsed.children.len(), 1);
    }

    #[test]
    fn mismatched_tags_rejected() {
        assert!(parse("<A><B></A></B>").is_err());
        assert!(parse("<A>").is_err());
        assert!(parse("<A></A><B></B>").is_err());
    }

    #[test]
    fn helpers_find_and_require() {
        let doc = XmlElement::new("M")
            .child(XmlElement::new("F").attr("name", "x"))
            .child(XmlElement::new("F").attr("name", "y"))
            .child(XmlElement::new("G"));
        assert_eq!(doc.find_all("F").count(), 2);
        assert!(doc.require("G").is_ok());
        assert!(doc.require("H").is_err());
        assert!(doc.children[0].require_attr("name").is_ok());
        assert!(doc.children[2].require_attr("name").is_err());
    }

    #[test]
    fn bad_entity_rejected() {
        assert!(parse("<A>&unknown;</A>").is_err());
    }

    #[test]
    fn text_trimmed_but_entities_kept() {
        let parsed = parse("<A>  1.5 2.5 &amp; 3  </A>").unwrap();
        assert_eq!(parsed.text, "1.5 2.5 & 3");
    }
}
