//! The engine context (the `SparkContext` analog).

use std::collections::HashMap;
use std::sync::Arc;

use common::{Row, Schema};
use netsim::record::Recorder;
use parking_lot::RwLock;

use crate::dataframe::{DataFrame, DataFrameReader};
use crate::datasource::DataSourceProvider;
use crate::error::{SparkError, SparkResult};
use crate::failure::FailureInjector;
use crate::rdd::Rdd;
use crate::scheduler::{Scheduler, SchedulerConf, TaskContext};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SparkConf {
    /// Worker nodes in the compute cluster.
    pub nodes: usize,
    /// Task slots per node (the paper assigns ~75% of 32 logical cores).
    pub cores_per_node: usize,
    /// Retry budget per task (Spark's default is 4 total attempts).
    pub max_task_attempts: u32,
    /// Cap on real OS threads per job (logical slots can exceed this;
    /// the timing simulator uses the logical number).
    pub thread_cap: usize,
    /// Launch speculative duplicates of straggler tasks (Spark's
    /// `spark.speculation`): a grey-slow attempt gets a second copy and
    /// the first finisher wins.
    pub speculation: bool,
    /// A running task is a straggler once its runtime exceeds
    /// `multiplier` × the median runtime of completed attempts.
    pub speculation_multiplier: f64,
    /// Fraction of a job's partitions that must succeed before
    /// stragglers are considered (Spark's `spark.speculation.quantile`).
    pub speculation_quantile: f64,
    /// Runtime floor (ms) below which nothing is speculated — keeps
    /// µs-scale clean runs free of spurious duplicates.
    pub speculation_min_ms: u64,
}

impl Default for SparkConf {
    fn default() -> SparkConf {
        SparkConf {
            nodes: 8,
            cores_per_node: 24,
            max_task_attempts: 4,
            thread_cap: 16,
            speculation: true,
            speculation_multiplier: 3.0,
            speculation_quantile: 0.5,
            speculation_min_ms: 25,
        }
    }
}

impl SparkConf {
    pub fn with_nodes(nodes: usize) -> SparkConf {
        SparkConf {
            nodes,
            ..SparkConf::default()
        }
    }

    pub fn total_slots(&self) -> usize {
        self.nodes * self.cores_per_node
    }
}

struct Inner {
    conf: SparkConf,
    scheduler: Scheduler,
    recorder: Arc<Recorder>,
    failures: FailureInjector,
    formats: RwLock<HashMap<String, Arc<dyn DataSourceProvider>>>,
}

/// A handle to the engine; cheap to clone.
#[derive(Clone)]
pub struct SparkContext {
    inner: Arc<Inner>,
}

impl SparkContext {
    pub fn new(conf: SparkConf) -> SparkContext {
        let scheduler = Scheduler::new(SchedulerConf {
            nodes: conf.nodes,
            total_slots: conf.total_slots(),
            max_task_attempts: conf.max_task_attempts,
            thread_cap: conf.thread_cap,
            speculation: conf.speculation,
            speculation_multiplier: conf.speculation_multiplier,
            speculation_quantile: conf.speculation_quantile,
            speculation_min_ms: conf.speculation_min_ms,
        });
        SparkContext {
            inner: Arc::new(Inner {
                conf,
                scheduler,
                recorder: Recorder::new(),
                failures: FailureInjector::new(),
                formats: RwLock::new(HashMap::new()),
            }),
        }
    }

    pub fn conf(&self) -> &SparkConf {
        &self.inner.conf
    }

    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.inner.recorder
    }

    /// The failure-injection control surface.
    pub fn failures(&self) -> &FailureInjector {
        &self.inner.failures
    }

    /// Observed stats for a finished job (see
    /// [`crate::scheduler::JobStats`]); `None` once pruned.
    pub fn job_stats(&self, job_id: u64) -> Option<crate::scheduler::JobStats> {
        self.inner.scheduler.job_stats(job_id)
    }

    /// Distribute a local collection into an RDD with `partitions`
    /// near-equal slices.
    pub fn parallelize<T: Clone + Send + Sync + 'static>(
        &self,
        data: Vec<T>,
        partitions: usize,
    ) -> Rdd<T> {
        Rdd::parallelize(self.clone(), data, partitions)
    }

    /// Build a DataFrame from local rows.
    pub fn create_dataframe(
        &self,
        rows: Vec<Row>,
        schema: Schema,
        partitions: usize,
    ) -> SparkResult<DataFrame> {
        for r in &rows {
            schema.validate_row(r)?;
        }
        let rdd = self.parallelize(rows, partitions);
        Ok(DataFrame::from_rdd(rdd, schema))
    }

    /// Register an External Data Source implementation under a format
    /// name (e.g. `"com.vertica.spark.datasource.DefaultSource"`).
    pub fn register_format(&self, name: &str, provider: Arc<dyn DataSourceProvider>) {
        self.inner
            .formats
            .write()
            .insert(name.to_string(), provider);
    }

    pub fn format_provider(&self, name: &str) -> SparkResult<Arc<dyn DataSourceProvider>> {
        self.inner
            .formats
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| SparkError::Usage(format!("unknown data source format: {name}")))
    }

    /// Begin a load (paper Table 1's `df.read`).
    pub fn read(&self) -> DataFrameReader {
        DataFrameReader::new(self.clone())
    }

    /// The fundamental scheduler entry point: run `f` over every
    /// partition of `rdd` as one job.
    pub fn run_job<T, R>(
        &self,
        rdd: &Rdd<T>,
        f: impl Fn(&TaskContext, Vec<T>) -> SparkResult<R> + Sync,
    ) -> SparkResult<Vec<R>>
    where
        T: Send + Sync + 'static,
        R: Send,
    {
        self.run_job_traced(rdd, obs::TraceCtx::NONE, f)
    }

    /// [`SparkContext::run_job`] under a trace: every task attempt gets
    /// a `sched.task` span parented at `trace`, and the task closure
    /// sees its span as [`TaskContext::trace`] for further parenting.
    pub fn run_job_traced<T, R>(
        &self,
        rdd: &Rdd<T>,
        trace: obs::TraceCtx,
        f: impl Fn(&TaskContext, Vec<T>) -> SparkResult<R> + Sync,
    ) -> SparkResult<Vec<R>>
    where
        T: Send + Sync + 'static,
        R: Send,
    {
        let source = rdd.source();
        self.inner.scheduler.run_job_traced(
            source.num_partitions(),
            &self.inner.failures,
            trace,
            &|ctx: &TaskContext| {
                let items = source.compute(ctx.partition)?;
                f(ctx, items)
            },
        )
    }

    /// Run a job over an explicit partition count without an RDD (used
    /// by data sources that generate their own partition work).
    pub fn run_partitions<R: Send>(
        &self,
        partitions: usize,
        f: impl Fn(&TaskContext) -> SparkResult<R> + Sync,
    ) -> SparkResult<Vec<R>> {
        self.inner
            .scheduler
            .run_job(partitions, &self.inner.failures, &f)
    }

    /// [`SparkContext::run_partitions`] with `sched.task` attempt spans
    /// parented at `trace`.
    pub fn run_partitions_traced<R: Send>(
        &self,
        partitions: usize,
        trace: obs::TraceCtx,
        f: impl Fn(&TaskContext) -> SparkResult<R> + Sync,
    ) -> SparkResult<Vec<R>> {
        self.inner
            .scheduler
            .run_job_traced(partitions, &self.inner.failures, trace, &f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelize_and_run_job() {
        let ctx = SparkContext::new(SparkConf::default());
        let rdd = ctx.parallelize((0..100).collect::<Vec<i64>>(), 7);
        let sums = ctx
            .run_job(&rdd, |_tc, items| Ok(items.iter().sum::<i64>()))
            .unwrap();
        assert_eq!(sums.len(), 7);
        assert_eq!(sums.iter().sum::<i64>(), 4950);
    }

    #[test]
    fn unknown_format_errors() {
        let ctx = SparkContext::new(SparkConf::default());
        assert!(ctx.format_provider("nope").is_err());
    }

    #[test]
    fn create_dataframe_validates_rows() {
        let ctx = SparkContext::new(SparkConf::default());
        let schema = Schema::from_pairs(&[("a", common::DataType::Int64)]);
        assert!(ctx
            .create_dataframe(vec![common::row![1i64]], schema.clone(), 2)
            .is_ok());
        assert!(ctx
            .create_dataframe(vec![common::row!["x"]], schema, 2)
            .is_err());
    }
}
