//! DataFrames: schema-carrying row datasets with the reader/writer API
//! of the paper's Table 1.

use std::sync::Arc;

use common::agg::{self, AggCall, AggRequest};
use common::{Expr, Row, Schema};

use crate::context::SparkContext;
use crate::datasource::{Options, SaveMode, ScanRelation};
use crate::error::{SparkError, SparkResult};
use crate::rdd::Rdd;

/// A DataFrame: either a materialized row RDD or a lazy reference to an
/// external relation with accumulated pushdowns.
#[derive(Clone)]
pub struct DataFrame {
    ctx: SparkContext,
    schema: Schema,
    plan: Plan,
}

#[derive(Clone)]
enum Plan {
    Rdd(Rdd<Row>),
    Source {
        relation: Arc<dyn ScanRelation>,
        filters: Vec<Expr>,
        projection: Option<Vec<String>>,
    },
}

impl DataFrame {
    pub(crate) fn from_rdd(rdd: Rdd<Row>, schema: Schema) -> DataFrame {
        DataFrame {
            ctx: rdd.context().clone(),
            schema,
            plan: Plan::Rdd(rdd),
        }
    }

    /// Attach a schema to an existing row RDD. The caller asserts the
    /// rows conform; violations surface as type errors downstream.
    pub fn from_row_rdd(rdd: Rdd<Row>, schema: Schema) -> DataFrame {
        DataFrame::from_rdd(rdd, schema)
    }

    /// Build a DataFrame with an explicit partition layout.
    pub fn from_partitions(
        ctx: SparkContext,
        schema: Schema,
        partitions: Vec<Vec<Row>>,
    ) -> SparkResult<DataFrame> {
        for p in &partitions {
            for r in p {
                schema.validate_row(r)?;
            }
        }
        let rdd = Rdd::from_partitions(ctx, partitions);
        Ok(DataFrame::from_rdd(rdd, schema))
    }

    /// Wrap an external relation (produced by `read().load()`).
    pub fn from_relation(ctx: SparkContext, relation: Arc<dyn ScanRelation>) -> DataFrame {
        let schema = relation.schema();
        DataFrame {
            ctx,
            schema,
            plan: Plan::Source {
                relation,
                filters: Vec::new(),
                projection: None,
            },
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn context(&self) -> &SparkContext {
        &self.ctx
    }

    /// Keep only the named columns. Pushed down to the source when the
    /// DataFrame is still lazy.
    pub fn select(&self, columns: &[&str]) -> SparkResult<DataFrame> {
        let new_schema = self.schema.project(columns)?;
        match &self.plan {
            Plan::Source {
                relation,
                filters,
                projection: _,
            } => Ok(DataFrame {
                ctx: self.ctx.clone(),
                schema: new_schema,
                plan: Plan::Source {
                    relation: Arc::clone(relation),
                    filters: filters.clone(),
                    projection: Some(columns.iter().map(|c| c.to_string()).collect()),
                },
            }),
            Plan::Rdd(rdd) => {
                let idx: Vec<usize> = columns
                    .iter()
                    .map(|c| self.schema.index_of(c))
                    .collect::<Result<_, _>>()?;
                let mapped = rdd.map(move |row: Row| row.into_projected(&idx));
                Ok(DataFrame::from_rdd(mapped, new_schema))
            }
        }
    }

    /// Filter rows by a predicate over the *base* columns. Pushed down
    /// to the source when the DataFrame is still lazy (paper Sec.
    /// 3.1.1).
    pub fn filter(&self, predicate: Expr) -> SparkResult<DataFrame> {
        match &self.plan {
            Plan::Source {
                relation,
                filters,
                projection,
            } => {
                // Validate the predicate against the relation schema.
                predicate.bind(&relation.schema())?;
                let mut filters = filters.clone();
                filters.push(predicate);
                Ok(DataFrame {
                    ctx: self.ctx.clone(),
                    schema: self.schema.clone(),
                    plan: Plan::Source {
                        relation: Arc::clone(relation),
                        filters,
                        projection: projection.clone(),
                    },
                })
            }
            Plan::Rdd(rdd) => {
                let bound = predicate.bind(&self.schema)?;
                let filtered = rdd.filter(move |row: &Row| bound.matches(row).unwrap_or(false));
                Ok(DataFrame::from_rdd(filtered, self.schema.clone()))
            }
        }
    }

    /// Grouped aggregation (`df.agg(..)`). References the *base*
    /// columns, like [`DataFrame::filter`]. While the DataFrame is
    /// still lazy the request is pushed down to the source, which may
    /// ship per-partition accumulator states instead of rows (paper
    /// Sec. 3.1.1); materialized frames aggregate engine-side. The
    /// result is a small materialized DataFrame of one row per group.
    pub fn agg(&self, group_by: &[&str], calls: Vec<AggCall>) -> SparkResult<DataFrame> {
        let request = AggRequest::new(group_by, calls);
        let (schema, rows) = match &self.plan {
            Plan::Source {
                relation, filters, ..
            } => relation.aggregate(&self.ctx, filters, &request)?,
            Plan::Rdd(rdd) => {
                let rows = rdd.collect()?;
                agg::aggregate_rows(&self.schema, &rows, &request)?
            }
        };
        let rdd = Rdd::from_partitions(self.ctx.clone(), vec![rows]);
        Ok(DataFrame::from_rdd(rdd, schema))
    }

    /// Row count; uses the source's count pushdown when lazy.
    pub fn count(&self) -> SparkResult<u64> {
        match &self.plan {
            Plan::Source {
                relation, filters, ..
            } => relation.count(&self.ctx, filters),
            Plan::Rdd(rdd) => rdd.count(),
        }
    }

    /// Materialize into a row RDD (resolving source pushdowns).
    pub fn rdd(&self) -> SparkResult<Rdd<Row>> {
        match &self.plan {
            Plan::Rdd(rdd) => Ok(rdd.clone()),
            Plan::Source {
                relation,
                filters,
                projection,
            } => relation.scan(&self.ctx, projection.as_deref(), filters),
        }
    }

    /// Collect all rows on the driver.
    pub fn collect(&self) -> SparkResult<Vec<Row>> {
        self.rdd()?.collect()
    }

    pub fn num_partitions(&self) -> SparkResult<usize> {
        Ok(self.rdd()?.num_partitions())
    }

    /// Redistribute into `n` partitions (shuffle).
    pub fn repartition(&self, n: usize) -> SparkResult<DataFrame> {
        Ok(DataFrame::from_rdd(
            self.rdd()?.repartition(n),
            self.schema.clone(),
        ))
    }

    /// Merge into `n` partitions without a shuffle.
    pub fn coalesce(&self, n: usize) -> SparkResult<DataFrame> {
        Ok(DataFrame::from_rdd(
            self.rdd()?.coalesce(n),
            self.schema.clone(),
        ))
    }

    pub fn union(&self, other: &DataFrame) -> SparkResult<DataFrame> {
        if !self.schema.compatible_with(&other.schema) {
            return Err(SparkError::Usage(format!(
                "union of incompatible schemas {} and {}",
                self.schema, other.schema
            )));
        }
        Ok(DataFrame::from_rdd(
            self.rdd()?.union(&other.rdd()?),
            self.schema.clone(),
        ))
    }

    /// Begin a save (paper Table 1's `df.write`).
    pub fn write(&self) -> DataFrameWriter {
        DataFrameWriter {
            df: self.clone(),
            format: None,
            options: Options::new(),
            mode: SaveMode::default(),
        }
    }
}

/// Builder for loads: `ctx.read().format(...).option(k, v).load()`.
pub struct DataFrameReader {
    ctx: SparkContext,
    format: Option<String>,
    options: Options,
}

impl DataFrameReader {
    pub(crate) fn new(ctx: SparkContext) -> DataFrameReader {
        DataFrameReader {
            ctx,
            format: None,
            options: Options::new(),
        }
    }

    pub fn format(mut self, name: &str) -> DataFrameReader {
        self.format = Some(name.to_string());
        self
    }

    pub fn option(mut self, key: &str, value: impl ToString) -> DataFrameReader {
        self.options.set(key, value);
        self
    }

    pub fn options(mut self, options: Options) -> DataFrameReader {
        self.options = options;
        self
    }

    pub fn load(self) -> SparkResult<DataFrame> {
        let format = self
            .format
            .ok_or_else(|| SparkError::Usage("read requires .format(...)".into()))?;
        let provider = self.ctx.format_provider(&format)?;
        let relation = provider.create_relation(&self.ctx, &self.options)?;
        Ok(DataFrame::from_relation(self.ctx, relation))
    }
}

/// Builder for saves: `df.write().format(...).mode(...).save()`.
pub struct DataFrameWriter {
    df: DataFrame,
    format: Option<String>,
    options: Options,
    mode: SaveMode,
}

impl DataFrameWriter {
    pub fn format(mut self, name: &str) -> DataFrameWriter {
        self.format = Some(name.to_string());
        self
    }

    pub fn option(mut self, key: &str, value: impl ToString) -> DataFrameWriter {
        self.options.set(key, value);
        self
    }

    pub fn options(mut self, options: Options) -> DataFrameWriter {
        self.options = options;
        self
    }

    pub fn mode(mut self, mode: SaveMode) -> DataFrameWriter {
        self.mode = mode;
        self
    }

    pub fn save(self) -> SparkResult<()> {
        let format = self
            .format
            .ok_or_else(|| SparkError::Usage("write requires .format(...)".into()))?;
        let provider = self.df.ctx.format_provider(&format)?;
        provider.save(&self.df.ctx, &self.options, &self.df, self.mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SparkConf;
    use common::{row, DataType, Value};

    fn df() -> DataFrame {
        let ctx = SparkContext::new(SparkConf::default());
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int64),
            ("score", DataType::Float64),
            ("name", DataType::Varchar),
        ]);
        let rows = vec![
            row![1i64, 0.5f64, "a"],
            row![2i64, 1.5f64, "b"],
            row![3i64, 2.5f64, "c"],
        ];
        ctx.create_dataframe(rows, schema, 2).unwrap()
    }

    #[test]
    fn select_and_filter_on_materialized_frames() {
        let d = df();
        let out = d
            .filter(Expr::col("score").gt(Expr::lit(1.0f64)))
            .unwrap()
            .select(&["name"])
            .unwrap();
        assert_eq!(out.schema().column_names(), vec!["name"]);
        let rows = out.collect().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get(0), &Value::Varchar("b".into()));
        assert_eq!(d.count().unwrap(), 3);
    }

    #[test]
    fn union_requires_compatible_schemas() {
        let a = df();
        let b = df();
        assert_eq!(a.union(&b).unwrap().count().unwrap(), 6);
        let c = a.select(&["id"]).unwrap();
        assert!(a.union(&c).is_err());
    }

    #[test]
    fn repartition_and_coalesce() {
        let d = df().repartition(3).unwrap();
        assert_eq!(d.num_partitions().unwrap(), 3);
        let d2 = d.coalesce(1).unwrap();
        assert_eq!(d2.num_partitions().unwrap(), 1);
        assert_eq!(d2.count().unwrap(), 3);
    }

    #[test]
    fn agg_on_materialized_frames() {
        let d = df();
        let out = d
            .agg(
                &[],
                vec![
                    AggCall::count_star(),
                    AggCall::new(agg::AggFunc::Sum, "score"),
                    AggCall::new(agg::AggFunc::Max, "name"),
                ],
            )
            .unwrap();
        let rows = out.collect().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0), &Value::Int64(3));
        assert_eq!(rows[0].get(1), &Value::Float64(4.5));
        assert_eq!(rows[0].get(2), &Value::Varchar("c".into()));
    }

    #[test]
    fn writer_requires_format() {
        let d = df();
        assert!(d.write().save().is_err());
    }
}
