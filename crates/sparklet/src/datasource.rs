//! The External Data Source API (paper Sec. 2.1.2, Table 1).
//!
//! A connector registers a [`DataSourceProvider`] under its format name
//! (ours uses the paper's `com.vertica.spark.datasource.DefaultSource`).
//! Loads produce a [`ScanRelation`] supporting projection, filter, and
//! count pushdown; saves receive the DataFrame, the option map, and a
//! [`SaveMode`].

use std::collections::HashMap;
use std::sync::Arc;

use common::agg::{self, AggRequest};
use common::{Expr, Row, Schema};

use crate::context::SparkContext;
use crate::dataframe::DataFrame;
use crate::error::{SparkError, SparkResult};
use crate::rdd::Rdd;

/// Save semantics for `df.write.mode(...)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SaveMode {
    /// Fail if the target exists.
    #[default]
    ErrorIfExists,
    /// Add rows to an existing target (create it if missing).
    Append,
    /// Replace the target atomically.
    Overwrite,
    /// Do nothing if the target exists.
    Ignore,
}

impl SaveMode {
    pub fn from_name(name: &str) -> SparkResult<SaveMode> {
        match name.to_ascii_lowercase().as_str() {
            "error" | "errorifexists" | "default" => Ok(SaveMode::ErrorIfExists),
            "append" => Ok(SaveMode::Append),
            "overwrite" => Ok(SaveMode::Overwrite),
            "ignore" => Ok(SaveMode::Ignore),
            other => Err(SparkError::Usage(format!("unknown save mode: {other}"))),
        }
    }
}

/// The `key=value` option map of Table 1 (host, user, table, numPartitions,
/// ...). Keys are case-insensitive.
#[derive(Debug, Clone, Default)]
pub struct Options {
    map: HashMap<String, String>,
}

impl Options {
    pub fn new() -> Options {
        Options::default()
    }

    pub fn set(&mut self, key: &str, value: impl ToString) -> &mut Options {
        self.map.insert(key.to_ascii_lowercase(), value.to_string());
        self
    }

    pub fn with(mut self, key: &str, value: impl ToString) -> Options {
        self.set(key, value);
        self
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.map.get(&key.to_ascii_lowercase()).map(String::as_str)
    }

    pub fn require(&self, key: &str) -> SparkResult<&str> {
        self.get(key)
            .ok_or_else(|| SparkError::Usage(format!("missing required option {key:?}")))
    }

    /// Parse an option into any `FromStr` type.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str) -> SparkResult<Option<T>> {
        match self.get(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<T>()
                .map(Some)
                .map_err(|_| SparkError::Usage(format!("option {key}={raw} is not a valid value"))),
        }
    }

    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.map.keys().map(String::as_str)
    }
}

/// A loaded relation supporting pushdown scans.
pub trait ScanRelation: Send + Sync {
    /// The relation's full schema.
    fn schema(&self) -> Schema;

    /// Produce the row RDD for this relation, with `projection` and
    /// `filters` pushed down (both may be empty). Filters reference the
    /// *base* schema's column names.
    fn scan(
        &self,
        ctx: &SparkContext,
        projection: Option<&[String]>,
        filters: &[Expr],
    ) -> SparkResult<Rdd<Row>>;

    /// Count pushdown (`df.count()`); the default materializes a scan.
    fn count(&self, ctx: &SparkContext, filters: &[Expr]) -> SparkResult<u64> {
        // Project down to nothing we can avoid: use full rows.
        self.scan(ctx, None, filters)?.count()
    }

    /// Aggregate pushdown (`df.agg(..)`). The default materializes a
    /// scan and aggregates engine-side, so every source gets correct
    /// aggregates; sources that can push work down (the V2S connector)
    /// override this to ship accumulator states instead of rows.
    fn aggregate(
        &self,
        ctx: &SparkContext,
        filters: &[Expr],
        request: &AggRequest,
    ) -> SparkResult<(Schema, Vec<Row>)> {
        let rows = self.scan(ctx, None, filters)?.collect()?;
        agg::aggregate_rows(&self.schema(), &rows, request).map_err(SparkError::from)
    }
}

/// A data source format implementation.
pub trait DataSourceProvider: Send + Sync {
    /// `df.read.format(...).options(...).load()`.
    fn create_relation(
        &self,
        ctx: &SparkContext,
        options: &Options,
    ) -> SparkResult<Arc<dyn ScanRelation>>;

    /// `df.write.format(...).options(...).mode(...).save()`.
    fn save(
        &self,
        ctx: &SparkContext,
        options: &Options,
        df: &DataFrame,
        mode: SaveMode,
    ) -> SparkResult<()>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_case_insensitive_and_typed() {
        let mut o = Options::new();
        o.set("NumPartitions", 32).set("host", "db0");
        assert_eq!(o.get("numpartitions"), Some("32"));
        assert_eq!(o.get_parsed::<usize>("numPartitions").unwrap(), Some(32));
        assert_eq!(o.get_parsed::<usize>("missing").unwrap(), None);
        assert!(o.get_parsed::<usize>("host").is_err());
        assert!(o.require("host").is_ok());
        assert!(o.require("password").is_err());
    }

    #[test]
    fn save_mode_names() {
        assert_eq!(
            SaveMode::from_name("Overwrite").unwrap(),
            SaveMode::Overwrite
        );
        assert_eq!(SaveMode::from_name("APPEND").unwrap(), SaveMode::Append);
        assert_eq!(
            SaveMode::from_name("errorifexists").unwrap(),
            SaveMode::ErrorIfExists
        );
        assert!(SaveMode::from_name("upsert").is_err());
    }
}
