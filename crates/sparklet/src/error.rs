//! Compute-engine errors.

use std::fmt;
use std::sync::Arc;

pub type SparkResult<T> = std::result::Result<T, SparkError>;

/// Errors surfaced by the compute engine.
#[derive(Debug, Clone)]
pub enum SparkError {
    /// A task exhausted its retry budget; the job fails.
    TaskFailed {
        partition: usize,
        attempts: u32,
        last_error: String,
    },
    /// The job was killed mid-flight (total engine failure injection).
    JobKilled { completed_tasks: u64 },
    /// Injected task fault (internal; converted to retries).
    InjectedFault { partition: usize, attempt: u32 },
    /// Data/type errors from the shared layer.
    Data(common::Error),
    /// Data source errors (connector-provided message).
    DataSource(String),
    /// Anything raised by user code running in a task.
    User(Arc<dyn std::error::Error + Send + Sync>),
    /// Misuse of the API (bad options, unknown format, ...).
    Usage(String),
}

impl fmt::Display for SparkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparkError::TaskFailed {
                partition,
                attempts,
                last_error,
            } => write!(
                f,
                "task for partition {partition} failed after {attempts} attempts: {last_error}"
            ),
            SparkError::JobKilled { completed_tasks } => {
                write!(f, "job killed after {completed_tasks} task completions")
            }
            SparkError::InjectedFault { partition, attempt } => {
                write!(
                    f,
                    "injected fault in partition {partition} attempt {attempt}"
                )
            }
            SparkError::Data(e) => write!(f, "data error: {e}"),
            SparkError::DataSource(msg) => write!(f, "data source error: {msg}"),
            SparkError::User(e) => write!(f, "task error: {e}"),
            SparkError::Usage(msg) => write!(f, "usage error: {msg}"),
        }
    }
}

impl std::error::Error for SparkError {}

impl From<common::Error> for SparkError {
    fn from(e: common::Error) -> SparkError {
        SparkError::Data(e)
    }
}

impl SparkError {
    /// Wrap an arbitrary task error.
    pub fn user(e: impl std::error::Error + Send + Sync + 'static) -> SparkError {
        SparkError::User(Arc::new(e))
    }
}
