//! Failure injection: the scheduler hazards the paper's protocol is
//! built to survive.
//!
//! The paper (Sec. 2.2.2, 3.2) enumerates the failure modes a reliable
//! save must tolerate: task failure before doing work, task failure
//! *after* doing its work ("even if a task only commits after it is
//! completely done, it could still fail immediately after the commit
//! and be restarted"), speculative duplicate execution, and total
//! engine failure. This module lets tests and benchmarks inject all of
//! them deterministically or randomly (seeded).

use std::collections::HashMap;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// When within an attempt the injected failure strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureMode {
    /// The attempt dies before running any user code.
    BeforeWork,
    /// The attempt runs the user code to completion — side effects and
    /// all — and *then* reports failure, so the scheduler retries work
    /// that already happened.
    AfterWork,
}

#[derive(Default)]
struct Plan {
    /// Scripted failures per `(partition, attempt)` (attempts are
    /// 1-based).
    scripted: HashMap<(usize, u32), FailureMode>,
    /// Extra speculative copies launched alongside attempt 1 of a
    /// partition.
    speculative: HashMap<usize, u32>,
    /// Kill the job after this many task completions.
    kill_after: Option<u64>,
    /// Random failures: probability per attempt, with an RNG.
    random: Option<(f64, StdRng, FailureMode)>,
}

/// Shared failure-injection state, consulted by the scheduler.
#[derive(Default)]
pub struct FailureInjector {
    plan: Mutex<Plan>,
}

impl FailureInjector {
    pub fn new() -> FailureInjector {
        FailureInjector::default()
    }

    /// Script a failure for a specific attempt of a partition's task.
    pub fn fail_task(&self, partition: usize, attempt: u32, mode: FailureMode) {
        self.plan.lock().scripted.insert((partition, attempt), mode);
    }

    /// Launch `copies` speculative duplicates of the partition's task.
    pub fn speculate(&self, partition: usize, copies: u32) {
        self.plan.lock().speculative.insert(partition, copies);
    }

    /// Kill the next job after `completions` task completions.
    pub fn kill_job_after(&self, completions: u64) {
        self.plan.lock().kill_after = Some(completions);
    }

    /// Fail each attempt independently with probability `p` (seeded).
    pub fn random_failures(&self, p: f64, seed: u64, mode: FailureMode) {
        assert!((0.0..1.0).contains(&p), "probability must be in [0, 1)");
        self.plan.lock().random = Some((p, StdRng::seed_from_u64(seed), mode));
    }

    /// Remove all injection state.
    pub fn clear(&self) {
        *self.plan.lock() = Plan::default();
    }

    // --- scheduler-facing queries ---

    pub(crate) fn failure_for(&self, partition: usize, attempt: u32) -> Option<FailureMode> {
        let mut plan = self.plan.lock();
        if let Some(mode) = plan.scripted.remove(&(partition, attempt)) {
            return Some(mode);
        }
        if let Some((p, rng, mode)) = plan.random.as_mut() {
            if rng.random_bool(*p) {
                return Some(*mode);
            }
        }
        None
    }

    pub(crate) fn speculative_copies(&self, partition: usize) -> u32 {
        self.plan
            .lock()
            .speculative
            .get(&partition)
            .copied()
            .unwrap_or(0)
    }

    pub(crate) fn kill_after(&self) -> Option<u64> {
        self.plan.lock().kill_after
    }

    pub(crate) fn clear_kill(&self) {
        self.plan.lock().kill_after = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_failures_fire_once() {
        let inj = FailureInjector::new();
        inj.fail_task(3, 1, FailureMode::BeforeWork);
        assert_eq!(inj.failure_for(3, 1), Some(FailureMode::BeforeWork));
        assert_eq!(inj.failure_for(3, 1), None, "consumed");
        assert_eq!(inj.failure_for(3, 2), None);
    }

    #[test]
    fn random_failures_seeded_and_bounded() {
        let inj = FailureInjector::new();
        inj.random_failures(0.5, 42, FailureMode::AfterWork);
        let hits: usize = (0..1000)
            .filter(|&i| inj.failure_for(i, 1).is_some())
            .count();
        assert!(hits > 300 && hits < 700, "≈50% expected, got {hits}");
    }

    #[test]
    fn clear_resets_everything() {
        let inj = FailureInjector::new();
        inj.fail_task(0, 1, FailureMode::BeforeWork);
        inj.speculate(1, 2);
        inj.kill_job_after(5);
        inj.clear();
        assert_eq!(inj.failure_for(0, 1), None);
        assert_eq!(inj.speculative_copies(1), 0);
        assert_eq!(inj.kill_after(), None);
    }
}
