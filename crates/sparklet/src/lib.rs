//! A batch compute engine in the MapReduce/Spark mold (paper Sec.
//! 2.1.2).
//!
//! Everything the connector's design reacts to is reproduced here:
//!
//! * **RDDs** — immutable, partitioned, lazily evaluated datasets whose
//!   lineage lets any partition be recomputed at any time.
//! * **A batch task scheduler** — actions become jobs; a job launches
//!   one independent, stateless task per partition onto bounded executor
//!   slots. Tasks can fail and be retried, can fail *after* their side
//!   effects ran, and can be speculatively duplicated — the exact
//!   hazards the S2V protocol (Sec. 3.2.1) must survive. A whole job can
//!   be killed mid-flight to model total engine failure.
//! * **DataFrames** — schema-carrying row datasets with select/filter/
//!   count and a reader/writer API matching the paper's Table 1
//!   (`format(...).options(...).mode(...).save()` / `.load()`).
//! * **The External Data Source API** — the provider/relation traits a
//!   connector implements, with filter and projection pushdown plus a
//!   count pushdown.
//! * **MLlib-lite** — linear regression, logistic regression, and
//!   k-means, trained through the scheduler over RDD partitions, plus
//!   PMML export (the MD component's input, Sec. 3.3).

pub mod context;
pub mod dataframe;
pub mod datasource;
pub mod error;
pub mod failure;
pub mod mllib;
pub mod pmml_export;
pub mod rdd;
pub mod scheduler;

pub use context::{SparkConf, SparkContext};
pub use dataframe::{DataFrame, DataFrameReader, DataFrameWriter};
pub use datasource::{DataSourceProvider, Options, SaveMode, ScanRelation};
pub use error::{SparkError, SparkResult};
pub use failure::{FailureInjector, FailureMode};
pub use rdd::Rdd;
pub use scheduler::{job_label, JobStats, TaskContext};
