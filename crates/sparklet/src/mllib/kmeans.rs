//! K-means clustering (Lloyd's algorithm) with distributed assignment.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::error::{SparkError, SparkResult};
use crate::mllib::linalg::squared_distance;
use crate::rdd::Rdd;
use crate::scheduler::TaskContext;

/// A fitted k-means model.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansModel {
    pub centers: Vec<Vec<f64>>,
}

impl KMeansModel {
    /// Index of the nearest center.
    pub fn predict(&self, point: &[f64]) -> usize {
        self.centers
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                squared_distance(a, point).total_cmp(&squared_distance(b, point))
            })
            .map(|(i, _)| i)
            .expect("model has at least one center")
    }

    /// Total within-cluster sum of squared distances over a dataset.
    pub fn cost(&self, data: &Rdd<Vec<f64>>) -> SparkResult<f64> {
        let centers = self.centers.clone();
        let partials =
            data.context()
                .run_job(data, move |_tc: &TaskContext, pts: Vec<Vec<f64>>| {
                    Ok(pts
                        .iter()
                        .map(|p| {
                            centers
                                .iter()
                                .map(|c| squared_distance(c, p))
                                .fold(f64::INFINITY, f64::min)
                        })
                        .sum::<f64>())
                })?;
        Ok(partials.into_iter().sum())
    }
}

/// Lloyd's algorithm: seeded sampling for initial centers, then
/// assignment + recentering rounds, each a scheduler job.
#[derive(Debug, Clone)]
pub struct KMeans {
    pub k: usize,
    pub iterations: usize,
    pub seed: u64,
}

impl KMeans {
    pub fn new(k: usize) -> KMeans {
        KMeans {
            k,
            iterations: 20,
            seed: 42,
        }
    }

    pub fn fit(&self, data: &Rdd<Vec<f64>>) -> SparkResult<KMeansModel> {
        assert!(self.k > 0, "k must be positive");
        let ctx = data.context().clone();

        // Sample candidate centers: a handful per partition.
        let k = self.k;
        let samples = ctx.run_job(data, move |_tc: &TaskContext, pts: Vec<Vec<f64>>| {
            Ok(pts.into_iter().take(4 * k).collect::<Vec<_>>())
        })?;
        let mut candidates: Vec<Vec<f64>> = samples.into_iter().flatten().collect();
        candidates.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        candidates.dedup();
        if candidates.len() < self.k {
            return Err(SparkError::Usage(format!(
                "need at least k={} distinct points, found {}",
                self.k,
                candidates.len()
            )));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        candidates.shuffle(&mut rng);
        let mut centers: Vec<Vec<f64>> = candidates.into_iter().take(self.k).collect();

        for _round in 0..self.iterations {
            let bcast = centers.clone();
            let dim = bcast[0].len();
            let partials = ctx.run_job(data, move |_tc: &TaskContext, pts: Vec<Vec<f64>>| {
                let mut sums = vec![vec![0.0f64; dim]; bcast.len()];
                let mut counts = vec![0u64; bcast.len()];
                for p in &pts {
                    let nearest = bcast
                        .iter()
                        .enumerate()
                        .min_by(|(_, a), (_, b)| {
                            squared_distance(a, p).total_cmp(&squared_distance(b, p))
                        })
                        .map(|(i, _)| i)
                        .expect("k > 0");
                    counts[nearest] += 1;
                    for (s, x) in sums[nearest].iter_mut().zip(p) {
                        *s += x;
                    }
                }
                Ok((sums, counts))
            })?;
            let dim = centers[0].len();
            let mut sums = vec![vec![0.0f64; dim]; self.k];
            let mut counts = vec![0u64; self.k];
            for (ps, pc) in partials {
                for (i, s) in ps.into_iter().enumerate() {
                    for (a, b) in sums[i].iter_mut().zip(s) {
                        *a += b;
                    }
                    counts[i] += pc[i];
                }
            }
            let mut moved = 0.0;
            for i in 0..self.k {
                if counts[i] == 0 {
                    continue; // keep the old center for empty clusters
                }
                let new_center: Vec<f64> = sums[i].iter().map(|s| s / counts[i] as f64).collect();
                moved += squared_distance(&centers[i], &new_center);
                centers[i] = new_center;
            }
            if moved < 1e-12 {
                break;
            }
        }
        Ok(KMeansModel { centers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{SparkConf, SparkContext};
    use rand::RngExt;

    #[test]
    fn separates_two_blobs() {
        let ctx = SparkContext::new(SparkConf::default());
        let mut rng = StdRng::seed_from_u64(3);
        let mut points = Vec::new();
        for _ in 0..500 {
            points.push(vec![
                10.0 + rng.random_range(-1.0..1.0),
                10.0 + rng.random_range(-1.0..1.0),
            ]);
            points.push(vec![
                -10.0 + rng.random_range(-1.0..1.0),
                -10.0 + rng.random_range(-1.0..1.0),
            ]);
        }
        let rdd = ctx.parallelize(points, 8);
        let model = KMeans::new(2).fit(&rdd).unwrap();
        assert_eq!(model.centers.len(), 2);
        let a = model.predict(&[10.0, 10.0]);
        let b = model.predict(&[-10.0, -10.0]);
        assert_ne!(a, b);
        // Centers converge near the blob means.
        let mut xs: Vec<f64> = model.centers.iter().map(|c| c[0]).collect();
        xs.sort_by(f64::total_cmp);
        assert!((xs[0] + 10.0).abs() < 0.5, "center near -10: {}", xs[0]);
        assert!((xs[1] - 10.0).abs() < 0.5, "center near +10: {}", xs[1]);
        // Cost is small relative to spread.
        let cost = model.cost(&rdd).unwrap();
        assert!(
            cost / 1000.0 < 1.5,
            "avg within-cluster cost {}",
            cost / 1000.0
        );
    }

    #[test]
    fn too_few_distinct_points_is_error() {
        let ctx = SparkContext::new(SparkConf::default());
        let rdd = ctx.parallelize(vec![vec![1.0, 1.0]; 10], 2);
        assert!(KMeans::new(3).fit(&rdd).is_err());
    }
}
