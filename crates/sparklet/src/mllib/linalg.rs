//! Minimal dense linear algebra for the ML library.

use crate::error::{SparkError, SparkResult};

pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Solve the dense linear system `A x = b` via Gaussian elimination
/// with partial pivoting. `a` is row-major `n × n`.
#[allow(clippy::needless_range_loop)] // index math mirrors the textbook algorithm
pub fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> SparkResult<Vec<f64>> {
    let n = b.len();
    assert!(
        a.len() == n && a.iter().all(|r| r.len() == n),
        "square system"
    );
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty range");
        if a[pivot][col].abs() < 1e-12 {
            return Err(SparkError::Usage(
                "singular system in normal equations (collinear features?)".into(),
            ));
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_axpy() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x - y = 1  →  x = 2, y = 1.
        let x = solve(vec![vec![2.0, 1.0], vec![1.0, -1.0]], vec![5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal without pivoting.
        let x = solve(vec![vec![0.0, 1.0], vec![1.0, 0.0]], vec![3.0, 4.0]).unwrap();
        assert!((x[0] - 4.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn singular_system_is_error() {
        assert!(solve(vec![vec![1.0, 2.0], vec![2.0, 4.0]], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn squared_distance_basic() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }
}
