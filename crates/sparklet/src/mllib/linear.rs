//! Linear regression via distributed normal equations.

use crate::error::{SparkError, SparkResult};
use crate::mllib::linalg::{dot, solve};
use crate::mllib::LabeledPoint;
use crate::rdd::Rdd;
use crate::scheduler::TaskContext;

/// A fitted linear model: `ŷ = intercept + w · x`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRegressionModel {
    pub intercept: f64,
    pub weights: Vec<f64>,
}

impl LinearRegressionModel {
    pub fn predict(&self, features: &[f64]) -> f64 {
        self.intercept + dot(&self.weights, features)
    }
}

/// Ordinary least squares (optionally ridge-regularized), solved by
/// aggregating the Gram matrix `Σ zzᵀ` and moment vector `Σ zy` over
/// partitions (`z = [1, x]`), then solving on the driver.
#[derive(Debug, Clone)]
pub struct LinearRegression {
    /// L2 penalty applied to the non-intercept weights.
    pub l2: f64,
}

impl Default for LinearRegression {
    fn default() -> LinearRegression {
        LinearRegression { l2: 0.0 }
    }
}

impl LinearRegression {
    pub fn fit(&self, data: &Rdd<LabeledPoint>) -> SparkResult<LinearRegressionModel> {
        let ctx = data.context().clone();
        // One pass: per-partition partial Gram + moments.
        let partials = ctx.run_job(data, |_tc: &TaskContext, points: Vec<LabeledPoint>| {
            let Some(first) = points.first() else {
                return Ok(None);
            };
            let d = first.features.len() + 1;
            let mut gram = vec![vec![0.0f64; d]; d];
            let mut moments = vec![0.0f64; d];
            for p in &points {
                if p.features.len() + 1 != d {
                    return Err(SparkError::Usage(format!(
                        "inconsistent feature dimension: {} vs {}",
                        p.features.len(),
                        d - 1
                    )));
                }
                let z: Vec<f64> = std::iter::once(1.0)
                    .chain(p.features.iter().copied())
                    .collect();
                for i in 0..d {
                    for j in i..d {
                        gram[i][j] += z[i] * z[j];
                    }
                    moments[i] += z[i] * p.label;
                }
            }
            Ok(Some((gram, moments)))
        })?;

        let mut merged: Option<(Vec<Vec<f64>>, Vec<f64>)> = None;
        for partial in partials.into_iter().flatten() {
            match merged.as_mut() {
                None => merged = Some(partial),
                Some((gram, moments)) => {
                    if gram.len() != partial.0.len() {
                        return Err(SparkError::Usage(
                            "inconsistent feature dimension across partitions".into(),
                        ));
                    }
                    for (gi, pi) in gram.iter_mut().zip(&partial.0) {
                        for (g, p) in gi.iter_mut().zip(pi) {
                            *g += p;
                        }
                    }
                    for (m, p) in moments.iter_mut().zip(&partial.1) {
                        *m += p;
                    }
                }
            }
        }
        let (mut gram, moments) =
            merged.ok_or_else(|| SparkError::Usage("cannot fit on an empty RDD".into()))?;
        let d = moments.len();
        // Mirror the upper triangle and apply ridge to non-intercept
        // diagonal entries.
        #[allow(clippy::needless_range_loop)] // symmetric-matrix index math
        for i in 0..d {
            for j in 0..i {
                gram[i][j] = gram[j][i];
            }
            if i > 0 {
                gram[i][i] += self.l2;
            }
        }
        let w = solve(gram, moments)?;
        Ok(LinearRegressionModel {
            intercept: w[0],
            weights: w[1..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{SparkConf, SparkContext};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn recovers_known_coefficients() {
        let ctx = SparkContext::new(SparkConf::default());
        let mut rng = StdRng::seed_from_u64(7);
        // y = 3 + 2 x1 - 0.5 x2 with small noise.
        let points: Vec<LabeledPoint> = (0..2000)
            .map(|_| {
                let x1: f64 = rng.random_range(-5.0..5.0);
                let x2: f64 = rng.random_range(-5.0..5.0);
                let noise: f64 = rng.random_range(-0.01..0.01);
                LabeledPoint::new(3.0 + 2.0 * x1 - 0.5 * x2 + noise, vec![x1, x2])
            })
            .collect();
        let rdd = ctx.parallelize(points, 8);
        let model = LinearRegression::default().fit(&rdd).unwrap();
        assert!((model.intercept - 3.0).abs() < 0.01, "{}", model.intercept);
        assert!((model.weights[0] - 2.0).abs() < 0.01);
        assert!((model.weights[1] + 0.5).abs() < 0.01);
        assert!((model.predict(&[1.0, 2.0]) - 4.0).abs() < 0.05);
    }

    #[test]
    fn empty_rdd_is_error() {
        let ctx = SparkContext::new(SparkConf::default());
        let rdd = ctx.parallelize(Vec::<LabeledPoint>::new(), 4);
        assert!(LinearRegression::default().fit(&rdd).is_err());
    }

    #[test]
    fn inconsistent_dimensions_rejected() {
        let ctx = SparkContext::new(SparkConf::default());
        let rdd = ctx.parallelize(
            vec![
                LabeledPoint::new(1.0, vec![1.0]),
                LabeledPoint::new(2.0, vec![1.0, 2.0]),
            ],
            1,
        );
        assert!(LinearRegression::default().fit(&rdd).is_err());
    }
}
