//! Binary logistic regression via distributed batch gradient descent.

use crate::error::{SparkError, SparkResult};
use crate::mllib::linalg::dot;
use crate::mllib::LabeledPoint;
use crate::rdd::Rdd;
use crate::scheduler::TaskContext;

/// A fitted binary logistic model.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegressionModel {
    pub intercept: f64,
    pub weights: Vec<f64>,
}

impl LogisticRegressionModel {
    /// Probability of the positive class.
    pub fn predict_probability(&self, features: &[f64]) -> f64 {
        let score = self.intercept + dot(&self.weights, features);
        1.0 / (1.0 + (-score).exp())
    }

    pub fn predict(&self, features: &[f64]) -> bool {
        self.predict_probability(features) >= 0.5
    }
}

/// Batch gradient descent over the negative log-likelihood; each
/// iteration aggregates per-partition gradient contributions through a
/// scheduler job, mirroring MLlib's `GradientDescent`.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    pub iterations: usize,
    pub step_size: f64,
    pub l2: f64,
}

impl Default for LogisticRegression {
    fn default() -> LogisticRegression {
        LogisticRegression {
            iterations: 100,
            step_size: 1.0,
            l2: 0.0,
        }
    }
}

impl LogisticRegression {
    pub fn fit(&self, data: &Rdd<LabeledPoint>) -> SparkResult<LogisticRegressionModel> {
        let ctx = data.context().clone();
        let n = data.count()? as f64;
        if n == 0.0 {
            return Err(SparkError::Usage("cannot fit on an empty RDD".into()));
        }
        let dims = ctx.run_job(data, |_tc: &TaskContext, pts: Vec<LabeledPoint>| {
            Ok(pts.first().map(|p| p.features.len()))
        })?;
        let d = dims
            .into_iter()
            .flatten()
            .next()
            .ok_or_else(|| SparkError::Usage("cannot fit on an empty RDD".into()))?;

        // w[0] is the intercept; w[1..] the feature weights.
        let mut w = vec![0.0f64; d + 1];
        for _iter in 0..self.iterations {
            let w_bcast = w.clone();
            let partials =
                ctx.run_job(data, move |_tc: &TaskContext, pts: Vec<LabeledPoint>| {
                    let mut grad = vec![0.0f64; w_bcast.len()];
                    for p in &pts {
                        if p.features.len() + 1 != w_bcast.len() {
                            return Err(SparkError::Usage("inconsistent feature dimension".into()));
                        }
                        let score = w_bcast[0] + dot(&w_bcast[1..], &p.features);
                        let prob = 1.0 / (1.0 + (-score).exp());
                        let err = prob - p.label;
                        grad[0] += err;
                        for (g, x) in grad[1..].iter_mut().zip(&p.features) {
                            *g += err * x;
                        }
                    }
                    Ok(grad)
                })?;
            let mut grad = vec![0.0f64; d + 1];
            for partial in partials {
                for (g, p) in grad.iter_mut().zip(&partial) {
                    *g += p;
                }
            }
            for (i, wi) in w.iter_mut().enumerate() {
                let reg = if i == 0 { 0.0 } else { self.l2 * *wi };
                *wi -= self.step_size * (grad[i] / n + reg);
            }
        }
        Ok(LogisticRegressionModel {
            intercept: w[0],
            weights: w[1..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{SparkConf, SparkContext};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn separates_two_classes() {
        let ctx = SparkContext::new(SparkConf::default());
        let mut rng = StdRng::seed_from_u64(11);
        // Positive class around (2, 2), negative around (-2, -2).
        let points: Vec<LabeledPoint> = (0..1000)
            .map(|i| {
                let label = (i % 2) as f64;
                let center = if label > 0.5 { 2.0 } else { -2.0 };
                let x: f64 = center + rng.random_range(-1.0..1.0);
                let y: f64 = center + rng.random_range(-1.0..1.0);
                LabeledPoint::new(label, vec![x, y])
            })
            .collect();
        let rdd = ctx.parallelize(points.clone(), 6);
        let model = LogisticRegression {
            iterations: 150,
            step_size: 1.0,
            l2: 0.0,
        }
        .fit(&rdd)
        .unwrap();
        let correct = points
            .iter()
            .filter(|p| model.predict(&p.features) == (p.label > 0.5))
            .count();
        assert!(
            correct as f64 / points.len() as f64 > 0.98,
            "accuracy {correct}/1000"
        );
        assert!(model.predict_probability(&[3.0, 3.0]) > 0.9);
        assert!(model.predict_probability(&[-3.0, -3.0]) < 0.1);
    }

    #[test]
    fn empty_rdd_is_error() {
        let ctx = SparkContext::new(SparkConf::default());
        let rdd = ctx.parallelize(Vec::<LabeledPoint>::new(), 2);
        assert!(LogisticRegression::default().fit(&rdd).is_err());
    }
}
