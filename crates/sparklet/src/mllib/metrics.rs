//! Evaluation metrics.

/// Mean squared error of paired predictions and labels.
pub fn mean_squared_error(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    pairs
        .iter()
        .map(|(pred, label)| (pred - label) * (pred - label))
        .sum::<f64>()
        / pairs.len() as f64
}

/// Fraction of correct binary predictions.
pub fn accuracy(pairs: &[(bool, bool)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    pairs.iter().filter(|(p, l)| p == l).count() as f64 / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_known_values() {
        assert_eq!(mean_squared_error(&[(1.0, 1.0), (3.0, 1.0)]), 2.0);
        assert_eq!(mean_squared_error(&[]), 0.0);
    }

    #[test]
    fn accuracy_known_values() {
        assert_eq!(
            accuracy(&[(true, true), (false, true), (false, false), (true, true)]),
            0.75
        );
        assert_eq!(accuracy(&[]), 0.0);
    }
}
