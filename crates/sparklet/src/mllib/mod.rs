//! MLlib-lite: the machine-learning library of the compute engine.
//!
//! The paper's analytics pipeline trains models in the engine over data
//! loaded from the database (V2S) and deploys them back for in-database
//! scoring (MD). We implement the three model families its examples
//! name — linear regression, (binary) logistic regression, and k-means
//! — each trained *through the scheduler* over RDD partitions, the way
//! MLlib distributes its aggregations.

pub mod kmeans;
pub mod linalg;
pub mod linear;
pub mod logistic;
pub mod metrics;
pub mod scaler;

pub use kmeans::{KMeans, KMeansModel};
pub use linear::{LinearRegression, LinearRegressionModel};
pub use logistic::{LogisticRegression, LogisticRegressionModel};
pub use scaler::StandardScaler;

/// A labeled training example.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledPoint {
    pub label: f64,
    pub features: Vec<f64>,
}

impl LabeledPoint {
    pub fn new(label: f64, features: Vec<f64>) -> LabeledPoint {
        LabeledPoint { label, features }
    }
}
