//! Feature standardization.

use crate::error::{SparkError, SparkResult};
use crate::rdd::Rdd;
use crate::scheduler::TaskContext;

/// A fitted standardizer: `x' = (x - mean) / std`.
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScalerModel {
    pub means: Vec<f64>,
    pub stds: Vec<f64>,
}

impl StandardScalerModel {
    pub fn transform_point(&self, features: &[f64]) -> Vec<f64> {
        features
            .iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(x, (m, s))| if *s > 0.0 { (x - m) / s } else { 0.0 })
            .collect()
    }

    pub fn transform(&self, data: &Rdd<Vec<f64>>) -> Rdd<Vec<f64>> {
        let model = self.clone();
        data.map(move |p| model.transform_point(&p))
    }
}

/// Computes per-feature mean and standard deviation in one distributed
/// pass (sum and sum of squares per partition).
#[derive(Debug, Clone, Default)]
pub struct StandardScaler;

impl StandardScaler {
    pub fn fit(&self, data: &Rdd<Vec<f64>>) -> SparkResult<StandardScalerModel> {
        let ctx = data.context().clone();
        let partials = ctx.run_job(data, |_tc: &TaskContext, pts: Vec<Vec<f64>>| {
            let Some(first) = pts.first() else {
                return Ok(None);
            };
            let d = first.len();
            let mut sum = vec![0.0f64; d];
            let mut sum_sq = vec![0.0f64; d];
            let mut n = 0u64;
            for p in &pts {
                if p.len() != d {
                    return Err(SparkError::Usage("inconsistent dimensions".into()));
                }
                n += 1;
                for i in 0..d {
                    sum[i] += p[i];
                    sum_sq[i] += p[i] * p[i];
                }
            }
            Ok(Some((sum, sum_sq, n)))
        })?;
        let mut total: Option<(Vec<f64>, Vec<f64>, u64)> = None;
        for p in partials.into_iter().flatten() {
            match total.as_mut() {
                None => total = Some(p),
                Some((s, q, n)) => {
                    for (a, b) in s.iter_mut().zip(&p.0) {
                        *a += b;
                    }
                    for (a, b) in q.iter_mut().zip(&p.1) {
                        *a += b;
                    }
                    *n += p.2;
                }
            }
        }
        let (sum, sum_sq, n) =
            total.ok_or_else(|| SparkError::Usage("cannot fit on an empty RDD".into()))?;
        let n = n as f64;
        let means: Vec<f64> = sum.iter().map(|s| s / n).collect();
        let stds: Vec<f64> = sum_sq
            .iter()
            .zip(&means)
            .map(|(q, m)| ((q / n - m * m).max(0.0)).sqrt())
            .collect();
        Ok(StandardScalerModel { means, stds })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{SparkConf, SparkContext};

    #[test]
    fn standardizes_to_zero_mean_unit_variance() {
        let ctx = SparkContext::new(SparkConf::default());
        let pts: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, 10.0]).collect();
        let rdd = ctx.parallelize(pts, 4);
        let model = StandardScaler.fit(&rdd).unwrap();
        assert!((model.means[0] - 49.5).abs() < 1e-9);
        assert_eq!(model.means[1], 10.0);
        assert_eq!(model.stds[1], 0.0);
        let transformed = model.transform(&rdd).collect().unwrap();
        let mean: f64 = transformed.iter().map(|p| p[0]).sum::<f64>() / transformed.len() as f64;
        assert!(mean.abs() < 1e-9);
        // Constant features map to 0 rather than dividing by zero.
        assert!(transformed.iter().all(|p| p[1] == 0.0));
    }

    #[test]
    fn empty_rdd_is_error() {
        let ctx = SparkContext::new(SparkConf::default());
        let rdd = ctx.parallelize(Vec::<Vec<f64>>::new(), 2);
        assert!(StandardScaler.fit(&rdd).is_err());
    }
}
