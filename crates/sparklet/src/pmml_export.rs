//! PMML export of trained models (the paper's Sec. 3.3 input: "Spark
//! now supports export of some models in PMML").

use pmml::{
    ClusteringModel, MiningFunction, NormalizationMethod, PmmlDocument, PmmlModel, RegressionModel,
};

use crate::mllib::{KMeansModel, LinearRegressionModel, LogisticRegressionModel};

fn feature_names(given: Option<&[String]>, d: usize) -> Vec<String> {
    match given {
        Some(names) => {
            assert_eq!(names.len(), d, "feature name count must match dimension");
            names.to_vec()
        }
        None => (0..d).map(|i| format!("x{i}")).collect(),
    }
}

/// Export a linear regression model.
pub fn linear_to_pmml(
    model: &LinearRegressionModel,
    model_name: &str,
    features: Option<&[String]>,
    target: &str,
) -> PmmlDocument {
    let names = feature_names(features, model.weights.len());
    PmmlDocument::new(
        model_name,
        "sparklet-mllib",
        PmmlModel::Regression(RegressionModel {
            function: MiningFunction::Regression,
            normalization: NormalizationMethod::None,
            intercept: model.intercept,
            coefficients: names
                .into_iter()
                .zip(model.weights.iter().copied())
                .collect(),
            target: target.to_string(),
        }),
    )
}

/// Export a binary logistic regression model (logit normalization).
pub fn logistic_to_pmml(
    model: &LogisticRegressionModel,
    model_name: &str,
    features: Option<&[String]>,
    target: &str,
) -> PmmlDocument {
    let names = feature_names(features, model.weights.len());
    PmmlDocument::new(
        model_name,
        "sparklet-mllib",
        PmmlModel::Regression(RegressionModel {
            function: MiningFunction::Classification,
            normalization: NormalizationMethod::Logit,
            intercept: model.intercept,
            coefficients: names
                .into_iter()
                .zip(model.weights.iter().copied())
                .collect(),
            target: target.to_string(),
        }),
    )
}

/// Export a k-means model.
pub fn kmeans_to_pmml(
    model: &KMeansModel,
    model_name: &str,
    features: Option<&[String]>,
) -> PmmlDocument {
    let d = model.centers.first().map(Vec::len).unwrap_or(0);
    let names = feature_names(features, d);
    PmmlDocument::new(
        model_name,
        "sparklet-mllib",
        PmmlModel::Clustering(ClusteringModel {
            fields: names,
            clusters: model
                .centers
                .iter()
                .enumerate()
                .map(|(i, c)| (i.to_string(), c.clone()))
                .collect(),
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmml::Evaluator;

    #[test]
    fn linear_export_round_trips_through_evaluator() {
        let model = LinearRegressionModel {
            intercept: 1.0,
            weights: vec![2.0, -0.5],
        };
        let doc = linear_to_pmml(&model, "m", None, "y");
        let eval = Evaluator::from_xml(&doc.to_xml()).unwrap();
        let x = [3.0, 4.0];
        assert!((eval.predict(&x).unwrap() - model.predict(&x)).abs() < 1e-12);
    }

    #[test]
    fn logistic_export_preserves_probabilities() {
        let model = LogisticRegressionModel {
            intercept: -0.25,
            weights: vec![1.5],
        };
        let doc = logistic_to_pmml(&model, "m", Some(&["f1".to_string()]), "label");
        let eval = Evaluator::from_xml(&doc.to_xml()).unwrap();
        for x in [-2.0, 0.0, 2.0] {
            assert!((eval.predict(&[x]).unwrap() - model.predict_probability(&[x])).abs() < 1e-12);
        }
        assert_eq!(eval.input_fields(), &["f1".to_string()]);
    }

    #[test]
    fn kmeans_export_matches_assignments() {
        let model = KMeansModel {
            centers: vec![vec![0.0, 0.0], vec![5.0, 5.0]],
        };
        let doc = kmeans_to_pmml(&model, "m", None);
        let eval = Evaluator::from_xml(&doc.to_xml()).unwrap();
        for p in [[1.0, 0.5], [4.0, 6.0], [-1.0, -1.0]] {
            assert_eq!(eval.predict(&p).unwrap() as usize, model.predict(&p));
        }
    }

    #[test]
    #[should_panic(expected = "feature name count")]
    fn wrong_feature_name_count_panics() {
        let model = LinearRegressionModel {
            intercept: 0.0,
            weights: vec![1.0, 2.0],
        };
        linear_to_pmml(&model, "m", Some(&["only_one".to_string()]), "y");
    }
}
