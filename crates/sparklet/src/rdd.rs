//! Resilient distributed datasets: immutable, partitioned, lazy, with
//! lineage-based recomputation.
//!
//! An RDD is a partition *source* plus the context. Transformations
//! wrap the parent source — computing partition `i` re-runs the whole
//! lineage chain for `i`, which is exactly Spark's provenance-based
//! fault-tolerance story (Sec. 2.1.2 of the paper): any partition can
//! be recomputed at any time, and a restarted task simply recomputes.

use std::sync::{Arc, OnceLock};

use crate::context::SparkContext;
use crate::error::SparkResult;
use crate::scheduler::TaskContext;

/// A source of partitioned data. Implementations must be deterministic:
/// `compute(i)` returns the same rows every time (lineage recompute).
pub trait PartitionSource<T>: Send + Sync {
    fn num_partitions(&self) -> usize;
    fn compute(&self, partition: usize) -> SparkResult<Vec<T>>;
}

/// An immutable distributed dataset.
pub struct Rdd<T> {
    ctx: SparkContext,
    source: Arc<dyn PartitionSource<T>>,
}

impl<T> Clone for Rdd<T> {
    fn clone(&self) -> Rdd<T> {
        Rdd {
            ctx: self.ctx.clone(),
            source: Arc::clone(&self.source),
        }
    }
}

struct Parallelized<T> {
    partitions: Vec<Arc<Vec<T>>>,
}

impl<T: Clone + Send + Sync> PartitionSource<T> for Parallelized<T> {
    fn num_partitions(&self) -> usize {
        self.partitions.len()
    }
    fn compute(&self, partition: usize) -> SparkResult<Vec<T>> {
        Ok(self.partitions[partition].as_ref().clone())
    }
}

struct MapSource<U, T> {
    parent: Arc<dyn PartitionSource<U>>,
    f: Arc<dyn Fn(U) -> T + Send + Sync>,
}

impl<U: Send + Sync, T: Send + Sync> PartitionSource<T> for MapSource<U, T> {
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn compute(&self, partition: usize) -> SparkResult<Vec<T>> {
        Ok(self
            .parent
            .compute(partition)?
            .into_iter()
            .map(|u| (self.f)(u))
            .collect())
    }
}

struct FilterSource<T> {
    parent: Arc<dyn PartitionSource<T>>,
    f: Arc<dyn Fn(&T) -> bool + Send + Sync>,
}

impl<T: Send + Sync> PartitionSource<T> for FilterSource<T> {
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn compute(&self, partition: usize) -> SparkResult<Vec<T>> {
        Ok(self
            .parent
            .compute(partition)?
            .into_iter()
            .filter(|t| (self.f)(t))
            .collect())
    }
}

/// Closure type of a per-partition transformation.
type PartitionFn<U, T> = dyn Fn(usize, Vec<U>) -> SparkResult<Vec<T>> + Send + Sync;

struct MapPartitionsSource<U, T> {
    parent: Arc<dyn PartitionSource<U>>,
    f: Arc<PartitionFn<U, T>>,
}

impl<U: Send + Sync, T: Send + Sync> PartitionSource<T> for MapPartitionsSource<U, T> {
    fn num_partitions(&self) -> usize {
        self.parent.num_partitions()
    }
    fn compute(&self, partition: usize) -> SparkResult<Vec<T>> {
        (self.f)(partition, self.parent.compute(partition)?)
    }
}

struct UnionSource<T> {
    left: Arc<dyn PartitionSource<T>>,
    right: Arc<dyn PartitionSource<T>>,
}

impl<T: Send + Sync> PartitionSource<T> for UnionSource<T> {
    fn num_partitions(&self) -> usize {
        self.left.num_partitions() + self.right.num_partitions()
    }
    fn compute(&self, partition: usize) -> SparkResult<Vec<T>> {
        let n = self.left.num_partitions();
        if partition < n {
            self.left.compute(partition)
        } else {
            self.right.compute(partition - n)
        }
    }
}

/// Coalesce: partition `i` of `n` concatenates an adjacent range of
/// parent partitions. No data movement between rows of a partition —
/// the paper's "simply a coalesce of many partitions into fewer
/// without any data shuffling".
struct CoalesceSource<T> {
    parent: Arc<dyn PartitionSource<T>>,
    n: usize,
}

impl<T: Send + Sync> PartitionSource<T> for CoalesceSource<T> {
    fn num_partitions(&self) -> usize {
        self.n
    }
    fn compute(&self, partition: usize) -> SparkResult<Vec<T>> {
        let parents = self.parent.num_partitions();
        let lo = parents * partition / self.n;
        let hi = parents * (partition + 1) / self.n;
        let mut out = Vec::new();
        for p in lo..hi {
            out.extend(self.parent.compute(p)?);
        }
        Ok(out)
    }
}

/// Repartition: a shuffle. All parent partitions are materialized once
/// (cached) and dealt round-robin into `n` buckets.
struct RepartitionSource<T> {
    parent: Arc<dyn PartitionSource<T>>,
    n: usize,
    cache: OnceLock<SparkResult<Vec<Arc<Vec<T>>>>>,
}

impl<T: Clone + Send + Sync> RepartitionSource<T> {
    fn buckets(&self) -> SparkResult<&[Arc<Vec<T>>]> {
        let res = self.cache.get_or_init(|| {
            let mut buckets: Vec<Vec<T>> = (0..self.n).map(|_| Vec::new()).collect();
            let mut idx = 0usize;
            for p in 0..self.parent.num_partitions() {
                for item in self.parent.compute(p)? {
                    buckets[idx % self.n].push(item);
                    idx += 1;
                }
            }
            Ok(buckets.into_iter().map(Arc::new).collect())
        });
        match res {
            Ok(b) => Ok(b),
            Err(e) => Err(e.clone()),
        }
    }
}

impl<T: Clone + Send + Sync> PartitionSource<T> for RepartitionSource<T> {
    fn num_partitions(&self) -> usize {
        self.n
    }
    fn compute(&self, partition: usize) -> SparkResult<Vec<T>> {
        Ok(self.buckets()?[partition].as_ref().clone())
    }
}

impl<T: Send + Sync + 'static> Rdd<T> {
    /// Build an RDD from a custom partition source (used by data
    /// sources whose partitions pull their own data, like the
    /// connector's per-task range queries).
    pub fn from_source(ctx: SparkContext, source: Arc<dyn PartitionSource<T>>) -> Rdd<T> {
        Rdd { ctx, source }
    }

    /// The underlying partition source.
    pub fn source(&self) -> Arc<dyn PartitionSource<T>> {
        Arc::clone(&self.source)
    }

    pub fn context(&self) -> &SparkContext {
        &self.ctx
    }

    pub fn num_partitions(&self) -> usize {
        self.source.num_partitions()
    }

    pub fn map<U: Send + Sync + 'static>(
        &self,
        f: impl Fn(T) -> U + Send + Sync + 'static,
    ) -> Rdd<U> {
        Rdd {
            ctx: self.ctx.clone(),
            source: Arc::new(MapSource {
                parent: self.source(),
                f: Arc::new(f),
            }),
        }
    }

    pub fn flat_map<U: Send + Sync + 'static, I>(
        &self,
        f: impl Fn(T) -> I + Send + Sync + 'static,
    ) -> Rdd<U>
    where
        I: IntoIterator<Item = U>,
    {
        Rdd {
            ctx: self.ctx.clone(),
            source: Arc::new(MapPartitionsSource {
                parent: self.source(),
                f: Arc::new(move |_idx, items: Vec<T>| {
                    Ok(items.into_iter().flat_map(&f).collect())
                }),
            }),
        }
    }

    pub fn filter(&self, f: impl Fn(&T) -> bool + Send + Sync + 'static) -> Rdd<T> {
        Rdd {
            ctx: self.ctx.clone(),
            source: Arc::new(FilterSource {
                parent: self.source(),
                f: Arc::new(f),
            }),
        }
    }

    pub fn map_partitions<U: Send + Sync + 'static>(
        &self,
        f: impl Fn(usize, Vec<T>) -> SparkResult<Vec<U>> + Send + Sync + 'static,
    ) -> Rdd<U> {
        Rdd {
            ctx: self.ctx.clone(),
            source: Arc::new(MapPartitionsSource {
                parent: self.source(),
                f: Arc::new(f),
            }),
        }
    }

    pub fn union(&self, other: &Rdd<T>) -> Rdd<T> {
        Rdd {
            ctx: self.ctx.clone(),
            source: Arc::new(UnionSource {
                left: self.source(),
                right: other.source(),
            }),
        }
    }

    /// Reduce to `n` partitions without shuffling (adjacent merge).
    pub fn coalesce(&self, n: usize) -> Rdd<T> {
        assert!(n > 0, "coalesce requires at least one partition");
        Rdd {
            ctx: self.ctx.clone(),
            source: Arc::new(CoalesceSource {
                parent: self.source(),
                n,
            }),
        }
    }

    /// Count rows (an action: runs a job).
    pub fn count(&self) -> SparkResult<u64> {
        let counts = self.ctx.run_job(self, |_tc: &TaskContext, items: Vec<T>| {
            Ok(items.len() as u64)
        })?;
        Ok(counts.into_iter().sum())
    }
}

impl<T: Clone + Send + Sync + 'static> Rdd<T> {
    pub(crate) fn parallelize(ctx: SparkContext, data: Vec<T>, partitions: usize) -> Rdd<T> {
        let partitions = partitions.max(1);
        let n = data.len();
        let mut parts: Vec<Arc<Vec<T>>> = Vec::with_capacity(partitions);
        let mut iter = data.into_iter();
        for i in 0..partitions {
            let lo = n * i / partitions;
            let hi = n * (i + 1) / partitions;
            parts.push(Arc::new(iter.by_ref().take(hi - lo).collect()));
        }
        Rdd {
            ctx,
            source: Arc::new(Parallelized { partitions: parts }),
        }
    }

    /// Build an RDD with an explicit partition layout (used by
    /// partitioner-aware shuffles such as the connector's pre-hashed
    /// save, paper Sec. 5).
    pub fn from_partitions(ctx: SparkContext, partitions: Vec<Vec<T>>) -> Rdd<T> {
        assert!(!partitions.is_empty(), "need at least one partition");
        Rdd {
            ctx,
            source: Arc::new(Parallelized {
                partitions: partitions.into_iter().map(Arc::new).collect(),
            }),
        }
    }

    /// Redistribute into `n` partitions (a shuffle).
    pub fn repartition(&self, n: usize) -> Rdd<T> {
        assert!(n > 0, "repartition requires at least one partition");
        Rdd {
            ctx: self.ctx.clone(),
            source: Arc::new(RepartitionSource {
                parent: self.source(),
                n,
                cache: OnceLock::new(),
            }),
        }
    }

    /// First `n` items in partition order (an action).
    pub fn take(&self, n: usize) -> SparkResult<Vec<T>> {
        // Simple strategy: collect and truncate (our partitions are in
        // memory anyway).
        let mut all = self.collect()?;
        all.truncate(n);
        Ok(all)
    }

    /// The first item, if any (an action).
    pub fn first(&self) -> SparkResult<Option<T>> {
        Ok(self.take(1)?.into_iter().next())
    }

    /// Materialize all rows on the driver (an action: runs a job).
    pub fn collect(&self) -> SparkResult<Vec<T>> {
        let parts = self
            .ctx
            .run_job(self, |_tc: &TaskContext, items: Vec<T>| Ok(items))?;
        Ok(parts.into_iter().flatten().collect())
    }
}

#[cfg(test)]
mod tests {
    use crate::context::{SparkConf, SparkContext};

    fn ctx() -> SparkContext {
        SparkContext::new(SparkConf::default())
    }

    #[test]
    fn parallelize_splits_evenly() {
        let rdd = ctx().parallelize((0..10).collect::<Vec<i32>>(), 3);
        assert_eq!(rdd.num_partitions(), 3);
        assert_eq!(rdd.collect().unwrap(), (0..10).collect::<Vec<i32>>());
        let sizes: Vec<usize> = (0..3)
            .map(|p| rdd.source().compute(p).unwrap().len())
            .collect();
        assert_eq!(sizes, vec![3, 3, 4]);
    }

    #[test]
    fn map_filter_chain_lazy_and_correct() {
        let rdd = ctx()
            .parallelize((0..100).collect::<Vec<i64>>(), 8)
            .map(|x| x * 2)
            .filter(|x| x % 3 == 0);
        let out = rdd.collect().unwrap();
        assert!(out.iter().all(|x| x % 6 == 0));
        assert_eq!(out.len(), 34);
        assert_eq!(rdd.count().unwrap(), 34);
    }

    #[test]
    fn lineage_recompute_is_deterministic() {
        let rdd = ctx()
            .parallelize((0..50).collect::<Vec<i64>>(), 5)
            .map(|x| x + 1);
        let a = rdd.source().compute(2).unwrap();
        let b = rdd.source().compute(2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn flat_map_take_first() {
        let c = ctx();
        let rdd = c
            .parallelize(vec![1i64, 2, 3], 2)
            .flat_map(|x| vec![x, x * 10]);
        assert_eq!(rdd.collect().unwrap(), vec![1, 10, 2, 20, 3, 30]);
        assert_eq!(rdd.take(3).unwrap(), vec![1, 10, 2]);
        assert_eq!(rdd.first().unwrap(), Some(1));
        let empty = c.parallelize(Vec::<i64>::new(), 1);
        assert_eq!(empty.first().unwrap(), None);
    }

    #[test]
    fn union_concatenates() {
        let c = ctx();
        let a = c.parallelize(vec![1, 2], 2);
        let b = c.parallelize(vec![3, 4, 5], 2);
        let u = a.union(&b);
        assert_eq!(u.num_partitions(), 4);
        assert_eq!(u.collect().unwrap(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn coalesce_preserves_order_without_shuffle() {
        let rdd = ctx()
            .parallelize((0..100).collect::<Vec<i64>>(), 10)
            .coalesce(3);
        assert_eq!(rdd.num_partitions(), 3);
        assert_eq!(rdd.collect().unwrap(), (0..100).collect::<Vec<i64>>());
    }

    #[test]
    fn repartition_balances() {
        let rdd = ctx()
            .parallelize((0..97).collect::<Vec<i64>>(), 2)
            .repartition(8);
        assert_eq!(rdd.num_partitions(), 8);
        let mut all = rdd.collect().unwrap();
        all.sort();
        assert_eq!(all, (0..97).collect::<Vec<i64>>());
        for p in 0..8 {
            let size = rdd.source().compute(p).unwrap().len();
            assert!((12..=13).contains(&size), "partition {p}: {size}");
        }
    }

    #[test]
    fn map_partitions_sees_partition_index() {
        let rdd = ctx()
            .parallelize((0..20).collect::<Vec<i64>>(), 4)
            .map_partitions(|idx, items| Ok(vec![(idx, items.len())]));
        let out = rdd.collect().unwrap();
        assert_eq!(out, vec![(0, 5), (1, 5), (2, 5), (3, 5)]);
    }
}
