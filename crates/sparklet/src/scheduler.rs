//! The batch task scheduler.
//!
//! An action becomes a *job*; a job launches one independent, stateless
//! task per partition. Tasks run on a bounded pool of executor slots
//! (real threads here), retry on failure up to a budget, may be
//! speculatively duplicated, and the whole job can be killed mid-run.
//! Tasks do not communicate — everything the paper's Sec. 2.2 says
//! about MapReduce-class schedulers holds by construction.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::error::{SparkError, SparkResult};
use crate::failure::{FailureInjector, FailureMode};

/// Per-attempt context handed to task closures.
#[derive(Debug, Clone, Copy)]
pub struct TaskContext {
    /// Partition index this task computes.
    pub partition: usize,
    /// 1-based attempt number (speculative copies get their own).
    pub attempt: u32,
    /// Whether this attempt is a speculative duplicate.
    pub speculative: bool,
    /// Compute-cluster node this attempt runs on.
    pub executor_node: usize,
    /// Job id (unique within the context).
    pub job_id: u64,
    /// This attempt's `sched.task` span, for parenting any spans the
    /// task body opens. [`obs::TraceCtx::NONE`] in untraced jobs.
    pub trace: obs::TraceCtx,
}

/// Scheduler configuration derived from the engine conf.
#[derive(Debug, Clone)]
pub(crate) struct SchedulerConf {
    pub nodes: usize,
    pub total_slots: usize,
    pub max_task_attempts: u32,
    /// Upper bound on real worker threads per job.
    pub thread_cap: usize,
    pub speculation: bool,
    pub speculation_multiplier: f64,
    pub speculation_quantile: f64,
    pub speculation_min_ms: u64,
}

/// How often an idle worker re-checks running tasks for stragglers.
const SPECULATION_POLL: Duration = Duration::from_millis(2);

struct JobState<R> {
    queue: VecDeque<(usize, u32, bool, Instant)>, // (partition, attempt, speculative, enqueued)
    results: Vec<Option<R>>,
    succeeded: usize,
    completions: u64,
    attempts_launched: Vec<u32>,
    live: Vec<u32>,
    /// Successful attempt runtimes (µs) — the straggler baseline.
    durations_us: Vec<u64>,
    /// Launch times of in-flight attempts, keyed by (partition, attempt).
    running: HashMap<(usize, u32), Instant>,
    /// Partitions already given a straggler copy (one per partition).
    speculated: Vec<bool>,
    fatal: Option<SparkError>,
    killed: bool,
    kill_after: Option<u64>,
    outstanding: usize,
    // Observability tallies for the finished job's `JobStats`.
    launches: u64,
    retries: u64,
    speculative: u64,
}

/// What the scheduler observed while running one job — the engine-side
/// ground truth the connector's exactly-once tests compare the event
/// log against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobStats {
    pub job_id: u64,
    pub partitions: usize,
    /// Attempts handed to executor slots (primaries + retries +
    /// speculative copies).
    pub tasks_launched: u64,
    /// Attempts that ran to completion (successfully or not).
    pub tasks_completed: u64,
    /// Retry attempts scheduled after failures.
    pub retries: u64,
    /// Speculative duplicate attempts enqueued.
    pub speculative: u64,
    pub killed: bool,
}

pub(crate) struct Scheduler {
    conf: SchedulerConf,
    /// Stats of finished jobs, by job id (bounded; oldest pruned).
    stats: Mutex<HashMap<u64, JobStats>>,
}

/// Job ids are process-global (not per-context) so the data collector's
/// `job-<id>` event labels never collide between contexts sharing the
/// process-wide collector.
static NEXT_JOB: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Finished-job stats retained before pruning the oldest half.
const STATS_CAP: usize = 1024;

impl Scheduler {
    pub fn new(conf: SchedulerConf) -> Scheduler {
        Scheduler {
            conf,
            stats: Mutex::new(HashMap::new()),
        }
    }

    /// Stats for a finished job, if still retained.
    pub fn job_stats(&self, job_id: u64) -> Option<JobStats> {
        self.stats.lock().get(&job_id).copied()
    }

    fn retain_stats(&self, stats: JobStats) {
        let mut map = self.stats.lock();
        if map.len() >= STATS_CAP {
            let mut ids: Vec<u64> = map.keys().copied().collect();
            ids.sort_unstable();
            for id in &ids[..ids.len() / 2] {
                map.remove(id);
            }
        }
        map.insert(stats.job_id, stats);
    }

    /// Run one job: `task_fn` once per partition (plus retries and
    /// speculative copies), gathering one result per partition.
    pub fn run_job<R: Send>(
        &self,
        partitions: usize,
        failures: &FailureInjector,
        task_fn: &(dyn Fn(&TaskContext) -> SparkResult<R> + Sync),
    ) -> SparkResult<Vec<R>> {
        self.run_job_traced(partitions, failures, obs::TraceCtx::NONE, task_fn)
    }

    /// [`Scheduler::run_job`] with every attempt wrapped in a
    /// `sched.task` span parented at `trace`, so the caller's trace
    /// shows each launch/retry/speculative copy with its own timing.
    pub fn run_job_traced<R: Send>(
        &self,
        partitions: usize,
        failures: &FailureInjector,
        trace: obs::TraceCtx,
        task_fn: &(dyn Fn(&TaskContext) -> SparkResult<R> + Sync),
    ) -> SparkResult<Vec<R>> {
        if partitions == 0 {
            return Ok(Vec::new());
        }
        let job_id = NEXT_JOB.fetch_add(1, std::sync::atomic::Ordering::AcqRel);

        let mut queue = VecDeque::new();
        let mut attempts_launched = vec![0u32; partitions];
        let mut live = vec![0u32; partitions];
        let mut speculative = 0u64;
        let now = Instant::now();
        for p in 0..partitions {
            queue.push_back((p, 1, false, now));
            attempts_launched[p] = 1;
            live[p] += 1;
            let copies = failures.speculative_copies(p);
            for c in 0..copies {
                queue.push_back((p, 2 + c, true, now));
                attempts_launched[p] += 1;
                live[p] += 1;
                speculative += 1;
                obs::global().emit(obs::EventKind::TaskSpeculative, |e| {
                    e.job = Some(job_label(job_id));
                    e.task = Some(p as u64);
                    e.detail = format!("attempt {}", 2 + c);
                });
                obs::global().incr(obs::names::SCHED_SPECULATIVE_TASKS);
            }
        }

        let state = Mutex::new(JobState::<R> {
            queue,
            results: (0..partitions).map(|_| None).collect(),
            succeeded: 0,
            completions: 0,
            attempts_launched,
            live,
            durations_us: Vec::new(),
            running: HashMap::new(),
            speculated: vec![false; partitions],
            fatal: None,
            killed: false,
            kill_after: failures.take_kill_after(),
            outstanding: 0,
            launches: 0,
            retries: 0,
            speculative,
        });
        let wakeup = Condvar::new();

        let workers = self
            .conf
            .total_slots
            .min(partitions * 2)
            .min(self.conf.thread_cap)
            .max(1);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    self.worker_loop(
                        partitions, job_id, trace, &state, &wakeup, failures, task_fn,
                    )
                });
            }
        });

        let mut final_state = state.into_inner();
        self.retain_stats(JobStats {
            job_id,
            partitions,
            tasks_launched: final_state.launches,
            tasks_completed: final_state.completions,
            retries: final_state.retries,
            speculative: final_state.speculative,
            killed: final_state.killed,
        });
        obs::global().incr("sched.jobs");
        obs::global().emit(obs::EventKind::JobFinish, |e| {
            e.job = Some(job_label(job_id));
            e.task = Some(partitions as u64);
            e.detail = match (&final_state.fatal, final_state.killed) {
                (_, true) => "killed".to_string(),
                (Some(err), _) => format!("failed: {err}"),
                (None, _) => "ok".to_string(),
            };
        });
        if let Some(e) = final_state.fatal.take() {
            return Err(e);
        }
        let results: Option<Vec<R>> = final_state.results.into_iter().collect();
        results.ok_or_else(|| SparkError::Usage("job ended with missing partitions".into()))
    }

    /// Straggler detection from observed latencies: once the quantile
    /// of partitions has succeeded, any in-flight attempt running past
    /// `multiplier` × the median completed runtime (floored at
    /// `speculation_min_ms`) gets one speculative duplicate. The copy
    /// races the original; the first finisher wins, exactly like a
    /// scripted speculative task.
    fn maybe_speculate<R>(&self, job_id: u64, partitions: usize, st: &mut JobState<R>) {
        if !self.conf.speculation || st.killed || st.durations_us.is_empty() {
            return;
        }
        if (st.succeeded as f64) < self.conf.speculation_quantile * partitions as f64 {
            return;
        }
        let mut sorted = st.durations_us.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let threshold_us = (median as f64 * self.conf.speculation_multiplier)
            .max(self.conf.speculation_min_ms as f64 * 1000.0) as u64;
        let stragglers: Vec<usize> = st
            .running
            .iter()
            .filter(|((p, _), started)| {
                !st.speculated[*p]
                    && st.results[*p].is_none()
                    && started.elapsed().as_micros() as u64 > threshold_us
            })
            .map(|((p, _), _)| *p)
            .collect();
        for p in stragglers {
            if st.attempts_launched[p] >= self.conf.max_task_attempts || st.speculated[p] {
                continue;
            }
            let next = st.attempts_launched[p] + 1;
            st.attempts_launched[p] = next;
            st.live[p] += 1;
            st.speculated[p] = true;
            st.speculative += 1;
            st.queue.push_back((p, next, true, Instant::now()));
            obs::global().emit(obs::EventKind::TaskSpeculative, |e| {
                e.job = Some(job_label(job_id));
                e.task = Some(p as u64);
                e.detail = format!("straggler past {threshold_us}us, attempt {next}");
            });
            obs::global().incr(obs::names::SCHED_SPECULATIVE_TASKS);
            obs::global().incr("sched.stragglers_detected");
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn worker_loop<R: Send>(
        &self,
        partitions: usize,
        job_id: u64,
        trace: obs::TraceCtx,
        state: &Mutex<JobState<R>>,
        wakeup: &Condvar,
        failures: &FailureInjector,
        task_fn: &(dyn Fn(&TaskContext) -> SparkResult<R> + Sync),
    ) {
        loop {
            let attempt = {
                let mut st = state.lock();
                loop {
                    if st.fatal.is_some() || st.killed || st.succeeded == partitions {
                        wakeup.notify_all();
                        return;
                    }
                    if let Some(a) = st.queue.pop_front() {
                        st.outstanding += 1;
                        st.launches += 1;
                        st.running.insert((a.0, a.1), Instant::now());
                        break a;
                    }
                    if st.outstanding == 0 {
                        // Nothing queued, nothing running, job not done:
                        // every remaining partition exhausted retries.
                        if st.fatal.is_none() {
                            st.fatal = Some(SparkError::Usage(
                                "scheduler stalled with incomplete partitions".into(),
                            ));
                        }
                        wakeup.notify_all();
                        return;
                    }
                    // An idle worker doubles as the straggler watchdog:
                    // wake periodically and compare in-flight runtimes
                    // against the completed-task median.
                    if wakeup
                        .wait_until(&mut st, Instant::now() + SPECULATION_POLL)
                        .timed_out()
                    {
                        self.maybe_speculate(job_id, partitions, &mut st);
                    }
                }
            };

            let (partition, attempt_no, speculative, enqueued) = attempt;
            let task_span = obs::global().span_start("sched.task", trace);
            let ctx = TaskContext {
                partition,
                attempt: attempt_no,
                speculative,
                executor_node: (partition + (attempt_no as usize - 1)) % self.conf.nodes,
                job_id,
                trace: task_span,
            };
            let slot_wait = enqueued.elapsed();
            obs::global().record_time("sched.slot_wait_us", slot_wait);
            obs::global().emit(obs::EventKind::TaskLaunch, |e| {
                e.job = Some(job_label(job_id));
                e.task = Some(partition as u64);
                e.node = Some(ctx.executor_node as u64);
                e.dur_us = slot_wait.as_micros() as u64;
                e.detail = format!(
                    "attempt {attempt_no}{}",
                    if speculative { " speculative" } else { "" }
                );
            });
            obs::global().incr("sched.tasks_launched");
            let run_started = Instant::now();

            // Failure injection wraps the user function. Panics in
            // task code are caught and treated as task failures so the
            // scheduler's bookkeeping (and retries) stay sound.
            let run_guarded = || -> SparkResult<R> {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task_fn(&ctx)))
                    .unwrap_or_else(|panic| {
                        let msg = panic
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "task panicked".to_string());
                        Err(SparkError::Usage(format!("task panic: {msg}")))
                    })
            };
            let outcome: SparkResult<R> = match failures.failure_for(partition, attempt_no) {
                Some(FailureMode::BeforeWork) => Err(SparkError::InjectedFault {
                    partition,
                    attempt: attempt_no,
                }),
                Some(FailureMode::AfterWork) => {
                    // The work happens — side effects included — and
                    // then the attempt is reported dead.
                    let _ = run_guarded();
                    Err(SparkError::InjectedFault {
                        partition,
                        attempt: attempt_no,
                    })
                }
                None => run_guarded(),
            };

            let run_time = run_started.elapsed();
            obs::global().span_finish(task_span, |s| {
                s.task = Some(partition as u64);
                s.attempt = attempt_no;
                s.node = Some(ctx.executor_node as u64);
                s.failed = outcome.is_err();
                s.detail = if speculative {
                    "speculative".to_string()
                } else {
                    String::new()
                };
            });
            obs::global().record_time("sched.task_run_us", run_time);
            obs::global().emit(obs::EventKind::TaskFinish, |e| {
                e.job = Some(job_label(job_id));
                e.task = Some(partition as u64);
                e.node = Some(ctx.executor_node as u64);
                e.dur_us = run_time.as_micros() as u64;
                e.detail = format!(
                    "attempt {attempt_no} {}",
                    if outcome.is_ok() { "ok" } else { "failed" }
                );
            });
            obs::global().incr("sched.tasks_finished");

            let mut st = state.lock();
            st.outstanding -= 1;
            st.live[partition] -= 1;
            st.completions += 1;
            st.running.remove(&(partition, attempt_no));
            if let Some(kill_at) = st.kill_after {
                if st.completions >= kill_at && !st.killed {
                    st.killed = true;
                    st.fatal = Some(SparkError::JobKilled {
                        completed_tasks: st.completions,
                    });
                    obs::global().emit(obs::EventKind::JobKill, |e| {
                        e.job = Some(job_label(job_id));
                        e.detail = format!("after {} completed tasks", st.completions);
                    });
                    obs::global().incr("sched.jobs_killed");
                }
            }
            match outcome {
                Ok(r) => {
                    st.durations_us.push(run_time.as_micros() as u64);
                    if st.results[partition].is_none() {
                        st.results[partition] = Some(r);
                        st.succeeded += 1;
                    }
                }
                Err(e) => {
                    if st.results[partition].is_none() && !st.killed {
                        if st.attempts_launched[partition] < self.conf.max_task_attempts {
                            let next = st.attempts_launched[partition] + 1;
                            st.attempts_launched[partition] = next;
                            st.live[partition] += 1;
                            st.retries += 1;
                            st.queue.push_back((partition, next, false, Instant::now()));
                            obs::global().emit(obs::EventKind::TaskRetry, |ev| {
                                ev.job = Some(job_label(job_id));
                                ev.task = Some(partition as u64);
                                ev.detail = format!("attempt {next} after: {e}");
                            });
                            obs::global().incr("sched.task_retries");
                        } else if st.live[partition] == 0 {
                            st.fatal = Some(SparkError::TaskFailed {
                                partition,
                                attempts: st.attempts_launched[partition],
                                last_error: e.to_string(),
                            });
                        }
                    }
                }
            }
            wakeup.notify_all();
        }
    }
}

/// The `job` field scheduler events carry — `job-<id>`, correlatable
/// with [`TaskContext::job_id`].
pub fn job_label(job_id: u64) -> String {
    format!("job-{job_id}")
}

// Give the failure injector a crate-visible consume-on-read for the
// job-kill trigger (scripted per job).
impl FailureInjector {
    pub(crate) fn take_kill_after(&self) -> Option<u64> {
        let v = self.kill_after();
        if v.is_some() {
            // Clear so only one job dies.
            self.clear_kill();
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn sched(slots: usize) -> Scheduler {
        Scheduler::new(SchedulerConf {
            nodes: 4,
            total_slots: slots,
            max_task_attempts: 4,
            thread_cap: 16,
            speculation: true,
            speculation_multiplier: 3.0,
            speculation_quantile: 0.5,
            speculation_min_ms: 25,
        })
    }

    #[test]
    fn runs_every_partition_once() {
        let s = sched(8);
        let failures = FailureInjector::new();
        let calls = AtomicU64::new(0);
        let results = s
            .run_job(10, &failures, &|ctx: &TaskContext| {
                calls.fetch_add(1, Ordering::AcqRel);
                Ok(ctx.partition * 2)
            })
            .unwrap();
        assert_eq!(results, (0..10).map(|p| p * 2).collect::<Vec<_>>());
        assert_eq!(calls.load(Ordering::Acquire), 10);
    }

    #[test]
    fn retries_failed_tasks() {
        let s = sched(4);
        let failures = FailureInjector::new();
        failures.fail_task(3, 1, FailureMode::BeforeWork);
        failures.fail_task(3, 2, FailureMode::BeforeWork);
        let results = s
            .run_job(5, &failures, &|ctx: &TaskContext| Ok(ctx.attempt))
            .unwrap();
        assert_eq!(results[3], 3, "partition 3 succeeded on attempt 3");
        assert_eq!(results[0], 1);
    }

    #[test]
    fn after_work_failures_rerun_side_effects() {
        let s = sched(4);
        let failures = FailureInjector::new();
        failures.fail_task(0, 1, FailureMode::AfterWork);
        let side_effects = AtomicU64::new(0);
        let results = s
            .run_job(1, &failures, &|_ctx: &TaskContext| {
                side_effects.fetch_add(1, Ordering::AcqRel);
                Ok(())
            })
            .unwrap();
        assert_eq!(results.len(), 1);
        // The work ran twice: once in the doomed attempt, once in the
        // retry — the duplication hazard of Sec. 2.2.2.
        assert_eq!(side_effects.load(Ordering::Acquire), 2);
    }

    #[test]
    fn exhausted_retries_fail_the_job() {
        let s = sched(4);
        let failures = FailureInjector::new();
        for attempt in 1..=4 {
            failures.fail_task(1, attempt, FailureMode::BeforeWork);
        }
        let err = s
            .run_job(3, &failures, &|_ctx: &TaskContext| Ok(()))
            .unwrap_err();
        assert!(matches!(err, SparkError::TaskFailed { partition: 1, .. }));
    }

    #[test]
    fn speculative_copies_run_concurrently_and_first_wins() {
        let s = sched(8);
        let failures = FailureInjector::new();
        failures.speculate(0, 2);
        let executions = AtomicU64::new(0);
        let results = s
            .run_job(2, &failures, &|ctx: &TaskContext| {
                executions.fetch_add(1, Ordering::AcqRel);
                Ok(ctx.partition)
            })
            .unwrap();
        assert_eq!(results, vec![0, 1]);
        // Partition 0 executed 3 times (primary + 2 copies), partition
        // 1 once.
        assert_eq!(executions.load(Ordering::Acquire), 4);
    }

    #[test]
    fn job_kill_aborts() {
        let s = sched(2);
        let failures = FailureInjector::new();
        failures.kill_job_after(3);
        let err = s
            .run_job(10, &failures, &|_ctx: &TaskContext| Ok(()))
            .unwrap_err();
        assert!(matches!(err, SparkError::JobKilled { .. }));
        // The next job is unaffected.
        assert!(s
            .run_job(4, &failures, &|_ctx: &TaskContext| Ok(()))
            .is_ok());
    }

    #[test]
    fn executor_nodes_round_robin() {
        let s = sched(8);
        let failures = FailureInjector::new();
        let results = s
            .run_job(8, &failures, &|ctx: &TaskContext| Ok(ctx.executor_node))
            .unwrap();
        assert_eq!(results, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn zero_partitions_is_trivially_done() {
        let s = sched(4);
        let failures = FailureInjector::new();
        let results: Vec<()> = s
            .run_job(0, &failures, &|_ctx: &TaskContext| Ok(()))
            .unwrap();
        assert!(results.is_empty());
    }

    #[test]
    fn straggler_speculation_launches_duplicate() {
        let s = Scheduler::new(SchedulerConf {
            nodes: 4,
            total_slots: 8,
            max_task_attempts: 4,
            thread_cap: 16,
            speculation: true,
            speculation_multiplier: 3.0,
            speculation_quantile: 0.5,
            speculation_min_ms: 10,
        });
        let failures = FailureInjector::new();
        // Partition 3's first attempt is a grey straggler: alive but
        // ~80ms slow while everyone else is instant. The watchdog
        // should launch a duplicate, and the duplicate (attempt 2,
        // fast) wins.
        let results = s
            .run_job(4, &failures, &|ctx: &TaskContext| {
                if ctx.partition == 3 && ctx.attempt == 1 {
                    std::thread::sleep(std::time::Duration::from_millis(80));
                }
                Ok(ctx.partition)
            })
            .unwrap();
        assert_eq!(results, vec![0, 1, 2, 3]);
        let stats = s.stats.lock().values().copied().next().unwrap();
        assert!(
            stats.speculative >= 1,
            "straggler should trigger speculation, stats: {stats:?}"
        );
    }

    #[test]
    fn speculative_failure_does_not_kill_job() {
        let s = sched(8);
        let failures = FailureInjector::new();
        failures.speculate(0, 1);
        // The speculative copy (attempt 2) dies; the primary succeeds.
        failures.fail_task(0, 2, FailureMode::BeforeWork);
        let results = s
            .run_job(1, &failures, &|ctx: &TaskContext| Ok(ctx.partition))
            .unwrap();
        assert_eq!(results, vec![0]);
    }
}
