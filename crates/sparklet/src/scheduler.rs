//! The batch task scheduler.
//!
//! An action becomes a *job*; a job launches one independent, stateless
//! task per partition. Tasks run on a bounded pool of executor slots
//! (real threads here), retry on failure up to a budget, may be
//! speculatively duplicated, and the whole job can be killed mid-run.
//! Tasks do not communicate — everything the paper's Sec. 2.2 says
//! about MapReduce-class schedulers holds by construction.

use std::collections::VecDeque;

use parking_lot::{Condvar, Mutex};

use crate::error::{SparkError, SparkResult};
use crate::failure::{FailureInjector, FailureMode};

/// Per-attempt context handed to task closures.
#[derive(Debug, Clone, Copy)]
pub struct TaskContext {
    /// Partition index this task computes.
    pub partition: usize,
    /// 1-based attempt number (speculative copies get their own).
    pub attempt: u32,
    /// Whether this attempt is a speculative duplicate.
    pub speculative: bool,
    /// Compute-cluster node this attempt runs on.
    pub executor_node: usize,
    /// Job id (unique within the context).
    pub job_id: u64,
}

/// Scheduler configuration derived from the engine conf.
#[derive(Debug, Clone)]
pub(crate) struct SchedulerConf {
    pub nodes: usize,
    pub total_slots: usize,
    pub max_task_attempts: u32,
    /// Upper bound on real worker threads per job.
    pub thread_cap: usize,
}

struct JobState<R> {
    queue: VecDeque<(usize, u32, bool)>, // (partition, attempt, speculative)
    results: Vec<Option<R>>,
    succeeded: usize,
    completions: u64,
    attempts_launched: Vec<u32>,
    live: Vec<u32>,
    fatal: Option<SparkError>,
    killed: bool,
    kill_after: Option<u64>,
    outstanding: usize,
}

pub(crate) struct Scheduler {
    conf: SchedulerConf,
    next_job: std::sync::atomic::AtomicU64,
}

impl Scheduler {
    pub fn new(conf: SchedulerConf) -> Scheduler {
        Scheduler {
            conf,
            next_job: std::sync::atomic::AtomicU64::new(1),
        }
    }

    /// Run one job: `task_fn` once per partition (plus retries and
    /// speculative copies), gathering one result per partition.
    pub fn run_job<R: Send>(
        &self,
        partitions: usize,
        failures: &FailureInjector,
        task_fn: &(dyn Fn(&TaskContext) -> SparkResult<R> + Sync),
    ) -> SparkResult<Vec<R>> {
        if partitions == 0 {
            return Ok(Vec::new());
        }
        let job_id = self
            .next_job
            .fetch_add(1, std::sync::atomic::Ordering::AcqRel);

        let mut queue = VecDeque::new();
        let mut attempts_launched = vec![0u32; partitions];
        let mut live = vec![0u32; partitions];
        for p in 0..partitions {
            queue.push_back((p, 1, false));
            attempts_launched[p] = 1;
            live[p] += 1;
            let copies = failures.speculative_copies(p);
            for c in 0..copies {
                queue.push_back((p, 2 + c, true));
                attempts_launched[p] += 1;
                live[p] += 1;
            }
        }

        let state = Mutex::new(JobState::<R> {
            queue,
            results: (0..partitions).map(|_| None).collect(),
            succeeded: 0,
            completions: 0,
            attempts_launched,
            live,
            fatal: None,
            killed: false,
            kill_after: failures.take_kill_after(),
            outstanding: 0,
        });
        let wakeup = Condvar::new();

        let workers = self
            .conf
            .total_slots
            .min(partitions * 2)
            .min(self.conf.thread_cap)
            .max(1);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    self.worker_loop(partitions, job_id, &state, &wakeup, failures, task_fn)
                });
            }
        });

        let mut final_state = state.into_inner();
        if let Some(e) = final_state.fatal.take() {
            return Err(e);
        }
        let results: Option<Vec<R>> = final_state.results.into_iter().collect();
        results.ok_or_else(|| SparkError::Usage("job ended with missing partitions".into()))
    }

    fn worker_loop<R: Send>(
        &self,
        partitions: usize,
        job_id: u64,
        state: &Mutex<JobState<R>>,
        wakeup: &Condvar,
        failures: &FailureInjector,
        task_fn: &(dyn Fn(&TaskContext) -> SparkResult<R> + Sync),
    ) {
        loop {
            let attempt = {
                let mut st = state.lock();
                loop {
                    if st.fatal.is_some() || st.killed || st.succeeded == partitions {
                        wakeup.notify_all();
                        return;
                    }
                    if let Some(a) = st.queue.pop_front() {
                        st.outstanding += 1;
                        break a;
                    }
                    if st.outstanding == 0 {
                        // Nothing queued, nothing running, job not done:
                        // every remaining partition exhausted retries.
                        if st.fatal.is_none() {
                            st.fatal = Some(SparkError::Usage(
                                "scheduler stalled with incomplete partitions".into(),
                            ));
                        }
                        wakeup.notify_all();
                        return;
                    }
                    wakeup.wait(&mut st);
                }
            };

            let (partition, attempt_no, speculative) = attempt;
            let ctx = TaskContext {
                partition,
                attempt: attempt_no,
                speculative,
                executor_node: (partition + (attempt_no as usize - 1)) % self.conf.nodes,
                job_id,
            };

            // Failure injection wraps the user function. Panics in
            // task code are caught and treated as task failures so the
            // scheduler's bookkeeping (and retries) stay sound.
            let run_guarded = || -> SparkResult<R> {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task_fn(&ctx)))
                    .unwrap_or_else(|panic| {
                        let msg = panic
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "task panicked".to_string());
                        Err(SparkError::Usage(format!("task panic: {msg}")))
                    })
            };
            let outcome: SparkResult<R> = match failures.failure_for(partition, attempt_no) {
                Some(FailureMode::BeforeWork) => Err(SparkError::InjectedFault {
                    partition,
                    attempt: attempt_no,
                }),
                Some(FailureMode::AfterWork) => {
                    // The work happens — side effects included — and
                    // then the attempt is reported dead.
                    let _ = run_guarded();
                    Err(SparkError::InjectedFault {
                        partition,
                        attempt: attempt_no,
                    })
                }
                None => run_guarded(),
            };

            let mut st = state.lock();
            st.outstanding -= 1;
            st.live[partition] -= 1;
            st.completions += 1;
            if let Some(kill_at) = st.kill_after {
                if st.completions >= kill_at && !st.killed {
                    st.killed = true;
                    st.fatal = Some(SparkError::JobKilled {
                        completed_tasks: st.completions,
                    });
                }
            }
            match outcome {
                Ok(r) => {
                    if st.results[partition].is_none() {
                        st.results[partition] = Some(r);
                        st.succeeded += 1;
                    }
                }
                Err(e) => {
                    if st.results[partition].is_none() && !st.killed {
                        if st.attempts_launched[partition] < self.conf.max_task_attempts {
                            let next = st.attempts_launched[partition] + 1;
                            st.attempts_launched[partition] = next;
                            st.live[partition] += 1;
                            st.queue.push_back((partition, next, false));
                        } else if st.live[partition] == 0 {
                            st.fatal = Some(SparkError::TaskFailed {
                                partition,
                                attempts: st.attempts_launched[partition],
                                last_error: e.to_string(),
                            });
                        }
                    }
                }
            }
            wakeup.notify_all();
        }
    }
}

// Give the failure injector a crate-visible consume-on-read for the
// job-kill trigger (scripted per job).
impl FailureInjector {
    pub(crate) fn take_kill_after(&self) -> Option<u64> {
        let v = self.kill_after();
        if v.is_some() {
            // Clear so only one job dies.
            self.clear_kill();
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn sched(slots: usize) -> Scheduler {
        Scheduler::new(SchedulerConf {
            nodes: 4,
            total_slots: slots,
            max_task_attempts: 4,
            thread_cap: 16,
        })
    }

    #[test]
    fn runs_every_partition_once() {
        let s = sched(8);
        let failures = FailureInjector::new();
        let calls = AtomicU64::new(0);
        let results = s
            .run_job(10, &failures, &|ctx: &TaskContext| {
                calls.fetch_add(1, Ordering::AcqRel);
                Ok(ctx.partition * 2)
            })
            .unwrap();
        assert_eq!(results, (0..10).map(|p| p * 2).collect::<Vec<_>>());
        assert_eq!(calls.load(Ordering::Acquire), 10);
    }

    #[test]
    fn retries_failed_tasks() {
        let s = sched(4);
        let failures = FailureInjector::new();
        failures.fail_task(3, 1, FailureMode::BeforeWork);
        failures.fail_task(3, 2, FailureMode::BeforeWork);
        let results = s
            .run_job(5, &failures, &|ctx: &TaskContext| Ok(ctx.attempt))
            .unwrap();
        assert_eq!(results[3], 3, "partition 3 succeeded on attempt 3");
        assert_eq!(results[0], 1);
    }

    #[test]
    fn after_work_failures_rerun_side_effects() {
        let s = sched(4);
        let failures = FailureInjector::new();
        failures.fail_task(0, 1, FailureMode::AfterWork);
        let side_effects = AtomicU64::new(0);
        let results = s
            .run_job(1, &failures, &|_ctx: &TaskContext| {
                side_effects.fetch_add(1, Ordering::AcqRel);
                Ok(())
            })
            .unwrap();
        assert_eq!(results.len(), 1);
        // The work ran twice: once in the doomed attempt, once in the
        // retry — the duplication hazard of Sec. 2.2.2.
        assert_eq!(side_effects.load(Ordering::Acquire), 2);
    }

    #[test]
    fn exhausted_retries_fail_the_job() {
        let s = sched(4);
        let failures = FailureInjector::new();
        for attempt in 1..=4 {
            failures.fail_task(1, attempt, FailureMode::BeforeWork);
        }
        let err = s
            .run_job(3, &failures, &|_ctx: &TaskContext| Ok(()))
            .unwrap_err();
        assert!(matches!(err, SparkError::TaskFailed { partition: 1, .. }));
    }

    #[test]
    fn speculative_copies_run_concurrently_and_first_wins() {
        let s = sched(8);
        let failures = FailureInjector::new();
        failures.speculate(0, 2);
        let executions = AtomicU64::new(0);
        let results = s
            .run_job(2, &failures, &|ctx: &TaskContext| {
                executions.fetch_add(1, Ordering::AcqRel);
                Ok(ctx.partition)
            })
            .unwrap();
        assert_eq!(results, vec![0, 1]);
        // Partition 0 executed 3 times (primary + 2 copies), partition
        // 1 once.
        assert_eq!(executions.load(Ordering::Acquire), 4);
    }

    #[test]
    fn job_kill_aborts() {
        let s = sched(2);
        let failures = FailureInjector::new();
        failures.kill_job_after(3);
        let err = s
            .run_job(10, &failures, &|_ctx: &TaskContext| Ok(()))
            .unwrap_err();
        assert!(matches!(err, SparkError::JobKilled { .. }));
        // The next job is unaffected.
        assert!(s
            .run_job(4, &failures, &|_ctx: &TaskContext| Ok(()))
            .is_ok());
    }

    #[test]
    fn executor_nodes_round_robin() {
        let s = sched(8);
        let failures = FailureInjector::new();
        let results = s
            .run_job(8, &failures, &|ctx: &TaskContext| Ok(ctx.executor_node))
            .unwrap();
        assert_eq!(results, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn zero_partitions_is_trivially_done() {
        let s = sched(4);
        let failures = FailureInjector::new();
        let results: Vec<()> = s
            .run_job(0, &failures, &|_ctx: &TaskContext| Ok(()))
            .unwrap();
        assert!(results.is_empty());
    }

    #[test]
    fn speculative_failure_does_not_kill_job() {
        let s = sched(8);
        let failures = FailureInjector::new();
        failures.speculate(0, 1);
        // The speculative copy (attempt 2) dies; the primary succeeds.
        failures.fail_task(0, 2, FailureMode::BeforeWork);
        let results = s
            .run_job(1, &failures, &|ctx: &TaskContext| Ok(ctx.partition))
            .unwrap();
        assert_eq!(results, vec![0]);
    }
}
