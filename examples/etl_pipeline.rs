//! The engine as an ETL front end for the database (paper Fig. 1's S2V
//! direction): ingest messy logs, clean and transform them in the
//! compute engine, and land them in the database with exactly-once
//! semantics — while tasks are failing and being speculated underneath.
//!
//! ```sh
//! cargo run --example etl_pipeline
//! ```

use vertica_spark_fabric::prelude::*;

/// Raw log lines, some of them malformed — the general case an ETL
/// pipeline has to survive.
fn raw_logs(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            if i % 97 == 0 {
                format!("CORRUPT###{i}")
            } else {
                let level = ["INFO", "WARN", "ERROR"][i % 3];
                format!(
                    "{};{level};svc{};{}",
                    1_700_000_000 + i,
                    i % 7,
                    (i % 31) * 3
                )
            }
        })
        .collect()
}

fn main() {
    let db = Cluster::new(ClusterConfig::default());
    let ctx = SparkContext::new(SparkConf::default());
    DefaultSource::register(&ctx, db.clone());

    // 1. Parallel parse + clean in the engine (RDD transformations).
    let logs = ctx.parallelize(raw_logs(30_000), 12);
    let parsed = logs.map(|line: String| {
        let mut parts = line.split(';');
        let ts = parts.next()?.parse::<i64>().ok()?;
        let level = parts.next()?.to_string();
        let service = parts.next()?.to_string();
        let latency_ms = parts.next()?.parse::<i64>().ok()?;
        Some(row![ts, level, service, latency_ms])
    });
    let cleaned: Vec<Row> = parsed.collect().unwrap().into_iter().flatten().collect();
    let dropped = 30_000 - cleaned.len();
    println!("parsed 30,000 raw lines; dropped {dropped} corrupt ones in the engine");

    // 2. Transform: keep only slow WARN/ERROR events.
    let schema = Schema::from_pairs(&[
        ("ts", DataType::Int64),
        ("level", DataType::Varchar),
        ("service", DataType::Varchar),
        ("latency_ms", DataType::Int64),
    ]);
    let df = ctx.create_dataframe(cleaned, schema, 12).unwrap();
    let interesting = df
        .filter(
            Expr::col("latency_ms").gt(Expr::lit(30i64)).and(
                Expr::col("level")
                    .eq(Expr::lit("ERROR"))
                    .or(Expr::col("level").eq(Expr::lit("WARN"))),
            ),
        )
        .unwrap();
    let kept = interesting.count().unwrap();
    println!("transform kept {kept} slow WARN/ERROR events");

    // 3. Land in the database exactly once — with the scheduler actively
    //    misbehaving: one task dies before working, one dies *after* all
    //    its work, and one runs a speculative duplicate.
    ctx.failures().fail_task(0, 1, FailureMode::BeforeWork);
    ctx.failures().fail_task(3, 1, FailureMode::AfterWork);
    ctx.failures().speculate(5, 1);
    interesting
        .write()
        .format(DEFAULT_SOURCE)
        .option("host", 0)
        .option("table", "slow_events")
        .option("numPartitions", 12)
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap();
    ctx.failures().clear();

    // 4. Verify from the database side.
    let mut session = db.connect(2).unwrap();
    let count = session
        .query(&QuerySpec::scan("slow_events").count())
        .unwrap()
        .count;
    println!("database now holds {count} rows (= {kept} kept rows, exactly once)");
    assert_eq!(count, kept);

    let by_service = session
        .execute(
            "SELECT service, COUNT(*) AS events, AVG(latency_ms) AS avg_latency \
             FROM slow_events GROUP BY service",
        )
        .unwrap()
        .rows()
        .unwrap();
    println!("\nslow events by service:");
    for r in &by_service.rows {
        println!(
            "  {:>5}  {:>5} events  avg {:>6.1} ms",
            r.get(0),
            r.get(1),
            r.get(2)
        );
    }

    // The permanent job log survives for auditing (paper Sec. 3.2).
    let jobs = session
        .execute("SELECT job_name, status FROM s2v_job_final_status")
        .unwrap()
        .rows()
        .unwrap();
    println!("\nS2V job audit trail:");
    for r in &jobs.rows {
        println!("  {} -> {}", r.get(0), r.get(1));
    }
}
