//! A tour of the failure modes the fabric survives — the scenarios the
//! paper's Sec. 2.2.2 enumerates — each demonstrated live:
//!
//! 1. a task dying *after* its work is done (the subtle post-commit
//!    duplication hazard),
//! 2. speculative duplicate execution,
//! 3. total engine failure mid-save (partial-load prevention + the
//!    durable final-status audit record),
//! 4. a database node going down under k-safety during a load.
//!
//! ```sh
//! cargo run --example fault_tolerance
//! ```

use vertica_spark_fabric::prelude::*;

fn schema() -> Schema {
    Schema::from_pairs(&[("id", DataType::Int64), ("v", DataType::Float64)])
}

fn rows(n: usize) -> Vec<Row> {
    (0..n).map(|i| row![i as i64, i as f64]).collect()
}

fn main() {
    let db = Cluster::new(ClusterConfig {
        k_safety: 1,
        ..ClusterConfig::default()
    });
    let ctx = SparkContext::new(SparkConf::default());
    DefaultSource::register(&ctx, db.clone());

    // --- 1 & 2: post-work failures and speculation --------------------
    let df = ctx.create_dataframe(rows(5_000), schema(), 10).unwrap();
    ctx.failures().fail_task(1, 1, FailureMode::AfterWork);
    ctx.failures().fail_task(4, 1, FailureMode::BeforeWork);
    ctx.failures().speculate(7, 2);
    df.write()
        .format(DEFAULT_SOURCE)
        .option("table", "resilient")
        .option("numPartitions", 10)
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap();
    ctx.failures().clear();

    let mut s = db.connect(0).unwrap();
    let count = s
        .query(&QuerySpec::scan("resilient").count())
        .unwrap()
        .count;
    println!(
        "save under injected failures + speculation: {count} rows \
         (expected 5000 — exactly once)"
    );
    assert_eq!(count, 5_000);

    // --- 3: total engine failure mid-save ------------------------------
    let df2 = ctx.create_dataframe(rows(20_000), schema(), 64).unwrap();
    ctx.failures().kill_job_after(5);
    let err = df2
        .write()
        .format(DEFAULT_SOURCE)
        .option("table", "resilient")
        .option("numPartitions", 64)
        .option("job_name", "crashed_job")
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap_err();
    ctx.failures().clear();
    println!("\ntotal engine failure mid-save: {err}");

    let count = s
        .query(&QuerySpec::scan("resilient").count())
        .unwrap()
        .count;
    println!("target table still holds {count} rows — no partial load");
    assert_eq!(count, 5_000);

    let audit = s
        .execute("SELECT status FROM s2v_job_final_status WHERE job_name = 'crashed_job'")
        .unwrap()
        .rows()
        .unwrap();
    println!(
        "final-status table records the dead job as: {}",
        audit.rows[0].get(0)
    );

    // --- 4: node failure under k-safety --------------------------------
    println!("\ntaking database node 2 down...");
    db.set_node_down(2);
    let loaded = ctx
        .read()
        .format(DEFAULT_SOURCE)
        .option("host", 0)
        .option("table", "resilient")
        .option("numPartitions", 16)
        .load()
        .unwrap();
    let n = loaded.count().unwrap();
    println!("V2S under a down node (k-safety 1): read {n} rows from buddy replicas");
    assert_eq!(n, 5_000);
    db.set_node_up(2);

    println!("\nall failure scenarios survived with exactly-once semantics.");
}
