//! The full analytics loop of the paper's Fig. 1: V2S → train in the
//! engine's ML library → export PMML → deploy into the database (MD) →
//! score from SQL with `PMMLPredict`.
//!
//! The dataset is an iris-like flower table, matching the paper's
//! Sec. 3.3 example query.
//!
//! ```sh
//! cargo run --example ml_pipeline
//! ```

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sparklet::mllib::{KMeans, LabeledPoint, LogisticRegression};
use sparklet::pmml_export::{kmeans_to_pmml, logistic_to_pmml};
use vertica_spark_fabric::prelude::*;

fn main() {
    let db = Cluster::new(ClusterConfig::default());
    let ctx = SparkContext::new(SparkConf::default());
    DefaultSource::register(&ctx, db.clone());

    // --- Mission-critical data lives in the database ------------------
    {
        let mut s = db.connect(0).unwrap();
        s.execute(
            "CREATE TABLE IrisTable (sepal_length FLOAT, sepal_width FLOAT, \
             petal_length FLOAT, petal_width FLOAT, species VARCHAR)",
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let rows: Vec<Row> = (0..600)
            .map(|i| {
                // Two synthetic species with separated petal geometry.
                let setosa = i % 2 == 0;
                let (pl, pw) = if setosa {
                    (
                        1.4 + rng.random_range(-0.3..0.3),
                        0.2 + rng.random_range(-0.1..0.15),
                    )
                } else {
                    (
                        4.9 + rng.random_range(-0.6..0.6),
                        1.8 + rng.random_range(-0.4..0.4),
                    )
                };
                row![
                    5.0 + rng.random_range(-0.8..0.8),
                    3.2 + rng.random_range(-0.6..0.6),
                    pl,
                    pw,
                    if setosa { "setosa" } else { "virginica" }
                ]
            })
            .collect();
        s.insert("IrisTable", rows).unwrap();
    }
    println!("seeded IrisTable with 600 flowers");

    // --- V2S: load into the engine ------------------------------------
    let df = ctx
        .read()
        .format(DEFAULT_SOURCE)
        .option("host", 0)
        .option("table", "IrisTable")
        .option("numPartitions", 8)
        .load()
        .unwrap();

    // --- Train two models with MLlib ----------------------------------
    let training = df.rdd().unwrap().map(|r: Row| {
        let label = if r.get(4).as_str().unwrap() == "virginica" {
            1.0
        } else {
            0.0
        };
        LabeledPoint::new(
            label,
            vec![
                r.get(0).as_f64().unwrap(),
                r.get(1).as_f64().unwrap(),
                r.get(2).as_f64().unwrap(),
                r.get(3).as_f64().unwrap(),
            ],
        )
    });
    let classifier = LogisticRegression::default().fit(&training).unwrap();
    println!(
        "trained logistic regression: intercept {:.3}, weights {:?}",
        classifier.intercept,
        classifier
            .weights
            .iter()
            .map(|w| (w * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );

    let points = training.map(|p: LabeledPoint| p.features);
    let clusters = KMeans::new(2).fit(&points).unwrap();
    println!("trained k-means with {} centers", clusters.centers.len());

    // --- MD: export PMML and deploy into the database ------------------
    let features = [
        "sepal_length".to_string(),
        "sepal_width".to_string(),
        "petal_length".to_string(),
        "petal_width".to_string(),
    ];
    let md = ModelDeployment::new(db.clone()).unwrap();
    md.deploy_pmml_model(
        &logistic_to_pmml(
            &classifier,
            "species_model",
            Some(&features),
            "is_virginica",
        ),
        false,
    )
    .unwrap();
    md.deploy_pmml_model(
        &kmeans_to_pmml(&clusters, "segments", Some(&features)),
        false,
    )
    .unwrap();
    for m in md.list_models().unwrap() {
        println!(
            "deployed {} ({}; {} features, {} bytes of PMML)",
            m.name, m.model_type, m.num_features, m.size_bytes
        );
    }

    // --- In-database scoring via SQL (the paper's Sec. 3.3 query) -----
    let mut s = db.connect(1).unwrap();
    let scored = s
        .execute(
            "SELECT species, PMMLPredict(sepal_length, sepal_width, petal_length, \
             petal_width USING PARAMETERS model_name='species_model') AS p \
             FROM IrisTable",
        )
        .unwrap()
        .rows()
        .unwrap();
    let correct = scored
        .rows
        .iter()
        .filter(|r| {
            let is_virginica = r.get(0).as_str().unwrap() == "virginica";
            let p = r.get(1).as_f64().unwrap();
            (p >= 0.5) == is_virginica
        })
        .count();
    println!(
        "\nPMMLPredict scored {} rows in-database; accuracy {:.1}%",
        scored.rows.len(),
        100.0 * correct as f64 / scored.rows.len() as f64
    );
    assert!(correct as f64 / scored.rows.len() as f64 > 0.98);

    let segmented = s
        .execute(
            "SELECT PMMLPredict(sepal_length, sepal_width, petal_length, petal_width \
             USING PARAMETERS model_name='segments') AS cluster, COUNT(*) \
             FROM IrisTable GROUP BY PMMLPredict(sepal_length, sepal_width, \
             petal_length, petal_width USING PARAMETERS model_name='segments')",
        )
        .unwrap()
        .rows()
        .unwrap();
    println!("k-means segments (scored in-database):");
    for r in &segmented.rows {
        println!("  cluster {} -> {} flowers", r.get(0), r.get(1));
    }
}
