//! Quickstart: stand up the fabric, move data both ways, push work down.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use vertica_spark_fabric::prelude::*;

fn main() {
    // The paper's primary configuration: a 4-node database cluster and
    // an 8-node compute cluster (Sec. 4.1's "4:8 cluster").
    let db = Cluster::new(ClusterConfig::default());
    let ctx = SparkContext::new(SparkConf::default());
    DefaultSource::register(&ctx, db.clone());

    // --- Spark → Vertica (S2V): exactly-once bulk save ---------------
    let schema = Schema::from_pairs(&[
        ("order_id", DataType::Int64),
        ("amount", DataType::Float64),
        ("customer", DataType::Varchar),
    ]);
    let rows: Vec<Row> = (0..10_000i64)
        .map(|i| row![i, (i % 997) as f64 / 10.0, format!("cust{}", i % 50)])
        .collect();
    let df = ctx.create_dataframe(rows, schema, 8).unwrap();

    df.write()
        .format(DEFAULT_SOURCE)
        .option("host", 0)
        .option("table", "orders")
        .option("numPartitions", 16)
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap();
    println!("S2V: saved 10,000 rows into table `orders` (exactly once)");

    // --- SQL on the database ------------------------------------------
    let mut session = db.connect(1).unwrap();
    let top = session
        .execute(
            "SELECT customer, COUNT(*) AS orders, SUM(amount) AS total \
             FROM orders GROUP BY customer LIMIT 5",
        )
        .unwrap()
        .rows()
        .unwrap();
    println!("\nSQL: five customer aggregates straight from the database:");
    for r in &top.rows {
        println!(
            "  {:>8}  {:>4} orders  total {:>8.1}",
            r.get(0),
            r.get(1),
            r.get(2)
        );
    }

    // --- Vertica → Spark (V2S): locality-aware load with pushdown ----
    db.recorder().clear();
    let loaded = ctx
        .read()
        .format(DEFAULT_SOURCE)
        .option("host", 0)
        .option("table", "orders")
        .option("numPartitions", 32)
        .load()
        .unwrap();
    let big = loaded
        .filter(Expr::col("amount").gt(Expr::lit(90.0)))
        .unwrap()
        .select(&["order_id", "amount"])
        .unwrap();
    println!(
        "\nV2S: filter and projection pushed down; {} rows with amount > 90 \
         crossed the wire",
        big.count().unwrap()
    );

    // The locality story: the load shuffled nothing inside the database.
    use netsim::record::NetClass;
    println!(
        "internal shuffle during this session: {} bytes (V2S's hash-range \
         queries only touch node-local segments)",
        db.recorder().total_bytes(NetClass::DbInternal)
    );
}
