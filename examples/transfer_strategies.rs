//! The three save strategies side by side (paper Sec. 3.2 + Sec. 5):
//!
//! 1. **Direct S2V** — the paper's contribution,
//! 2. **Pre-hashed S2V** — Sec. 5's future-work optimization
//!    (implemented here): zero database-internal shuffle,
//! 3. **Two-stage via a DFS landing zone** — the Spark-Redshift-style
//!    alternative Sec. 5 discusses.
//!
//! ```sh
//! cargo run --example transfer_strategies
//! ```

use netsim::record::{EventKind, NetClass, NodeRef};
use vertica_spark_fabric::prelude::*;

fn db_internal_bytes(events: &[netsim::record::Event]) -> u64 {
    events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Transfer {
                src: NodeRef::Db(_),
                dst: NodeRef::Db(_),
                class: NetClass::DbInternal,
                bytes,
                ..
            } => Some(*bytes),
            _ => None,
        })
        .sum()
}

fn main() {
    let db = Cluster::new(ClusterConfig::default());
    let ctx = SparkContext::new(SparkConf::default());
    DefaultSource::register(&ctx, db.clone());
    let dfs = dfslite::DfsClusterSim::new(dfslite::DfsConfig {
        nodes: 4,
        block_size: 1 << 18,
        replication: 3,
    });

    let schema = Schema::from_pairs(&[
        ("event_id", DataType::Int64),
        ("payload", DataType::Float64),
    ]);
    let rows: Vec<Row> = (0..20_000i64).map(|i| row![i, i as f64 * 0.5]).collect();
    let df = ctx.create_dataframe(rows, schema, 16).unwrap();

    // --- 1. Direct S2V -------------------------------------------------
    db.recorder().clear();
    df.write()
        .format(DEFAULT_SOURCE)
        .option("table", "events_direct")
        .option("numPartitions", 16)
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap();
    let direct_shuffle = db_internal_bytes(&db.recorder().drain());
    println!("direct S2V:      20,000 rows saved; internal shuffle {direct_shuffle} bytes");

    // --- 2. Pre-hashed S2V (Sec. 5) -------------------------------------
    db.recorder().clear();
    df.write()
        .format(DEFAULT_SOURCE)
        .option("table", "events_prehash")
        .option("numPartitions", 16)
        .option("prehash", true)
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap();
    let prehash_shuffle = db_internal_bytes(&db.recorder().drain());
    println!(
        "pre-hashed S2V:  20,000 rows saved; internal shuffle {prehash_shuffle} bytes \
         ({}x less)",
        direct_shuffle / prehash_shuffle.max(1)
    );

    // --- 3. Two-stage via the DFS landing zone --------------------------
    let two_stage_opts = connector::ConnectorOptions::builder("events_two_stage")
        .method(connector::WriteMethod::Dfs)
        .staging_path("/landing/events")
        .build()
        .unwrap();
    let report = connector::SaveRequest::new(&ctx, &db, &df, &two_stage_opts)
        .with_dfs(&dfs)
        .submit()
        .unwrap();
    println!(
        "two-stage:       {} rows staged as {} part files ({} bytes in the \
         landing zone), then loaded in one transaction",
        report.rows_loaded, report.part_files, report.staged_bytes
    );

    // All three produced identical tables.
    let mut s = db.connect(0).unwrap();
    for table in ["events_direct", "events_prehash", "events_two_stage"] {
        let count = s.query(&QuerySpec::scan(table).count()).unwrap().count;
        assert_eq!(count, 20_000);
    }
    println!("\nall three strategies landed identical data, exactly once.");
    println!("see `cargo run -p bench --bin ablation_prehash` / `ablation_two_stage`");
    println!("for the simulated paper-scale cost comparison.");
}
