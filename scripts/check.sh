#!/usr/bin/env bash
# The CI gate: formatting, lints, and the test suite.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

# The workspace linter runs first among the custom gates: it is
# dependency-free, builds in seconds, and fails on any determinism /
# obs-registry / error-taxonomy / panic-hygiene / SAFETY violation —
# or, via the flow-sensitive passes, any static lock-order cycle,
# blocking call under a live guard, dropped Deadline/TraceCtx, or
# deprecated save-shim caller — not explicitly excepted in
# fabriclint.allow or an inline allow comment. The JSON report lands
# in target/ for tooling that wants machine-readable findings.
echo "== fabriclint --workspace"
cargo run -q -p fabriclint -- --workspace
mkdir -p target
cargo run -q -p fabriclint -- --workspace --format json > target/fabriclint.json

echo "== cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "== cargo build --workspace --all-features"
cargo build --workspace --all-features -q

echo "== cargo test -q"
cargo test -q

# The seeded chaos schedules are the fault-tolerance gate; run them
# explicitly so a filtered test run cannot silently skip them.
echo "== cargo test -q --test chaos"
cargo test -q --test chaos

# Same for the grey-failure defenses: breaker state machine, admission
# shedding, deadline fast-fail, and counter surfacing.
echo "== cargo test -q --test resilience"
cargo test -q --test resilience

# The Tuple Mover gate: moveout/mergeout invisibility differentials,
# stats parity with COPY, dc_tuple_mover/tm.* surfacing, and the
# background-mover lock-order witness run.
echo "== cargo test -q --test tuple_mover"
cargo test -q --test tuple_mover

# The elastic-cluster gate: seeded node-add/remove/rolling-upgrade
# chaos schedules with epoch-pinned reads across the map flip.
echo "== cargo test -q --test rebalance"
cargo test -q --test rebalance

# Static-vs-dynamic lock-order diff: the suites above exported their
# runtime-witnessed acquisition edges (target/lockwitness-*.edges);
# every witnessed edge must be derivable from source by the static
# lock-order pass (exit 1 if not — an analysis soundness hole), while
# statically-possible-but-never-witnessed edges are only reported as
# coverage. The suites assert the same inclusion as tests; this step
# re-runs the diff through the CLI so the edge lists land in the log.
echo "== fabriclint --lock-graph"
witness_args=()
for f in target/lockwitness-*.edges; do
    if [ -e "$f" ]; then witness_args+=(--witness "$f"); fi
done
cargo run -q -p fabriclint -- --lock-graph ${witness_args[@]+"${witness_args[@]}"} > /dev/null

# The skipping/pushdown ablation regenerates BENCH_pushdown.json and
# asserts every cell returns the identical aggregate; its ≥5x scan and
# ≥10x wire reduction gates also run as bench lib tests above.
echo "== ablation_pushdown"
cargo run -q -p bench --bin ablation_pushdown > /dev/null

# The streaming-ingest ablation regenerates BENCH_stream.json; its
# mover-on-strictly-faster gate also runs as a bench lib test above.
echo "== ablation_stream"
cargo run -q -p bench --bin ablation_stream > /dev/null

# The elastic-cluster ablation regenerates BENCH_rebalance.json; its
# zero-failures / bounded-P99 gate also runs as a bench lib test above.
echo "== ablation_rebalance"
cargo run -q -p bench --bin ablation_rebalance > /dev/null

# The tracing overhead bench must always compile: span-layer API
# drift shows up here before it shows up in a profiling session.
echo "== cargo bench --bench trace_micro --no-run"
cargo bench -p bench --bench trace_micro --no-run -q

echo "== cargo bench --no-run"
cargo bench --workspace --no-run -q

echo "All checks passed."
