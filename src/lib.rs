//! # vertica-spark-fabric
//!
//! A from-scratch Rust reproduction of *"Building the Enterprise Fabric
//! for Big Data with Vertica and Spark Integration"* (SIGMOD 2016): an
//! MPP column-store database, a Spark-style batch compute engine, and —
//! the paper's contribution — a connector between them providing
//!
//! * **V2S**: parallel, locality-aware, epoch-consistent loads of
//!   database tables into DataFrames,
//! * **S2V**: parallel saves with exactly-once semantics under task
//!   failure, restart, speculation, and total engine failure,
//! * **MD**: PMML model deployment and in-database scoring.
//!
//! This crate re-exports the workspace's public API. Quick tour:
//!
//! ```
//! use vertica_spark_fabric::prelude::*;
//!
//! // A 4-node database and an 8-node compute engine.
//! let db = Cluster::new(ClusterConfig::default());
//! let ctx = SparkContext::new(SparkConf::default());
//! DefaultSource::register(&ctx, db.clone());
//!
//! // Make a DataFrame and save it with exactly-once semantics.
//! let schema = Schema::from_pairs(&[("id", DataType::Int64), ("x", DataType::Float64)]);
//! let rows = (0..100i64).map(|i| row![i, i as f64]).collect();
//! let df = ctx.create_dataframe(rows, schema, 4).unwrap();
//! df.write()
//!     .format(DEFAULT_SOURCE)
//!     .option("table", "points")
//!     .option("numPartitions", 8)
//!     .mode(SaveMode::Overwrite)
//!     .save()
//!     .unwrap();
//!
//! // Load it back through locality-aware range queries.
//! let loaded = ctx.read()
//!     .format(DEFAULT_SOURCE)
//!     .option("table", "points")
//!     .load()
//!     .unwrap();
//! assert_eq!(loaded.count().unwrap(), 100);
//! ```
//!
//! See `examples/` for full pipelines and `DESIGN.md` for the system
//! inventory.

pub use avrolite;
pub use baselines;
pub use common;
pub use connector;
pub use dfslite;
pub use mppdb;
pub use netsim;
pub use obs;
pub use parking_lot;
pub use pmml;
pub use sparklet;

/// The names most programs need.
pub mod prelude {
    pub use common::{row, DataType, Expr, Field, Row, Schema, Value};
    pub use connector::{DefaultSource, ModelDeployment, DEFAULT_SOURCE};
    pub use mppdb::{Cluster, ClusterConfig, CopyOptions, CopySource, QuerySpec, Session};
    pub use sparklet::{DataFrame, FailureMode, Options, SaveMode, SparkConf, SparkContext};
}
