//! Chaos suite: seeded database-side fault schedules against the
//! connector's retry/failover layer.
//!
//! Each schedule derives a workload and a [`FaultPlan`] (connection
//! refusals, mid-COPY crashes, lost commit acks, node kills) from one
//! seed, runs an S2V save plus a V2S read-back under it, and asserts
//! the exactly-once invariants:
//!
//! * the target table holds every row exactly once (exact id multiset);
//! * the phase-5 "final commit" witness appears at most once per job —
//!   *at most*, not exactly: a lost commit ack at phase 5 means the
//!   commit landed but no attempt observed itself committing, and the
//!   driver recovers the outcome from the final-status table;
//! * reads return the full committed snapshot even with a node down;
//! * a clean run performs zero retries, zero failovers, zero faults.
//!
//! Tests sharing the process-global `obs` collector are serialized
//! behind one mutex so counter deltas are attributable.

use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
mod common;

use vertica_spark_fabric::prelude::*;
use vertica_spark_fabric::{connector, mppdb, obs};

use std::time::Duration;

use connector::{ConnectorError, ConnectorOptions};
use mppdb::{FaultPlan, FaultSite, LatencyProfile};

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn setup(k_safety: usize) -> (SparkContext, std::sync::Arc<mppdb::Cluster>) {
    let db = Cluster::new(ClusterConfig {
        k_safety,
        ..ClusterConfig::default()
    });
    let ctx = SparkContext::new(SparkConf {
        nodes: 4,
        cores_per_node: 4,
        max_task_attempts: 6,
        thread_cap: 8,
        ..SparkConf::default()
    });
    DefaultSource::register(&ctx, db.clone());
    (ctx, db)
}

fn make_df(ctx: &SparkContext, rows: usize, partitions: usize) -> DataFrame {
    let schema = Schema::from_pairs(&[("id", DataType::Int64), ("x", DataType::Float64)]);
    let data: Vec<Row> = (0..rows).map(|i| row![i as i64, i as f64]).collect();
    ctx.create_dataframe(data, schema, partitions).unwrap()
}

/// Sorted ids currently in `table`, read through a plain session on the
/// first live node.
fn table_ids(db: &std::sync::Arc<mppdb::Cluster>, table: &str) -> Vec<i64> {
    let node = db.up_nodes()[0];
    let mut session = db.connect(node).unwrap();
    let result = session.query(&QuerySpec::scan(table)).unwrap();
    let mut ids: Vec<i64> = result
        .rows
        .iter()
        .map(|r| r.get(0).as_i64().unwrap())
        .collect();
    ids.sort_unstable();
    ids
}

/// One full seeded schedule: derive workload + faults from `seed`, save
/// under chaos, then read back under (different) chaos, then restore any
/// killed node and check the rebuilt replica serves the same data.
fn run_schedule(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (ctx, db) = setup(1);
    let n_rows = rng.random_range(40usize..160);
    let partitions = rng.random_range(2usize..8);
    let df = make_df(&ctx, n_rows, partitions);

    // Some schedules take a node down for the whole job: with k-safety 1
    // the cluster must absorb it.
    let killed = if rng.random_bool(0.3) {
        let n = rng.random_range(0usize..db.node_count());
        db.kill_node(n);
        Some(n)
    } else {
        None
    };

    db.faults().arm(
        FaultPlan::seeded(seed)
            .with_refuse_connect(if rng.random_bool(0.7) { 0.15 } else { 0.0 })
            .with_mid_copy_crash(if rng.random_bool(0.7) { 0.12 } else { 0.0 })
            .with_post_commit_crash(if rng.random_bool(0.5) { 0.08 } else { 0.0 })
            .with_budget(rng.random_range(1u64..5)),
    );

    let job = format!("chaos_{seed}");
    let opts = ConnectorOptions::builder("chaos_tgt")
        .num_partitions(partitions)
        .job_name(&job)
        .retry_max_attempts(10)
        .retry_deadline_ms(60_000)
        .build()
        .unwrap();
    let report = connector::SaveRequest::new(&ctx, &db, &df, &opts)
        .mode(SaveMode::Overwrite)
        .submit()
        .unwrap_or_else(|e| panic!("seed {seed}: save failed under chaos: {e}"));
    db.faults().disarm();
    assert_eq!(
        report.rows_loaded, n_rows as u64,
        "seed {seed}: reported load count"
    );

    // Exactly-once: every id present exactly once, no loss, no dupes.
    let expected: Vec<i64> = (0..n_rows as i64).collect();
    assert_eq!(table_ids(&db, "chaos_tgt"), expected, "seed {seed}: ids");

    // The phase-5 final-commit witness appears at most once. Zero is
    // legal: a post-commit fault at phase 5 commits but loses the ack,
    // and recovery reads the outcome from the final-status table.
    let snap = obs::global().snapshot();
    let witnesses = snap
        .events_of(obs::EventKind::S2vPhase)
        .filter(|e| {
            e.job.as_deref() == Some(job.as_str()) && e.detail.contains("phase 5 final commit")
        })
        .count();
    assert!(
        witnesses <= 1,
        "seed {seed}: final commit witnessed {witnesses} times"
    );

    // V2S read-back under fresh connection chaos is a full snapshot.
    db.faults().arm(
        FaultPlan::seeded(seed ^ 0x9e37_79b9)
            .with_refuse_connect(0.2)
            .with_budget(rng.random_range(1u64..4)),
    );
    let loaded = ctx
        .read()
        .format(DEFAULT_SOURCE)
        .option("table", "chaos_tgt")
        .option("numPartitions", 4)
        .option("retry_max_attempts", 10)
        .option("retry_deadline_ms", 60_000)
        .load()
        .unwrap_or_else(|e| panic!("seed {seed}: V2S open failed: {e}"));
    assert_eq!(
        loaded.count().unwrap(),
        n_rows as u64,
        "seed {seed}: V2S count under chaos"
    );
    db.faults().disarm();

    // Restoring a killed node rebuilds its replicas; the data must still
    // read back exactly once afterwards.
    if let Some(n) = killed {
        db.restore_node(n);
        assert_eq!(
            table_ids(&db, "chaos_tgt"),
            expected,
            "seed {seed}: ids after restoring node {n}"
        );
    }
}

#[test]
fn chaos_fifty_seeded_schedules_are_exactly_once() {
    let _g = lock();
    for seed in 1000..1050 {
        run_schedule(seed);
    }
}

/// One grey-failure schedule: every node gets a nominal per-site
/// service time, one node is made 10–60× slower than nominal (alive but
/// sick — the failure detector never fires), and some schedules mix in
/// fail-stop chaos on top: seeded stalls, connection refusals, mid-COPY
/// crashes, or a *different* node killed outright. An S2V save and a
/// hedged V2S read-back must still be exactly-once.
fn run_slow_schedule(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (ctx, db) = setup(1);
    let n_rows = rng.random_range(40usize..160);
    let partitions = rng.random_range(2usize..8);
    let df = make_df(&ctx, n_rows, partitions);

    let slow_node = rng.random_range(0usize..db.node_count());
    let factor = rng.random_range(10.0..60.0);
    db.faults()
        .set_latency_profile(LatencyProfile::uniform(Duration::from_micros(
            rng.random_range(100u64..300),
        )));
    db.faults().slow_node(slow_node, factor);

    let killed = if rng.random_bool(0.25) {
        let offset = rng.random_range(1usize..db.node_count());
        let n = (slow_node + offset) % db.node_count();
        db.kill_node(n);
        Some(n)
    } else {
        None
    };
    db.faults().arm(
        FaultPlan::seeded(seed)
            .with_refuse_connect(if rng.random_bool(0.5) { 0.1 } else { 0.0 })
            .with_mid_copy_crash(if rng.random_bool(0.4) { 0.1 } else { 0.0 })
            .with_stall_connect(if rng.random_bool(0.5) { 0.2 } else { 0.0 })
            .with_stall_scan(if rng.random_bool(0.5) { 0.2 } else { 0.0 })
            .with_budget(rng.random_range(1u64..5)),
    );

    let before = obs::global().snapshot();
    let job = format!("slow_{seed}");
    let opts = ConnectorOptions::builder("slow_tgt")
        .num_partitions(partitions)
        .job_name(&job)
        .retry_max_attempts(10)
        .retry_deadline_ms(60_000)
        .deadline_ms(60_000)
        .build()
        .unwrap();
    let report = connector::SaveRequest::new(&ctx, &db, &df, &opts)
        .mode(SaveMode::Overwrite)
        .submit()
        .unwrap_or_else(|e| panic!("seed {seed}: save failed under grey chaos: {e}"));
    assert_eq!(
        report.rows_loaded, n_rows as u64,
        "seed {seed}: reported load count"
    );

    // V2S read-back with hedging on: the slow node's pieces may hedge
    // onto buddies, but the snapshot is still complete.
    let loaded = ctx
        .read()
        .format(DEFAULT_SOURCE)
        .option("table", "slow_tgt")
        .option("numPartitions", 4)
        .option("retry_max_attempts", 10)
        .option("retry_deadline_ms", 60_000)
        .option("deadline_ms", 60_000)
        .option("hedge", true)
        .option("hedge_delay_ms", 8)
        .load()
        .unwrap_or_else(|e| panic!("seed {seed}: V2S open failed: {e}"));
    assert_eq!(
        loaded.count().unwrap(),
        n_rows as u64,
        "seed {seed}: V2S count under grey chaos"
    );

    // Hedging must never duplicate S2V commits: writes are single-
    // flight, so the phase-5 witness stays ≤ 1 and the commit counter
    // moves at most once for this job.
    let snap = obs::global().snapshot();
    let witnesses = snap
        .events_of(obs::EventKind::S2vPhase)
        .filter(|e| {
            e.job.as_deref() == Some(job.as_str()) && e.detail.contains("phase 5 final commit")
        })
        .count();
    assert!(
        witnesses <= 1,
        "seed {seed}: final commit witnessed {witnesses} times"
    );
    let delta = snap.counters_since(&before);
    assert!(
        delta.get("s2v.final_commits").copied().unwrap_or(0) <= 1,
        "seed {seed}: hedging duplicated a commit: {delta:?}"
    );

    db.faults().disarm();
    if let Some(n) = killed {
        db.restore_node(n);
    }

    // Exactly-once, slow node and all: exact id multiset, checked on
    // the quiesced cluster.
    let expected: Vec<i64> = (0..n_rows as i64).collect();
    assert_eq!(table_ids(&db, "slow_tgt"), expected, "seed {seed}: ids");

    // Abandoned hedge losers may still be sleeping out the slow node's
    // delay; give them a beat so they don't bleed into the next seed.
    std::thread::sleep(Duration::from_millis(30));
}

#[test]
fn chaos_twenty_slow_node_schedules_are_exactly_once() {
    let _g = lock();
    for seed in 3000..3020 {
        run_slow_schedule(seed);
    }
}

/// The acceptance bar for grey-failure resilience: with one node slowed
/// 50×, hedged buddy reads keep the summed V2S piece time within 3× of
/// a clean-run baseline — compared via the `v2s.piece_us` timer, not
/// wall clock — while the clean baseline itself records zero hedges,
/// zero sheds, and zero breaker opens.
#[test]
fn slow_node_hedged_v2s_within_3x_clean_baseline() {
    let _g = lock();
    let (ctx, db) = setup(1);
    let df = make_df(&ctx, 400, 8);
    let opts = ConnectorOptions::builder("hedge_tgt")
        .num_partitions(8)
        .build()
        .unwrap();
    connector::SaveRequest::new(&ctx, &db, &df, &opts)
        .mode(SaveMode::Overwrite)
        .submit()
        .unwrap();

    // Nominal scan service time so clean and slowed runs are measured
    // under the same cost model (factor-1.0 delays are not faults).
    db.faults().set_latency_profile(LatencyProfile {
        scan: Duration::from_millis(5),
        ..LatencyProfile::default()
    });
    let read = || {
        ctx.read()
            .format(DEFAULT_SOURCE)
            .option("table", "hedge_tgt")
            .option("numPartitions", 8)
            .option("hedge", true)
            .option("hedge_delay_ms", 15)
            .load()
            .unwrap()
            .count()
            .unwrap()
    };
    let piece_us = |snap: &obs::Snapshot| snap.timers.get("v2s.piece_us").map_or(0, |t| t.sum_us);

    // Clean baseline: every node at nominal speed.
    let before_clean = obs::global().snapshot();
    assert_eq!(read(), 400);
    let after_clean = obs::global().snapshot();
    let clean_us = piece_us(&after_clean) - piece_us(&before_clean);
    let clean_delta = after_clean.counters_since(&before_clean);
    for key in ["hedge.launched", "hedge.wins", "shed.total", "breaker.open"] {
        assert_eq!(
            clean_delta.get(key).copied().unwrap_or(0),
            0,
            "{key} must stay zero on the clean baseline: {clean_delta:?}"
        );
    }
    assert!(clean_us > 0, "baseline must observe the nominal scan cost");

    // Grey failure: one node 50× slower (250ms per scan). Hedged buddy
    // reads should absorb it.
    db.faults().slow_node(1, 50.0);
    let before_slow = obs::global().snapshot();
    assert_eq!(read(), 400);
    let after_slow = obs::global().snapshot();
    let slow_us = piece_us(&after_slow) - piece_us(&before_slow);
    let slow_delta = after_slow.counters_since(&before_slow);
    assert!(
        slow_delta.get("hedge.wins").copied().unwrap_or(0) >= 1,
        "the slowed node's pieces must be won by hedges: {slow_delta:?}"
    );
    assert!(
        slow_us <= clean_us * 3,
        "hedged read must stay within 3x of clean baseline: \
         slow {slow_us}us vs clean {clean_us}us"
    );

    db.faults().disarm();
    // Drain abandoned hedge losers still sleeping out the 250ms scans.
    std::thread::sleep(Duration::from_millis(400));
}

/// One crash-during-moveout schedule: trickle-load a table through a
/// seeded mix of WOS (`copy_direct=false`) and small direct-ROS
/// batches, snapshot the scan (rows *and* wire volume), then run
/// tuple-mover passes with [`FaultSite::Moveout`] crashes armed. A
/// crashed pass leaves whole stores untouched (every mover mutation is
/// all-or-nothing under the store write lock), so at every point —
/// before, between crashed passes, and after a clean pass completes
/// the interrupted work — the scan must return the byte-identical row
/// sequence.
fn run_moveout_schedule(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (ctx, db) = setup(0);
    let schema = Schema::from_pairs(&[("id", DataType::Int64), ("x", DataType::Float64)]);
    let n_batches = rng.random_range(4usize..9);
    let batch = rng.random_range(20usize..60);
    for b in 0..n_batches {
        let base = (b * batch) as i64;
        let rows: Vec<Row> = (0..batch as i64)
            .map(|i| row![base + i, (base + i) as f64])
            .collect();
        let partitions = rng.random_range(1usize..4);
        let df = ctx
            .create_dataframe(rows, schema.clone(), partitions)
            .unwrap();
        let opts = ConnectorOptions::builder("mover_tgt")
            .num_partitions(partitions)
            .job_name(&format!("mover_chaos_{seed}_{b}"))
            // WOS batches feed moveout; direct batches leave the small
            // ROS containers mergeout compacts.
            .copy_direct(rng.random_bool(0.5))
            .retry_max_attempts(10)
            .retry_deadline_ms(60_000)
            .build()
            .unwrap();
        connector::SaveRequest::new(&ctx, &db, &df, &opts)
            .mode(SaveMode::Append)
            .submit()
            .unwrap_or_else(|e| panic!("seed {seed}: trickle batch {b} failed: {e}"));
    }
    let n_rows = n_batches * batch;
    let expected: Vec<i64> = (0..n_rows as i64).collect();

    let scan = || {
        let mut session = db.connect(0).unwrap();
        session.query(&QuerySpec::scan("mover_tgt")).unwrap()
    };
    let baseline = scan();
    assert_eq!(
        table_ids(&db, "mover_tgt"),
        expected,
        "seed {seed}: baseline ids"
    );

    // Mover passes under seeded crash-during-moveout chaos: the scan
    // must be unchanged *during* the crashed sequence, not just after.
    let before = obs::global().snapshot();
    db.faults().arm(
        FaultPlan::seeded(seed)
            .with_moveout_crash(0.35)
            .with_budget(rng.random_range(1u64..4)),
    );
    let mut crashes = 0u64;
    for pass in 0..rng.random_range(2usize..6) {
        let report = db.mover_pass();
        crashes += report.crashed as u64;
        let mid = scan();
        assert_eq!(
            mid.rows, baseline.rows,
            "seed {seed}: rows changed during crashed mover pass {pass}"
        );
        assert_eq!(
            mid.wire_bytes(),
            baseline.wire_bytes(),
            "seed {seed}: wire volume changed during crashed mover pass {pass}"
        );
    }
    // Every fired plan fault was a moveout crash (the only site armed),
    // and each pass that reported a crash fired at least once. A pass
    // can fire more than once — it walks every table, including the
    // permanent S2V final-status table — so fired bounds crashes from
    // above.
    let fired = db.faults().disarm();
    let delta = obs::global().snapshot().counters_since(&before);
    assert_eq!(
        delta.get("fault.moveout").copied().unwrap_or(0),
        fired,
        "seed {seed}: fired faults were all moveout crashes: {delta:?}"
    );
    assert!(
        fired >= crashes,
        "seed {seed}: {crashes} crashed passes but only {fired} fired faults"
    );

    // A clean pass finishes whatever the crashes interrupted; the scan
    // is still byte-identical and the WOS fully drained.
    db.mover_pass();
    let after = scan();
    assert_eq!(
        after.rows, baseline.rows,
        "seed {seed}: rows after clean pass"
    );
    assert_eq!(
        after.wire_bytes(),
        baseline.wire_bytes(),
        "seed {seed}: wire volume after clean pass"
    );
    assert_eq!(
        table_ids(&db, "mover_tgt"),
        expected,
        "seed {seed}: final ids"
    );
}

#[test]
fn chaos_twelve_moveout_crash_schedules_preserve_scans() {
    let _g = lock();
    for seed in 6000..6012 {
        run_moveout_schedule(seed);
    }
}

/// One streaming-ingest schedule: a [`StreamWriter`] drives micro-batch
/// COPY jobs under budgeted fault chaos (connection refusals, mid-COPY
/// crashes, lost commit acks, and crash-during-moveout in the per-flush
/// mover passes). Half the schedules first simulate a driver crash — a
/// writer with the same job base streams a random prefix and is dropped
/// mid-stream — and the recovery run must replay the committed batches
/// without duplicating a single row (deterministic `{base}_mb{seq}` job
/// names hit the phase-5 "already finished" guard).
fn run_stream_schedule(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (ctx, db) = setup(0);
    let schema = Schema::from_pairs(&[("id", DataType::Int64), ("x", DataType::Float64)]);
    let n_rows = rng.random_range(100usize..300);
    let batch_rows = rng.random_range(20usize..80);
    let rows: Vec<Row> = (0..n_rows as i64).map(|i| row![i, i as f64]).collect();
    let replay = rng.random_bool(0.5);
    let opts = ConnectorOptions::builder("stream_tgt")
        .num_partitions(rng.random_range(2usize..6))
        .job_name(&format!("stream_chaos_{seed}"))
        // The age bound only fires in non-replay schedules (below);
        // replay recovery depends on deterministic row-count batching.
        .stream(batch_rows, if replay { 600_000 } else { 1 })
        .retry_max_attempts(10)
        .retry_deadline_ms(60_000)
        .build()
        .unwrap();

    if replay {
        // Simulated driver crash: stream a prefix under the same job
        // base, committing some batches, then drop the writer (its
        // buffered tail is lost — those rows were never acknowledged).
        let prefix = rng.random_range(0usize..n_rows);
        let mut writer =
            connector::StreamWriter::open(&ctx, &db, schema.clone(), &opts, SaveMode::Append)
                .unwrap();
        writer.append_rows(rows[..prefix].to_vec()).unwrap();
        drop(writer);
    }

    db.faults().arm(
        FaultPlan::seeded(seed)
            .with_refuse_connect(if rng.random_bool(0.6) { 0.12 } else { 0.0 })
            .with_mid_copy_crash(if rng.random_bool(0.6) { 0.1 } else { 0.0 })
            .with_post_commit_crash(if rng.random_bool(0.4) { 0.08 } else { 0.0 })
            .with_moveout_crash(if rng.random_bool(0.6) { 0.25 } else { 0.0 })
            .with_budget(rng.random_range(1u64..5)),
    );
    let mut writer =
        connector::StreamWriter::open(&ctx, &db, schema.clone(), &opts, SaveMode::Append)
            .unwrap_or_else(|e| panic!("seed {seed}: stream open failed: {e}"));
    let mut fed = 0;
    while fed < n_rows {
        let take = rng.random_range(1usize..2 * batch_rows).min(n_rows - fed);
        writer
            .append_rows(rows[fed..fed + take].to_vec())
            .unwrap_or_else(|e| panic!("seed {seed}: append under chaos failed: {e}"));
        fed += take;
        if !replay && rng.random_bool(0.3) {
            // Let the buffer age past the 1ms bound, then poll: the
            // age-based flush path under the same chaos.
            std::thread::sleep(Duration::from_millis(2));
            writer
                .poll()
                .unwrap_or_else(|e| panic!("seed {seed}: poll under chaos failed: {e}"));
        }
    }
    let report = writer
        .finish()
        .unwrap_or_else(|e| panic!("seed {seed}: finish under chaos failed: {e}"));
    db.faults().disarm();

    // Exactly-once across crashes, replays, and mover interference:
    // the exact id multiset, no loss, no dupes.
    let expected: Vec<i64> = (0..n_rows as i64).collect();
    assert_eq!(
        table_ids(&db, "stream_tgt"),
        expected,
        "seed {seed}: stream ids"
    );
    let floor = n_rows.div_ceil(batch_rows) as u64;
    if replay {
        assert_eq!(
            report.batches, floor,
            "seed {seed}: row-bound batching is deterministic"
        );
    } else {
        assert!(
            report.batches >= floor,
            "seed {seed}: age flushes only split batches, never merge them \
             ({} < {floor})",
            report.batches
        );
    }

    // A second full replay over the finished stream is a no-op on the
    // data: every job name resolves to "already finished".
    let mut redo =
        connector::StreamWriter::open(&ctx, &db, schema.clone(), &opts, SaveMode::Append).unwrap();
    redo.append_rows(rows.clone()).unwrap();
    redo.finish().unwrap();
    assert_eq!(
        table_ids(&db, "stream_tgt"),
        expected,
        "seed {seed}: ids after full replay"
    );
}

#[test]
fn chaos_twelve_streaming_schedules_are_exactly_once() {
    let _g = lock();
    for seed in 7000..7012 {
        run_stream_schedule(seed);
    }
}

/// The long-haul sweep: hundreds more schedules. Gated behind the
/// `chaos-long` feature so the default test run stays fast.
#[test]
#[cfg_attr(
    not(feature = "chaos-long"),
    ignore = "long chaos sweep; run with --features chaos-long"
)]
fn chaos_long_two_hundred_more_schedules() {
    let _g = lock();
    for seed in 20_000..20_200 {
        run_schedule(seed);
    }
}

/// With nothing armed and every node up, the retry layer must be
/// invisible: zero retries, zero failovers, zero injected faults.
#[test]
fn clean_run_performs_zero_retries() {
    let _g = lock();
    let (ctx, db) = setup(0);
    let df = make_df(&ctx, 200, 4);
    let before = obs::global().snapshot();

    let opts = ConnectorOptions::builder("clean_tgt")
        .num_partitions(4)
        .build()
        .unwrap();
    let report = connector::SaveRequest::new(&ctx, &db, &df, &opts)
        .mode(SaveMode::Overwrite)
        .submit()
        .unwrap();
    assert_eq!(report.rows_loaded, 200);
    let loaded = ctx
        .read()
        .format(DEFAULT_SOURCE)
        .option("table", "clean_tgt")
        .option("numPartitions", 4)
        .load()
        .unwrap();
    assert_eq!(loaded.count().unwrap(), 200);

    let delta = obs::global().snapshot().counters_since(&before);
    for key in [
        "retry.attempts",
        "retry.gave_up",
        "retry.recovered",
        "failover.connects",
        "failover.reads",
        "fault.injected",
        "hedge.launched",
        "hedge.wins",
        "shed.queue_full",
        "shed.timeout",
        "breaker.open",
        "deadline.expired",
    ] {
        assert_eq!(
            delta.get(key).copied().unwrap_or(0),
            0,
            "{key} must stay zero on a clean run"
        );
    }
}

/// Scripted mid-COPY crashes: the task's COPY dies after shipping data;
/// the retry reconnects, the staged-but-unmarked rows are rolled back by
/// the aborted transaction, and the load still lands exactly once.
#[test]
fn scripted_mid_copy_crashes_retry_and_load_once() {
    let _g = lock();
    let (ctx, db) = setup(0);
    let df = make_df(&ctx, 300, 6);
    let before = obs::global().snapshot();
    db.faults().inject_once(FaultSite::MidCopy);
    db.faults().inject_once(FaultSite::MidCopy);

    let opts = ConnectorOptions::builder("midcopy_tgt")
        .num_partitions(6)
        .retry_max_attempts(8)
        .build()
        .unwrap();
    let report = connector::SaveRequest::new(&ctx, &db, &df, &opts)
        .mode(SaveMode::Overwrite)
        .submit()
        .unwrap();
    assert_eq!(report.rows_loaded, 300);
    assert_eq!(table_ids(&db, "midcopy_tgt"), (0..300).collect::<Vec<_>>());

    let delta = obs::global().snapshot().counters_since(&before);
    assert_eq!(delta.get("fault.mid_copy").copied().unwrap_or(0), 2);
    assert!(
        delta.get("retry.attempts").copied().unwrap_or(0) >= 2,
        "each scripted crash must cost at least one retry: {delta:?}"
    );
    assert!(delta.get("retry.recovered").copied().unwrap_or(0) >= 1);
}

/// The Sec. 2.2.2 hazard, scripted: commits land but their acks are
/// lost. The retried attempt must observe the protocol tables and not
/// load a second copy.
#[test]
fn lost_commit_ack_does_not_double_load() {
    let _g = lock();
    let (ctx, db) = setup(0);
    let df = make_df(&ctx, 250, 4);
    db.faults().inject_once(FaultSite::PostCommit);
    db.faults().inject_once(FaultSite::PostCommit);

    let opts = ConnectorOptions::builder("ack_tgt")
        .num_partitions(4)
        .retry_max_attempts(8)
        .build()
        .unwrap();
    let report = connector::SaveRequest::new(&ctx, &db, &df, &opts)
        .mode(SaveMode::Overwrite)
        .submit()
        .unwrap();
    assert_eq!(report.rows_loaded, 250);
    assert_eq!(
        db.faults().disarm(),
        0,
        "scripted faults are not plan faults"
    );
    assert_eq!(table_ids(&db, "ack_tgt"), (0..250).collect::<Vec<_>>());
}

/// Scripted connection refusals: attempts rotate onto buddy nodes and
/// the save still completes exactly once.
#[test]
fn connect_refusals_fail_over_to_other_nodes() {
    let _g = lock();
    let (ctx, db) = setup(1);
    let df = make_df(&ctx, 180, 4);
    let before = obs::global().snapshot();
    for _ in 0..3 {
        db.faults().inject_once(FaultSite::Connect);
    }

    let opts = ConnectorOptions::builder("refuse_tgt")
        .num_partitions(4)
        .retry_max_attempts(8)
        .build()
        .unwrap();
    let report = connector::SaveRequest::new(&ctx, &db, &df, &opts)
        .mode(SaveMode::Overwrite)
        .submit()
        .unwrap();
    assert_eq!(report.rows_loaded, 180);
    assert_eq!(table_ids(&db, "refuse_tgt"), (0..180).collect::<Vec<_>>());

    let delta = obs::global().snapshot().counters_since(&before);
    assert_eq!(delta.get("fault.connect_refused").copied().unwrap_or(0), 3);
}

/// Killing a node mid-fleet: V2S pieces that prefer the dead node fail
/// over to its k-safety buddies (`failover.reads`), sessions pinned to
/// the dead node fail with a connection error, and restoring the node
/// rebuilds its replicas so it can serve reads again.
#[test]
fn node_kill_fails_reads_over_and_restore_rebuilds() {
    let _g = lock();
    let (ctx, db) = setup(1);
    let df = make_df(&ctx, 400, 8);
    let opts = ConnectorOptions::builder("failover_tgt")
        .num_partitions(8)
        .build()
        .unwrap();
    connector::SaveRequest::new(&ctx, &db, &df, &opts)
        .mode(SaveMode::Overwrite)
        .submit()
        .unwrap();

    let before = obs::global().snapshot();
    db.kill_node(2);
    assert!(db.connect(2).is_err(), "dead node refuses sessions");

    let loaded = ctx
        .read()
        .format(DEFAULT_SOURCE)
        .option("table", "failover_tgt")
        .option("numPartitions", 4)
        .load()
        .unwrap();
    assert_eq!(loaded.count().unwrap(), 400);
    let delta = obs::global().snapshot().counters_since(&before);
    assert!(
        delta.get("failover.reads").copied().unwrap_or(0) >= 1,
        "pieces preferring the dead node must fail over: {delta:?}"
    );

    // Restore node 2, then kill a *different* node: the rebuilt replicas
    // on node 2 now have to carry their share of the reads.
    db.restore_node(2);
    db.kill_node(3);
    assert_eq!(
        table_ids(&db, "failover_tgt"),
        (0..400).collect::<Vec<_>>(),
        "rebuilt replicas serve the full table"
    );
    db.restore_node(3);
}

/// A node dying before an aggregate-pushdown read must not change the
/// answer *or* the merge count: the driver folds exactly one partial
/// set per piece, even when pieces retry and fail over to buddies. A
/// double merge would silently double counts and sums, so the counter
/// assertion is exact, not a lower bound.
#[test]
fn node_kill_mid_aggregate_merges_partials_exactly_once() {
    use vertica_spark_fabric::common::agg::{AggCall, AggFunc};

    let _g = lock();
    let (ctx, db) = setup(1);
    let df = make_df(&ctx, 400, 8);
    let opts = ConnectorOptions::builder("agg_kill_tgt")
        .num_partitions(8)
        .build()
        .unwrap();
    connector::SaveRequest::new(&ctx, &db, &df, &opts)
        .mode(SaveMode::Overwrite)
        .submit()
        .unwrap();

    db.kill_node(2);
    let loaded = ctx
        .read()
        .format(DEFAULT_SOURCE)
        .option("table", "agg_kill_tgt")
        .load()
        .unwrap();
    let before = obs::global().snapshot();
    let out = loaded
        .agg(
            &[],
            vec![
                AggCall::count_star(),
                AggCall::new(AggFunc::Sum, "x"),
                AggCall::new(AggFunc::Min, "id"),
                AggCall::new(AggFunc::Max, "id"),
            ],
        )
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(out.len(), 1, "one global group");
    assert_eq!(out[0].get(0), &Value::Int64(400), "count survives the kill");
    assert_eq!(out[0].get(1), &Value::Float64(79800.0), "sum of 0..400");
    assert_eq!(out[0].get(2), &Value::Int64(0));
    assert_eq!(out[0].get(3), &Value::Int64(399));

    let delta = obs::global().snapshot().counters_since(&before);
    // Without an explicit numPartitions the aggregate plan is one piece
    // per segment: exactly 4 partial merges, dead node or not.
    assert_eq!(
        delta.get("agg.pushdown.partials_merged").copied(),
        Some(4),
        "exactly one merge per piece: {delta:?}"
    );
    assert!(
        delta.get("failover.reads").copied().unwrap_or(0) >= 1,
        "the dead node's piece must fail over to a buddy: {delta:?}"
    );

    // Restored node serves the same aggregate, still exactly-once.
    db.restore_node(2);
    let before = obs::global().snapshot();
    let healthy = loaded
        .agg(&["id"], vec![AggCall::count_star()])
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(healthy.len(), 400, "grouped aggregate sees every row once");
    let delta = obs::global().snapshot().counters_since(&before);
    assert_eq!(
        delta.get("agg.pushdown.partials_merged").copied(),
        Some(4),
        "healthy run merges once per piece too: {delta:?}"
    );
}

/// When no node answers, retries exhaust into a typed, inspectable
/// error — and once the cluster is back, the same save goes through.
#[test]
fn retries_exhaust_into_typed_errors_and_recover() {
    let _g = lock();
    let (ctx, db) = setup(0);
    let df = make_df(&ctx, 50, 2);
    for n in 0..db.node_count() {
        db.kill_node(n);
    }

    let before = obs::global().snapshot();
    let opts = ConnectorOptions::builder("dark_tgt")
        .num_partitions(2)
        .retry_max_attempts(2)
        .retry_deadline_ms(2_000)
        .build()
        .unwrap();
    let err = connector::SaveRequest::new(&ctx, &db, &df, &opts)
        .mode(SaveMode::Overwrite)
        .submit()
        .unwrap_err();
    match &err {
        ConnectorError::RetriesExhausted { last, .. } => {
            assert!(last.is_transient(), "gave up on a transient error")
        }
        ConnectorError::DeadlineExceeded { .. } | ConnectorError::NoLiveNodes => {}
        other => panic!("expected a retry-exhaustion error, got {other}"),
    }
    let delta = obs::global().snapshot().counters_since(&before);
    assert!(delta.get("retry.gave_up").copied().unwrap_or(0) >= 1);

    for n in 0..db.node_count() {
        db.restore_node(n);
    }
    let report = connector::SaveRequest::new(&ctx, &db, &df, &opts)
        .mode(SaveMode::Overwrite)
        .submit()
        .unwrap();
    assert_eq!(report.rows_loaded, 50);
    assert_eq!(table_ids(&db, "dark_tgt"), (0..50).collect::<Vec<_>>());
}

/// Static/dynamic lock-graph cross-check: drive one seeded chaos
/// schedule, then require every runtime-witnessed lock-order edge (from
/// this whole binary's run so far) to be derivable by fabriclint's
/// static lock-order pass. Also exports the witnessed edges for the
/// `fabriclint --lock-graph --witness` CLI diff in check.sh.
#[test]
fn witnessed_lock_edges_are_statically_derivable() {
    let _g = lock();
    run_schedule(0x10CD);
    common::assert_witness_subgraph("chaos");
}
