//! Shared helpers for the integration suites.

use std::path::Path;

/// Assert the runtime lock-order witness is a subgraph of the static
/// lock-order graph fabriclint derives from source: every edge the
/// suite actually drove at runtime must be statically derivable, or
/// the static analysis has lost a guard/alias and its cycle check can
/// no longer be trusted. Also writes the witnessed edges to
/// `target/lockwitness-<suite>.edges` so `fabriclint --lock-graph
/// --witness <file>` can re-run the same diff from the CLI.
///
/// The witness only records in debug builds; release test runs skip.
pub fn assert_witness_subgraph(suite: &str) {
    if !parking_lot::witness::active() {
        return;
    }
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let text = parking_lot::witness::export_edges_text();
    let target = root.join("target");
    std::fs::create_dir_all(&target).ok();
    std::fs::write(target.join(format!("lockwitness-{suite}.edges")), &text).ok();

    let graph = fabriclint::lock_graph_workspace(root).expect("lint workspace sources");
    let mut missing = Vec::new();
    for line in text.lines() {
        let mut cols = line.split('\t');
        if let (Some(from), Some(to)) = (cols.next(), cols.next()) {
            if !graph.has_edge(from, to) {
                missing.push(format!("{from} -> {to}"));
            }
        }
    }
    assert!(
        missing.is_empty(),
        "witnessed lock edges not statically derivable (the static-lock-order \
         analysis lost a guard or an alias; fix the analyzer, not this test):\n  {}",
        missing.join("\n  ")
    );
}
