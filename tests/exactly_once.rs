//! Property-based exactly-once testing: randomized failure schedules
//! over randomized workloads must never lose or duplicate a row.

use proptest::prelude::*;
use vertica_spark_fabric::prelude::*;

fn setup() -> (SparkContext, std::sync::Arc<mppdb::Cluster>) {
    let db = Cluster::new(ClusterConfig::default());
    let ctx = SparkContext::new(SparkConf {
        nodes: 4,
        cores_per_node: 4,
        max_task_attempts: 6,
        thread_cap: 8,
    });
    DefaultSource::register(&ctx, db.clone());
    (ctx, db)
}

#[derive(Debug, Clone)]
struct FailurePlanSpec {
    /// `(partition, attempt, after_work)` scripted failures.
    scripted: Vec<(usize, u32, bool)>,
    /// `(partition, copies)` speculation.
    speculative: Vec<(usize, u32)>,
}

fn arb_plan(partitions: usize) -> impl Strategy<Value = FailurePlanSpec> {
    let scripted = proptest::collection::vec((0..partitions, 1u32..3, any::<bool>()), 0..4);
    let speculative = proptest::collection::vec((0..partitions, 1u32..3), 0..2);
    (scripted, speculative).prop_map(|(scripted, speculative)| FailurePlanSpec {
        scripted,
        speculative,
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    #[test]
    fn s2v_is_exactly_once_under_random_failures(
        rows in 50usize..400,
        partitions in 2usize..12,
        plan in arb_plan(12),
    ) {
        let (ctx, db) = setup();
        let schema = Schema::from_pairs(&[("id", DataType::Int64), ("x", DataType::Float64)]);
        let data: Vec<Row> = (0..rows).map(|i| row![i as i64, i as f64]).collect();
        let df = ctx.create_dataframe(data, schema, partitions).unwrap();

        for (p, attempt, after) in &plan.scripted {
            if *p < partitions {
                let mode = if *after { FailureMode::AfterWork } else { FailureMode::BeforeWork };
                ctx.failures().fail_task(*p, *attempt, mode);
            }
        }
        for (p, copies) in &plan.speculative {
            if *p < partitions {
                ctx.failures().speculate(*p, *copies);
            }
        }

        df.write()
            .format(DEFAULT_SOURCE)
            .options(Options::new().with("table", "prop_target").with("numPartitions", partitions))
            .mode(SaveMode::Overwrite)
            .save()
            .unwrap();
        ctx.failures().clear();

        let mut s = db.connect(0).unwrap();
        let result = s.query(&QuerySpec::scan("prop_target")).unwrap();
        prop_assert_eq!(result.rows.len(), rows, "row count");
        let mut ids: Vec<i64> = result.rows.iter().map(|r| r.get(0).as_i64().unwrap()).collect();
        ids.sort();
        let expected: Vec<i64> = (0..rows as i64).collect();
        prop_assert_eq!(ids, expected, "every id exactly once");
    }

    #[test]
    fn v2s_load_is_complete_under_random_failures(
        rows in 50usize..300,
        partitions in 2usize..16,
        plan in arb_plan(16),
    ) {
        let (ctx, db) = setup();
        {
            let mut s = db.connect(0).unwrap();
            s.execute("CREATE TABLE prop_src (id INT, x FLOAT)").unwrap();
            s.insert("prop_src", (0..rows).map(|i| row![i as i64, 0.5f64]).collect()).unwrap();
        }
        for (p, attempt, after) in &plan.scripted {
            if *p < partitions {
                let mode = if *after { FailureMode::AfterWork } else { FailureMode::BeforeWork };
                ctx.failures().fail_task(*p, *attempt, mode);
            }
        }
        for (p, copies) in &plan.speculative {
            if *p < partitions {
                ctx.failures().speculate(*p, *copies);
            }
        }
        let loaded = ctx
            .read()
            .format(DEFAULT_SOURCE)
            .option("table", "prop_src")
            .option("numPartitions", partitions)
            .load()
            .unwrap()
            .collect()
            .unwrap();
        ctx.failures().clear();
        prop_assert_eq!(loaded.len(), rows);
        let mut ids: Vec<i64> = loaded.iter().map(|r| r.get(0).as_i64().unwrap()).collect();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), rows, "no duplicated rows from retried tasks");
    }
}
