//! Property-based exactly-once testing: randomized failure schedules
//! over randomized workloads must never lose or duplicate a row.

use proptest::prelude::*;
use vertica_spark_fabric::prelude::*;

fn setup() -> (SparkContext, std::sync::Arc<mppdb::Cluster>) {
    let db = Cluster::new(ClusterConfig::default());
    let ctx = SparkContext::new(SparkConf {
        nodes: 4,
        cores_per_node: 4,
        max_task_attempts: 6,
        thread_cap: 8,
        ..SparkConf::default()
    });
    DefaultSource::register(&ctx, db.clone());
    (ctx, db)
}

#[derive(Debug, Clone)]
struct FailurePlanSpec {
    /// `(partition, attempt, after_work)` scripted failures.
    scripted: Vec<(usize, u32, bool)>,
    /// `(partition, copies)` speculation.
    speculative: Vec<(usize, u32)>,
}

fn arb_plan(partitions: usize) -> impl Strategy<Value = FailurePlanSpec> {
    let scripted = proptest::collection::vec((0..partitions, 1u32..3, any::<bool>()), 0..4);
    let speculative = proptest::collection::vec((0..partitions, 1u32..3), 0..2);
    (scripted, speculative).prop_map(|(scripted, speculative)| FailurePlanSpec {
        scripted,
        speculative,
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    #[test]
    fn s2v_is_exactly_once_under_random_failures(
        rows in 50usize..400,
        partitions in 2usize..12,
        plan in arb_plan(12),
    ) {
        let (ctx, db) = setup();
        let schema = Schema::from_pairs(&[("id", DataType::Int64), ("x", DataType::Float64)]);
        let data: Vec<Row> = (0..rows).map(|i| row![i as i64, i as f64]).collect();
        let df = ctx.create_dataframe(data, schema, partitions).unwrap();

        for (p, attempt, after) in &plan.scripted {
            if *p < partitions {
                let mode = if *after { FailureMode::AfterWork } else { FailureMode::BeforeWork };
                ctx.failures().fail_task(*p, *attempt, mode);
            }
        }
        for (p, copies) in &plan.speculative {
            if *p < partitions {
                ctx.failures().speculate(*p, *copies);
            }
        }

        df.write()
            .format(DEFAULT_SOURCE)
            .options(Options::new().with("table", "prop_target").with("numPartitions", partitions))
            .mode(SaveMode::Overwrite)
            .save()
            .unwrap();
        ctx.failures().clear();

        let mut s = db.connect(0).unwrap();
        let result = s.query(&QuerySpec::scan("prop_target")).unwrap();
        prop_assert_eq!(result.rows.len(), rows, "row count");
        let mut ids: Vec<i64> = result.rows.iter().map(|r| r.get(0).as_i64().unwrap()).collect();
        ids.sort();
        let expected: Vec<i64> = (0..rows as i64).collect();
        prop_assert_eq!(ids, expected, "every id exactly once");
    }

    #[test]
    fn v2s_load_is_complete_under_random_failures(
        rows in 50usize..300,
        partitions in 2usize..16,
        plan in arb_plan(16),
    ) {
        let (ctx, db) = setup();
        {
            let mut s = db.connect(0).unwrap();
            s.execute("CREATE TABLE prop_src (id INT, x FLOAT)").unwrap();
            s.insert("prop_src", (0..rows).map(|i| row![i as i64, 0.5f64]).collect()).unwrap();
        }
        for (p, attempt, after) in &plan.scripted {
            if *p < partitions {
                let mode = if *after { FailureMode::AfterWork } else { FailureMode::BeforeWork };
                ctx.failures().fail_task(*p, *attempt, mode);
            }
        }
        for (p, copies) in &plan.speculative {
            if *p < partitions {
                ctx.failures().speculate(*p, *copies);
            }
        }
        let loaded = ctx
            .read()
            .format(DEFAULT_SOURCE)
            .option("table", "prop_src")
            .option("numPartitions", partitions)
            .load()
            .unwrap()
            .collect()
            .unwrap();
        ctx.failures().clear();
        prop_assert_eq!(loaded.len(), rows);
        let mut ids: Vec<i64> = loaded.iter().map(|r| r.get(0).as_i64().unwrap()).collect();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), rows, "no duplicated rows from retried tasks");
    }
}

/// Deterministic event-log witness: under task kills and speculative
/// duplicates, the data collector must record exactly one phase-5
/// final-commit event for the job, and its per-job scheduler events
/// must match the scheduler's own `JobStats` ground truth.
#[test]
fn event_log_records_exactly_one_final_commit_under_failures() {
    // Scripted speculation only: the organic straggler watchdog is
    // timing-dependent and can complete a partition before its scripted
    // failure lands, hiding the retry this test counts exactly.
    let db = Cluster::new(ClusterConfig::default());
    let ctx = SparkContext::new(SparkConf {
        nodes: 4,
        cores_per_node: 4,
        max_task_attempts: 6,
        thread_cap: 8,
        speculation: false,
        ..SparkConf::default()
    });
    DefaultSource::register(&ctx, db.clone());
    let rows = 240usize;
    let partitions = 6usize;
    let schema = Schema::from_pairs(&[("id", DataType::Int64), ("x", DataType::Float64)]);
    let data: Vec<Row> = (0..rows).map(|i| row![i as i64, i as f64]).collect();
    let df = ctx.create_dataframe(data, schema, partitions).unwrap();

    // Kills after side effects ran (the Sec. 2.2.2 hazard), a retried
    // double failure, and speculative duplicates of two partitions.
    ctx.failures().fail_task(1, 1, FailureMode::AfterWork);
    ctx.failures().fail_task(3, 1, FailureMode::BeforeWork);
    ctx.failures().fail_task(3, 2, FailureMode::AfterWork);
    ctx.failures().speculate(0, 2);
    ctx.failures().speculate(4, 1);

    let mut opts = connector::ConnectorOptions::for_table("obs_target").with_partitions(partitions);
    opts.job_name = Some("obs_final_commit_job".to_string());
    let report = connector::SaveRequest::new(&ctx, &db, &df, &opts)
        .mode(SaveMode::Overwrite)
        .submit()
        .expect("S2V save");
    ctx.failures().clear();

    // The data itself is exactly-once, as always.
    let mut s = db.connect(0).unwrap();
    let result = s.query(&QuerySpec::scan("obs_target")).unwrap();
    assert_eq!(result.rows.len(), rows);

    let snap = obs::global().snapshot();

    // Exactly one phase-5 final-commit event for this job, no matter
    // how many attempts, retries, and duplicates ran its phases.
    let commits = snap
        .events_of(obs::EventKind::S2vPhase)
        .filter(|e| e.job.as_deref() == Some(report.job_name.as_str()))
        .filter(|e| e.detail.starts_with("phase 5 final commit"))
        .count();
    assert_eq!(commits, 1, "exactly one final commit in the event log");
    let committer = report.committer_task.expect("S2V saves name a committer");
    let committer_detail = format!("phase 5 final commit by task {committer}");
    assert!(
        snap.events_of(obs::EventKind::S2vPhase)
            .any(|e| e.detail.starts_with(&committer_detail)),
        "the final-commit event names the reported committer"
    );

    // Per-job scheduler events must agree with the scheduler's own
    // tallies for the same job.
    let stats = ctx
        .job_stats(report.engine_job_id)
        .expect("job stats retained");
    let label = sparklet::job_label(report.engine_job_id);
    let count_kind = |kind: obs::EventKind| {
        snap.events_of(kind)
            .filter(|e| e.job.as_deref() == Some(label.as_str()))
            .count() as u64
    };
    assert_eq!(
        count_kind(obs::EventKind::TaskLaunch),
        stats.tasks_launched,
        "launch events match scheduler attempts"
    );
    assert_eq!(
        count_kind(obs::EventKind::TaskRetry),
        stats.retries,
        "retry events match scheduler retries"
    );
    assert_eq!(
        count_kind(obs::EventKind::TaskSpeculative),
        stats.speculative,
        "speculation events match scheduler duplicates"
    );
    assert_eq!(
        count_kind(obs::EventKind::TaskFinish),
        stats.tasks_completed,
        "finish events match completed attempts"
    );
    // Our scripted schedule forced at least 3 retries and 3 duplicates.
    assert!(stats.retries >= 3, "scripted failures were retried");
    assert!(stats.speculative >= 3, "speculative copies were enqueued");

    // The report's timing breakdown saw real work in phases 1 and 5.
    assert!(report.phase_us[0] > 0, "phase 1 time recorded");
    assert!(report.phase_us[4] > 0, "phase 5 time recorded");
}

/// Acceptance path: after a connector save, the event log is queryable
/// through the mppdb SQL layer as the `dc_events` / `dc_counters`
/// system tables — observability lands in SQL exactly as in Vertica.
#[test]
fn dc_events_queryable_over_sql_after_save() {
    let (ctx, db) = setup();
    let rows = 120usize;
    let schema = Schema::from_pairs(&[("id", DataType::Int64), ("x", DataType::Float64)]);
    let data: Vec<Row> = (0..rows).map(|i| row![i as i64, i as f64]).collect();
    let df = ctx.create_dataframe(data, schema, 4).unwrap();
    df.write()
        .format(DEFAULT_SOURCE)
        .options(
            Options::new()
                .with("table", "sql_obs_target")
                .with("numPartitions", 4)
                .with("job_name", "sql_obs_job"),
        )
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap();

    let mut s = db.connect(0).unwrap();
    let events = s
        .execute("SELECT * FROM dc_events")
        .unwrap()
        .rows()
        .unwrap();
    let kind_col = events
        .schema
        .fields()
        .iter()
        .position(|f| f.name == "kind")
        .unwrap();
    let job_col = events
        .schema
        .fields()
        .iter()
        .position(|f| f.name == "job")
        .unwrap();
    let detail_col = events
        .schema
        .fields()
        .iter()
        .position(|f| f.name == "detail")
        .unwrap();
    let phase_events: Vec<_> = events
        .rows
        .iter()
        .filter(|r| r.get(kind_col) == &Value::Varchar("s2v_phase".into()))
        .filter(|r| r.get(job_col) == &Value::Varchar("sql_obs_job".into()))
        .collect();
    assert!(
        !phase_events.is_empty(),
        "SELECT * FROM dc_events returns S2V phase events after a save"
    );
    assert_eq!(
        phase_events
            .iter()
            .filter(|r| match r.get(detail_col) {
                Value::Varchar(d) => d.starts_with("phase 5 final commit"),
                _ => false,
            })
            .count(),
        1,
        "one final commit visible through SQL"
    );

    let counters = s
        .execute("SELECT * FROM dc_counters")
        .unwrap()
        .rows()
        .unwrap();
    let loaded = counters.rows.iter().find_map(|r| {
        (r.get(0) == &Value::Varchar("s2v.rows_loaded".into())).then(|| r.get(1).as_i64().unwrap())
    });
    assert!(
        loaded.unwrap_or(0) >= rows as i64,
        "s2v.rows_loaded counter visible through SQL"
    );
}
