//! The complete Fig. 1 loop, asserted end-to-end: S2V (ETL) → SQL →
//! V2S → MLlib training → PMML export → MD deployment → in-database
//! scoring — one test exercising every crate in the workspace together.

use sparklet::mllib::{LabeledPoint, LinearRegression};
use sparklet::pmml_export::linear_to_pmml;
use vertica_spark_fabric::prelude::*;

#[test]
fn full_analytics_loop() {
    let db = Cluster::new(ClusterConfig::default());
    let ctx = SparkContext::new(SparkConf {
        nodes: 8,
        cores_per_node: 4,
        max_task_attempts: 4,
        thread_cap: 8,
        ..SparkConf::default()
    });
    DefaultSource::register(&ctx, db.clone());

    // 1. ETL in the engine: raw text → typed rows, then S2V.
    let raw = ctx.parallelize(
        (0..3_000)
            .map(|i| format!("{i},{}", (i as f64) * 0.25 + 7.0))
            .collect::<Vec<String>>(),
        8,
    );
    let parsed: Vec<Row> = raw
        .map(|line: String| {
            let (a, b) = line.split_once(',').unwrap();
            row![a.parse::<i64>().unwrap(), b.parse::<f64>().unwrap()]
        })
        .collect()
        .unwrap();
    let schema = Schema::from_pairs(&[("x", DataType::Int64), ("y", DataType::Float64)]);
    let df = ctx.create_dataframe(parsed, schema, 8).unwrap();
    df.write()
        .format(DEFAULT_SOURCE)
        .options(
            Options::new()
                .with("table", "samples")
                .with("numPartitions", 16),
        )
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap();

    // 2. SQL sanity on the database.
    let mut s = db.connect(0).unwrap();
    let stats = s
        .execute("SELECT COUNT(*), MIN(y), MAX(y) FROM samples")
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(stats.rows[0].get(0), &Value::Int64(3_000));
    assert_eq!(stats.rows[0].get(1).as_f64().unwrap(), 7.0);

    // 3. V2S into the engine; train y = 0.25x + 7.
    let training = ctx
        .read()
        .format(DEFAULT_SOURCE)
        .option("table", "samples")
        .option("numPartitions", 8)
        .load()
        .unwrap()
        .rdd()
        .unwrap()
        .map(|r: Row| {
            LabeledPoint::new(r.get(1).as_f64().unwrap(), vec![r.get(0).as_f64().unwrap()])
        });
    let model = LinearRegression::default().fit(&training).unwrap();
    assert!((model.intercept - 7.0).abs() < 1e-6, "{}", model.intercept);
    assert!((model.weights[0] - 0.25).abs() < 1e-9);

    // 4. MD: deploy and score from SQL.
    let md = ModelDeployment::new(db.clone()).unwrap();
    md.deploy_pmml_model(
        &linear_to_pmml(&model, "line", Some(&["x".to_string()]), "y"),
        false,
    )
    .unwrap();
    let scored = s
        .execute(
            "SELECT y, PMMLPredict(x USING PARAMETERS model_name='line') FROM samples LIMIT 50",
        )
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(scored.rows.len(), 50);
    for r in &scored.rows {
        let actual = r.get(0).as_f64().unwrap();
        let predicted = r.get(1).as_f64().unwrap();
        assert!((actual - predicted).abs() < 1e-6);
    }

    // 5. The model round-trips through its PMML document.
    let doc = md.get_pmml("line").unwrap();
    let eval = pmml::Evaluator::from_document(&doc).unwrap();
    assert!((eval.predict(&[4.0]).unwrap() - 8.0).abs() < 1e-9);
}

#[test]
fn fabric_moves_data_between_storage_systems() {
    // DataFrame → DFS → DataFrame → database → DataFrame: the fabric
    // as the connective tissue between storage systems.
    let db = Cluster::new(ClusterConfig::default());
    let ctx = SparkContext::new(SparkConf {
        nodes: 4,
        cores_per_node: 4,
        max_task_attempts: 4,
        thread_cap: 8,
        ..SparkConf::default()
    });
    DefaultSource::register(&ctx, db.clone());
    let dfs = dfslite::DfsClusterSim::new(dfslite::DfsConfig {
        nodes: 4,
        block_size: 1 << 16,
        replication: 3,
    });
    baselines::DfsSource::register(&ctx, dfs);

    let schema = Schema::from_pairs(&[("k", DataType::Int64), ("v", DataType::Varchar)]);
    let rows: Vec<Row> = (0..500)
        .map(|i| row![i as i64, format!("value{i}")])
        .collect();
    let df = ctx.create_dataframe(rows.clone(), schema, 5).unwrap();

    // Engine → DFS.
    df.write()
        .format(baselines::DFS_FORMAT)
        .options(Options::new().with("path", "/stage/data"))
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap();
    // DFS → engine → database.
    let from_dfs = ctx
        .read()
        .format(baselines::DFS_FORMAT)
        .option("path", "/stage/data")
        .load()
        .unwrap();
    from_dfs
        .write()
        .format(DEFAULT_SOURCE)
        .options(
            Options::new()
                .with("table", "landed")
                .with("numPartitions", 8),
        )
        .mode(SaveMode::Overwrite)
        .save()
        .unwrap();
    // Database → engine; contents identical.
    let mut final_rows = ctx
        .read()
        .format(DEFAULT_SOURCE)
        .option("table", "landed")
        .load()
        .unwrap()
        .collect()
        .unwrap();
    final_rows.sort_by_key(|r| r.get(0).as_i64().unwrap());
    assert_eq!(final_rows, rows);
}
