//! Elastic-cluster chaos: seeded node add/remove, rolling-upgrade, and
//! crash-during-migration schedules against the online rebalancer.
//!
//! Each schedule derives a workload and a [`FaultPlan`] from one seed,
//! drives a membership change while jobs run (or while the rebalance is
//! deliberately left pending in dual-write mode), and asserts the
//! elastic-cluster invariants:
//!
//! * every id is present exactly once after the flip — migrations never
//!   lose or duplicate rows, no matter how many times they crash and
//!   resume;
//! * scans pinned to a pre-flip epoch resolve ownership through the
//!   *old* map version and return the identical wire volume, while
//!   post-flip scans resolve through the new map;
//! * a V2S relation opened before the flip keeps serving its pinned
//!   snapshot afterwards, even when its pinned owners include a node
//!   that was removed and retired;
//! * rolling kill→restore of every node mid-rebalance never breaks
//!   reads (k-safety) and the rebalance still converges.
//!
//! Tests sharing the process-global `obs` collector are serialized
//! behind one mutex so counter deltas are attributable.

use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
mod common;

use vertica_spark_fabric::prelude::*;
use vertica_spark_fabric::{connector, mppdb, obs};

use connector::ConnectorOptions;
use mppdb::{FaultPlan, FaultSite};

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn setup(k_safety: usize) -> (SparkContext, std::sync::Arc<mppdb::Cluster>) {
    let db = Cluster::new(ClusterConfig {
        k_safety,
        ..ClusterConfig::default()
    });
    let ctx = SparkContext::new(SparkConf {
        nodes: 4,
        cores_per_node: 4,
        max_task_attempts: 6,
        thread_cap: 8,
        ..SparkConf::default()
    });
    DefaultSource::register(&ctx, db.clone());
    (ctx, db)
}

fn save_rows(
    ctx: &SparkContext,
    db: &std::sync::Arc<mppdb::Cluster>,
    table: &str,
    ids: std::ops::Range<i64>,
    partitions: usize,
    job: &str,
) {
    let schema = Schema::from_pairs(&[("id", DataType::Int64), ("x", DataType::Float64)]);
    let rows: Vec<Row> = ids.map(|i| row![i, i as f64]).collect();
    let df = ctx.create_dataframe(rows, schema, partitions).unwrap();
    let opts = ConnectorOptions::builder(table)
        .num_partitions(partitions)
        .job_name(job)
        .retry_max_attempts(10)
        .retry_deadline_ms(60_000)
        .build()
        .unwrap();
    connector::SaveRequest::new(ctx, db, &df, &opts)
        .mode(SaveMode::Append)
        .submit()
        .unwrap_or_else(|e| panic!("save {job} failed: {e}"));
}

/// Sorted ids in `table` at `epoch`, read through the first live node.
fn ids_at(db: &std::sync::Arc<mppdb::Cluster>, table: &str, epoch: u64) -> Vec<i64> {
    let node = db.up_nodes()[0];
    let mut session = db.connect(node).unwrap();
    let result = session
        .query(&QuerySpec::scan(table).at_epoch(epoch))
        .unwrap();
    let mut ids: Vec<i64> = result
        .rows
        .iter()
        .map(|r| r.get(0).as_i64().unwrap())
        .collect();
    ids.sort_unstable();
    ids
}

/// Total wire volume of a scan of `table` pinned at `epoch`.
fn wire_at(db: &std::sync::Arc<mppdb::Cluster>, table: &str, epoch: u64) -> u64 {
    let node = db.up_nodes()[0];
    let mut session = db.connect(node).unwrap();
    session
        .query(&QuerySpec::scan(table).at_epoch(epoch))
        .unwrap()
        .wire_bytes()
}

/// Drive a pending rebalance to completion, restoring any down member
/// first. Transient interruptions (seeded crashes, killed targets) are
/// retried; anything fatal panics with the seed attached.
fn finish_rebalance(db: &std::sync::Arc<mppdb::Cluster>, seed: u64) {
    let mut guard = 0;
    while db.rebalance_in_progress() {
        guard += 1;
        assert!(guard < 32, "seed {seed}: rebalance did not converge");
        if let Err(e) = db.run_rebalance() {
            assert!(e.is_transient(), "seed {seed}: fatal rebalance error: {e}");
        }
    }
}

/// Node-add schedule: load a table, leave an add-rebalance pending in
/// dual-write mode, run a *second* S2V save mid-rebalance, then finish
/// under seeded migration crashes. Pre-flip epochs must keep resolving
/// the old map version (and the old wire volume); the post-flip scan
/// must resolve the new one and hold the exact union multiset.
fn run_add_schedule(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (ctx, db) = setup(if rng.random_bool(0.5) { 1 } else { 0 });
    let n_rows = rng.random_range(60i64..200);
    let partitions = rng.random_range(2usize..8);
    save_rows(
        &ctx,
        &db,
        "elastic_add",
        0..n_rows,
        partitions,
        &format!("add_{seed}_a"),
    );

    let pre_epoch = db.current_epoch();
    let old_version = db.segment_map().version();
    let pre_ids = ids_at(&db, "elastic_add", pre_epoch);
    let pre_wire = wire_at(&db, "elastic_add", pre_epoch);

    // Leave the add pending: the planned map is staged, writes
    // dual-write to current and target owners, but nothing has flipped.
    db.faults().inject_once(FaultSite::Rebalance);
    let before = obs::global().snapshot();
    let err = db.add_node().unwrap_err();
    assert!(err.is_transient(), "seed {seed}: {err}");
    assert!(db.rebalance_in_progress());
    assert_eq!(
        db.segment_map().version(),
        old_version,
        "seed {seed}: no flip while pending"
    );

    // Mid-rebalance S2V: an entire save lands in dual-write mode.
    let extra = rng.random_range(20i64..80);
    save_rows(
        &ctx,
        &db,
        "elastic_add",
        n_rows..n_rows + extra,
        partitions,
        &format!("add_{seed}_b"),
    );

    // Finish under seeded migration crashes.
    db.faults().arm(
        FaultPlan::seeded(seed)
            .with_rebalance_crash(0.4)
            .with_budget(rng.random_range(1u64..4)),
    );
    finish_rebalance(&db, seed);
    let fired = db.faults().disarm();

    let new_map = db.segment_map();
    assert_eq!(new_map.version(), old_version + 1, "seed {seed}: flipped");
    assert_eq!(new_map.node_count(), 5, "seed {seed}: five members");

    // Post-flip: the union multiset, exactly once, through the new map.
    let expected: Vec<i64> = (0..n_rows + extra).collect();
    assert_eq!(
        ids_at(&db, "elastic_add", db.current_epoch()),
        expected,
        "seed {seed}: post-flip ids"
    );
    // Pre-flip epochs still resolve the old map version and the exact
    // old snapshot — same ids, same wire volume.
    assert_eq!(
        db.segment_map_at(pre_epoch).version(),
        old_version,
        "seed {seed}: pre-flip epoch pins old map"
    );
    assert_eq!(
        db.segment_map_at(db.current_epoch()).version(),
        old_version + 1,
        "seed {seed}: current epoch resolves new map"
    );
    assert_eq!(
        ids_at(&db, "elastic_add", pre_epoch),
        pre_ids,
        "seed {seed}: pre-flip ids unchanged"
    );
    assert_eq!(
        wire_at(&db, "elastic_add", pre_epoch),
        pre_wire,
        "seed {seed}: pre-flip wire volume unchanged"
    );

    // Every fired fault was a rebalance crash (the only site armed,
    // plus the single injected one), and the flip happened once.
    let delta = obs::global().snapshot().counters_since(&before);
    assert_eq!(
        delta.get("fault.rebalance").copied().unwrap_or(0),
        fired + 1,
        "seed {seed}: fired faults were rebalance crashes: {delta:?}"
    );
    assert_eq!(
        delta.get("rebalance.flips").copied().unwrap_or(0),
        1,
        "seed {seed}: exactly one flip: {delta:?}"
    );
    assert!(
        delta.get("rebalance.migrations").copied().unwrap_or(0) > 0,
        "seed {seed}: migrations ran: {delta:?}"
    );
}

/// Node-remove schedule: open a V2S relation *before* removing one of
/// its pinned owners. The relation's epoch+map pin must keep the load
/// correct after the flip retires the node, and fresh reads must route
/// through the shrunk map.
fn run_remove_schedule(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let k = if rng.random_bool(0.5) { 1 } else { 0 };
    let (ctx, db) = setup(k);
    let n_rows = rng.random_range(60i64..200);
    let partitions = rng.random_range(2usize..8);
    save_rows(
        &ctx,
        &db,
        "elastic_rm",
        0..n_rows,
        partitions,
        &format!("rm_{seed}"),
    );

    let pre_epoch = db.current_epoch();
    let old_version = db.segment_map().version();
    let pre_wire = wire_at(&db, "elastic_rm", pre_epoch);
    let expected: Vec<i64> = (0..n_rows).collect();

    // Pin a V2S relation to the pre-remove epoch and map.
    let pinned = ctx
        .read()
        .format(DEFAULT_SOURCE)
        .option("table", "elastic_rm")
        .option("numPartitions", 4)
        .option("retry_max_attempts", 10)
        .option("retry_deadline_ms", 60_000)
        .load()
        .unwrap_or_else(|e| panic!("seed {seed}: V2S open failed: {e}"));
    assert_eq!(pinned.count().unwrap(), n_rows as u64);

    let victim = rng.random_range(0usize..db.node_count());
    db.faults().arm(
        FaultPlan::seeded(seed)
            .with_rebalance_crash(0.3)
            .with_budget(rng.random_range(1u64..3)),
    );
    if let Err(e) = db.remove_node(victim) {
        assert!(e.is_transient(), "seed {seed}: {e}");
        finish_rebalance(&db, seed);
    }
    db.faults().disarm();

    assert!(db.is_node_retired(victim), "seed {seed}: retired");
    let new_map = db.segment_map();
    assert_eq!(new_map.version(), old_version + 1);
    assert!(!new_map.is_member(victim), "seed {seed}: out of the map");

    // The pinned relation still serves its snapshot: its map routes to
    // the retired node, so pieces fail over to buddies (k=1) or to the
    // new owners holding the verbatim history (k=0).
    let mut loaded: Vec<i64> = pinned
        .collect()
        .unwrap_or_else(|e| panic!("seed {seed}: pinned V2S after flip: {e}"))
        .iter()
        .map(|r| r.get(0).as_i64().unwrap())
        .collect();
    loaded.sort_unstable();
    assert_eq!(loaded, expected, "seed {seed}: pinned V2S snapshot");

    // Session reads: pre-flip epoch = old map + old volume; current
    // epoch = new map, same multiset.
    assert_eq!(db.segment_map_at(pre_epoch).version(), old_version);
    assert_eq!(ids_at(&db, "elastic_rm", pre_epoch), expected);
    assert_eq!(wire_at(&db, "elastic_rm", pre_epoch), pre_wire);
    assert_eq!(ids_at(&db, "elastic_rm", db.current_epoch()), expected);

    // A fresh V2S load plans against the shrunk map.
    let fresh = ctx
        .read()
        .format(DEFAULT_SOURCE)
        .option("table", "elastic_rm")
        .option("retry_max_attempts", 10)
        .option("retry_deadline_ms", 60_000)
        .load()
        .unwrap_or_else(|e| panic!("seed {seed}: fresh V2S open failed: {e}"));
    assert_eq!(fresh.count().unwrap(), n_rows as u64, "seed {seed}: fresh");
}

/// Rolling-upgrade schedule: with a rebalance pending, kill and restore
/// every member in sequence (the classic one-node-at-a-time upgrade),
/// inserting a small batch at each step. Reads must stay available
/// throughout (k=1), and the rebalance must still converge to the exact
/// union multiset.
fn run_rolling_upgrade_schedule(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (ctx, db) = setup(1);
    let n_rows = rng.random_range(60i64..160);
    let partitions = rng.random_range(2usize..6);
    save_rows(
        &ctx,
        &db,
        "elastic_roll",
        0..n_rows,
        partitions,
        &format!("roll_{seed}"),
    );

    let pre_epoch = db.current_epoch();
    let old_version = db.segment_map().version();
    let pre_ids = ids_at(&db, "elastic_roll", pre_epoch);
    let pre_wire = wire_at(&db, "elastic_roll", pre_epoch);

    // Stage a membership change and leave it pending.
    let removing = rng.random_bool(0.4);
    let victim = rng.random_range(0usize..db.node_count());
    db.faults().inject_once(FaultSite::Rebalance);
    let err = if removing {
        db.remove_node(victim).unwrap_err()
    } else {
        db.add_node().unwrap_err()
    };
    assert!(err.is_transient(), "seed {seed}: {err}");
    assert!(db.rebalance_in_progress());

    // Roll through the original members: kill, read, write, restore,
    // nudge the rebalance (it may or may not finish mid-roll).
    let mut next_id = n_rows;
    for node in 0..4usize {
        if removing && node == victim {
            continue; // the leaving node needs no upgrade
        }
        db.kill_node(node);
        let have = ids_at(&db, "elastic_roll", db.current_epoch());
        assert_eq!(
            have.len(),
            next_id as usize,
            "seed {seed}: read with node {node} down"
        );
        let batch = rng.random_range(5i64..20);
        save_rows(
            &ctx,
            &db,
            "elastic_roll",
            next_id..next_id + batch,
            partitions,
            &format!("roll_{seed}_n{node}"),
        );
        next_id += batch;
        db.restore_node(node);
        let _ = db.run_rebalance();
    }

    finish_rebalance(&db, seed);
    let new_map = db.segment_map();
    assert_eq!(new_map.version(), old_version + 1, "seed {seed}: flipped");
    if removing {
        assert!(db.is_node_retired(victim), "seed {seed}: victim retired");
    } else {
        assert_eq!(new_map.node_count(), 5, "seed {seed}: added member");
    }

    // Exactly once across the whole roll: original + every step batch.
    let expected: Vec<i64> = (0..next_id).collect();
    assert_eq!(
        ids_at(&db, "elastic_roll", db.current_epoch()),
        expected,
        "seed {seed}: union multiset after rolling upgrade"
    );
    // The pre-roll epoch still reads the pre-roll snapshot through the
    // old map version — same ids, same wire volume.
    assert_eq!(db.segment_map_at(pre_epoch).version(), old_version);
    assert_eq!(ids_at(&db, "elastic_roll", pre_epoch), pre_ids);
    assert_eq!(
        wire_at(&db, "elastic_roll", pre_epoch),
        pre_wire,
        "seed {seed}: pre-roll wire volume"
    );
}

#[test]
fn chaos_ten_node_add_schedules_are_exactly_once() {
    let _g = lock();
    for seed in 9000..9010 {
        run_add_schedule(seed);
    }
}

#[test]
fn chaos_ten_node_remove_schedules_preserve_pinned_reads() {
    let _g = lock();
    for seed in 9100..9110 {
        run_remove_schedule(seed);
    }
}

#[test]
fn chaos_ten_rolling_upgrade_schedules_converge() {
    let _g = lock();
    for seed in 9200..9210 {
        run_rolling_upgrade_schedule(seed);
    }
}

/// The observability surface of a rebalance: dc_segment_map carries
/// both map versions with the flip epoch, dc_rebalance records the op
/// log, and dc_nodes reflects membership and retirement.
#[test]
fn rebalance_system_tables_reflect_the_flip() {
    let _g = lock();
    let (ctx, db) = setup(0);
    save_rows(&ctx, &db, "elastic_dc", 0..100, 4, "dc_job");
    db.add_node().unwrap();
    db.remove_node(1).unwrap();

    let mut session = db.connect(0).unwrap();
    let maps = session.query(&QuerySpec::scan("dc_segment_map")).unwrap();
    let versions: std::collections::BTreeSet<i64> = maps
        .rows
        .iter()
        .map(|r| r.get(0).as_i64().unwrap())
        .collect();
    assert_eq!(
        versions.into_iter().collect::<Vec<i64>>(),
        vec![0, 1, 2],
        "three map versions in history"
    );

    let ops = session.query(&QuerySpec::scan("dc_rebalance")).unwrap();
    assert!(ops.rows.len() >= 2, "op log has plan/copy/flip entries");

    let nodes = session.query(&QuerySpec::scan("dc_nodes")).unwrap();
    assert_eq!(nodes.rows.len(), 5, "four seed nodes plus the added one");
    // Node 1 is down and retired; the added node 4 is up.
    let row1 = nodes
        .rows
        .iter()
        .find(|r| r.get(0).as_i64().ok() == Some(1))
        .unwrap();
    assert_eq!(row1.get(1).to_string(), "false", "node 1 down");
    assert_eq!(row1.get(2).to_string(), "true", "node 1 retired");
}

/// Static/dynamic lock-graph cross-check over the rebalance paths: one
/// node-add schedule under faults, then every runtime-witnessed
/// lock-order edge must be statically derivable (see tests/common).
#[test]
fn witnessed_lock_edges_are_statically_derivable() {
    let _g = lock();
    run_add_schedule(0x10CD);
    common::assert_witness_subgraph("rebalance");
}
