//! Resilience suite: the grey-failure defenses in isolation.
//!
//! * a seeded property sweep over the circuit-breaker state machine —
//!   every observed transition must be one the design allows, caused by
//!   the operation that is allowed to cause it;
//! * admission control: a bounded resource pool sheds excess statements
//!   with the typed [`mppdb::DbError::Overloaded`] error instead of
//!   queueing without bound, and recovers as soon as a slot frees;
//! * deadline fast-fail: a save against a dead cluster with a tight
//!   job deadline fails with `DeadlineExceeded` near the budget instead
//!   of grinding through its full retry schedule;
//! * every new counter family (`health.*`, `breaker.*`, `hedge.*`,
//!   `shed.*`, `deadline.*`) is visible through the `dc_counters`
//!   system table, same as Vertica's data collector.
//!
//! Tests sharing the process-global `obs` collector are serialized
//! behind one mutex so counter deltas are attributable.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use vertica_spark_fabric::prelude::*;
use vertica_spark_fabric::{connector, mppdb, obs};

use connector::{
    BreakerState, ConnectorError, ConnectorOptions, ConnectorResult, HealthConfig, HealthTracker,
};
use mppdb::resource::ResourcePool;
use mppdb::DbError;

static RESILIENCE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    RESILIENCE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn setup() -> (SparkContext, std::sync::Arc<mppdb::Cluster>) {
    let db = Cluster::new(ClusterConfig::default());
    let ctx = SparkContext::new(SparkConf {
        nodes: 4,
        cores_per_node: 4,
        thread_cap: 8,
        ..SparkConf::default()
    });
    DefaultSource::register(&ctx, db.clone());
    (ctx, db)
}

// ---------------------------------------------------------------------
// Circuit breaker: seeded property sweep
// ---------------------------------------------------------------------

/// Drive one breaker through a random operation schedule and check that
/// every state transition is legal *and attributable*: the breaker may
/// only move along the design's edges, and only the operation that owns
/// an edge may traverse it.
///
/// ```text
/// Closed ──(failure, threshold reached)──▶ Open
/// Open ──(acquire past cooldown)──▶ HalfOpen
/// HalfOpen ──(failure)──▶ Open
/// HalfOpen | Open ──(success)──▶ Closed   (any success fully closes)
/// ```
#[test]
fn breaker_state_machine_property_sweep() {
    const OP_SUCCESS: u8 = 0;
    const OP_FAILURE: u8 = 1;
    const OP_ACQUIRE: u8 = 2;
    const OP_SLEEP: u8 = 3;

    for seed in 0..50u64 {
        let mut rng = StdRng::seed_from_u64(0xb4ea_0000 + seed);
        let cfg = HealthConfig {
            failure_threshold: 3,
            open_cooldown: Duration::from_millis(3),
            half_open_probes: 2,
            ..HealthConfig::default()
        };
        let cooldown = cfg.open_cooldown;
        let tracker = HealthTracker::with_config(1, cfg);
        let mut prev = tracker.state(0);
        assert_eq!(prev, BreakerState::Closed, "breakers start closed");

        let steps = rng.random_range(30usize..80);
        for step in 0..steps {
            let op = rng.random_range(0u8..4);
            match op {
                OP_SUCCESS => {
                    tracker.record_success(0, Duration::from_micros(rng.random_range(50u64..500)))
                }
                OP_FAILURE => tracker.record_failure(0),
                OP_ACQUIRE => {
                    tracker.acquire(0);
                }
                OP_SLEEP => std::thread::sleep(cooldown + Duration::from_millis(1)),
                _ => unreachable!(),
            }
            let next = tracker.state(0);
            let legal = match (prev, next) {
                // Staying put is always legal.
                (a, b) if a == b => true,
                // Each edge belongs to exactly one operation.
                (BreakerState::Closed, BreakerState::Open) => op == OP_FAILURE,
                (BreakerState::Open, BreakerState::HalfOpen) => op == OP_ACQUIRE,
                (BreakerState::HalfOpen, BreakerState::Open) => op == OP_FAILURE,
                (BreakerState::HalfOpen, BreakerState::Closed) => op == OP_SUCCESS,
                (BreakerState::Open, BreakerState::Closed) => op == OP_SUCCESS,
                // Closed -> HalfOpen has no edge at all.
                _ => false,
            };
            assert!(
                legal,
                "seed {seed} step {step}: illegal transition {prev:?} -> {next:?} on op {op}"
            );
            prev = next;
        }
    }
}

/// While open and inside the cooldown, the breaker must reject every
/// acquire — checked densely rather than at random points.
#[test]
fn open_breaker_rejects_throughout_cooldown() {
    let cfg = HealthConfig {
        failure_threshold: 2,
        open_cooldown: Duration::from_millis(20),
        half_open_probes: 1,
        ..HealthConfig::default()
    };
    let tracker = HealthTracker::with_config(1, cfg);
    tracker.record_failure(0);
    tracker.record_failure(0);
    assert_eq!(tracker.state(0), BreakerState::Open);
    let opened = Instant::now();
    while opened.elapsed() < Duration::from_millis(15) {
        assert!(
            !tracker.acquire(0),
            "acquire admitted {}ms into a 20ms cooldown",
            opened.elapsed().as_millis()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    std::thread::sleep(Duration::from_millis(10));
    assert!(tracker.acquire(0), "probe admitted after the cooldown");
    assert_eq!(tracker.state(0), BreakerState::HalfOpen);
}

// ---------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------

/// A bounded pool with its only slot held sheds the next statement with
/// the typed `Overloaded` error — and admits it again once the slot
/// frees. The shed is visible under `shed.*`.
#[test]
fn bounded_pool_sheds_statements_with_typed_error() {
    let _g = lock();
    let db = Cluster::new(ClusterConfig::default());
    db.create_resource_pool(
        ResourcePool::new("tiny", 1 << 20, 1).with_admission(0, Duration::from_millis(10)),
    );
    {
        let mut s = db.connect(0).unwrap();
        s.execute("CREATE TABLE shed_t (id INT)").unwrap();
        s.insert("shed_t", (0..8).map(|i| row![i as i64]).collect())
            .unwrap();
    }

    let pool = db.resource_pool("tiny").unwrap();
    let held = pool.try_admit().unwrap();

    let before = obs::global().snapshot();
    let mut s = db.connect(1).unwrap();
    s.set_resource_pool("tiny").unwrap();
    let err = s.query(&QuerySpec::scan("shed_t")).unwrap_err();
    assert!(
        matches!(err, DbError::Overloaded { ref pool } if pool == "tiny"),
        "expected Overloaded from the tiny pool, got {err:?}"
    );
    let delta = obs::global().snapshot().counters_since(&before);
    assert!(
        delta.get("shed.queue_full").copied().unwrap_or(0) >= 1,
        "shed.queue_full counted"
    );
    assert!(
        delta.get("shed.total").copied().unwrap_or(0) >= 1,
        "shed.total counted"
    );

    // Slot freed: the very same session's next statement is admitted.
    drop(held);
    let n = s.query(&QuerySpec::scan("shed_t")).unwrap().rows.len();
    assert_eq!(n, 8, "query admitted once the pool has room");
}

// ---------------------------------------------------------------------
// Deadline fast-fail
// ---------------------------------------------------------------------

/// With every node dead and a generous retry schedule, a tight job-wide
/// deadline must win: the save fails with `DeadlineExceeded` close to
/// its budget instead of sleeping through the retry policy's 30s, and
/// the give-up is counted under `deadline.expired`.
#[test]
fn save_with_tight_deadline_fails_fast() {
    let _g = lock();
    let (ctx, db) = setup();
    let schema = Schema::from_pairs(&[("id", DataType::Int64)]);
    let data: Vec<Row> = (0..40).map(|i| row![i as i64]).collect();
    let df = ctx.create_dataframe(data, schema, 2).unwrap();

    for n in 0..db.node_count() {
        db.kill_node(n);
    }
    let before = obs::global().snapshot();
    let opts = ConnectorOptions::builder("dl_tgt")
        .num_partitions(2)
        .retry_max_attempts(50)
        .retry_deadline_ms(30_000)
        .deadline_ms(60)
        .build()
        .unwrap();
    let started = Instant::now();
    let err = connector::SaveRequest::new(&ctx, &db, &df, &opts)
        .mode(SaveMode::Overwrite)
        .submit()
        .unwrap_err();
    let elapsed = started.elapsed();
    assert!(
        matches!(err, ConnectorError::DeadlineExceeded { .. }),
        "expected DeadlineExceeded, got {err:?}"
    );
    assert!(
        elapsed < Duration::from_secs(3),
        "60ms budget, {elapsed:?} elapsed: backoffs must be capped at the deadline"
    );
    let delta = obs::global().snapshot().counters_since(&before);
    assert!(
        delta.get("deadline.expired").copied().unwrap_or(0) >= 1,
        "deadline.expired counted"
    );
    for n in 0..db.node_count() {
        db.restore_node(n);
    }
}

// ---------------------------------------------------------------------
// Counter surfacing
// ---------------------------------------------------------------------

/// Every grey-failure counter family lands in the `dc_counters` system
/// table: drive each defense once, then read the names back over SQL.
#[test]
fn resilience_counters_surface_in_dc_counters() {
    let _g = lock();
    let db = Cluster::new(ClusterConfig::default());

    // health.* and breaker.*: one full breaker cycle.
    let cfg = HealthConfig {
        open_cooldown: Duration::from_millis(2),
        ..HealthConfig::default()
    };
    let tracker = HealthTracker::with_config(2, cfg);
    tracker.record_success(0, Duration::from_micros(120));
    for _ in 0..3 {
        tracker.record_failure(1); // third failure -> breaker.open
    }
    assert!(!tracker.acquire(1), "inside cooldown"); // breaker.rejected
    std::thread::sleep(Duration::from_millis(3));
    assert!(tracker.acquire(1), "probe"); // breaker.half_open
    tracker.record_success(1, Duration::from_micros(90)); // breaker.close

    // hedge.*: a stalled primary forces a buddy launch that wins.
    let run = Arc::new(|node: usize| -> ConnectorResult<usize> {
        if node == 0 {
            std::thread::sleep(Duration::from_millis(40));
        }
        Ok(node)
    });
    let got = connector::health::hedged_read(
        "resilience.probe",
        Duration::from_millis(5),
        0,
        1,
        obs::TraceCtx::NONE,
        run,
    )
    .unwrap();
    assert_eq!(got, 1, "buddy won the hedge");

    // shed.*: a zero-queue pool with its slot held sheds the next admit.
    let pool = Arc::new(ResourcePool::new("dc_tiny", 1 << 20, 1).with_admission(0, Duration::ZERO));
    let held = pool.try_admit().unwrap();
    assert!(pool.try_admit().is_err());
    drop(held);

    // deadline.*: an already-expired budget fails before attempt one.
    let r: ConnectorResult<()> = connector::with_retry_deadline(
        &connector::RetryPolicy::default(),
        Some(connector::Deadline::within(Duration::ZERO)),
        "resilience.deadline",
        |_| Ok(()),
    );
    assert!(matches!(r, Err(ConnectorError::DeadlineExceeded { .. })));

    let mut s = db.connect(0).unwrap();
    let counters = s
        .execute("SELECT * FROM dc_counters")
        .unwrap()
        .rows()
        .unwrap();
    let value = |name: &str| {
        counters.rows.iter().find_map(|r| {
            (r.get(0) == &Value::Varchar(name.into())).then(|| r.get(1).as_i64().unwrap())
        })
    };
    for name in [
        "health.successes",
        "health.failures",
        "breaker.open",
        "breaker.half_open",
        "breaker.close",
        "breaker.rejected",
        "hedge.launched",
        "hedge.wins",
        "shed.queue_full",
        "shed.total",
        "deadline.expired",
    ] {
        assert!(
            value(name).unwrap_or(0) >= 1,
            "counter {name} missing from dc_counters"
        );
    }
    // Let the abandoned hedge primary drain before the binary moves on.
    std::thread::sleep(Duration::from_millis(50));
}

// ---------------------------------------------------------------------
// Lock-order witness: the chaos gate for deadlocks
// ---------------------------------------------------------------------

/// A clean run must report **zero** lock-order cycles: the witness
/// watches every vendored `parking_lot` Mutex/RwLock acquisition in
/// debug/test builds, and any cycle in the acquisition-order graph is a
/// potential deadlock someone will eventually hit under chaos. The
/// graph itself is queryable as the `dc_lock_edges` system table, and
/// the `lockwitness.*` counters surface through `dc_counters` like
/// every other defense.
#[test]
fn lock_witness_reports_zero_cycles_on_clean_runs() {
    let _g = lock();
    let db = Cluster::new(ClusterConfig::default());
    let mut s = db.connect(0).unwrap();

    if !vertica_spark_fabric::parking_lot::witness::active() {
        // Release builds compile the witness out entirely.
        let edges = s
            .execute("SELECT * FROM dc_lock_edges")
            .unwrap()
            .rows()
            .unwrap();
        assert!(
            edges.rows.is_empty(),
            "witness must be inert in release builds"
        );
        return;
    }

    use vertica_spark_fabric::parking_lot::witness;

    // Manufacture one edge at a creation site unique to this test: its
    // classes are new, so the edge is new and must show up in both the
    // accessor counts and the pulled `lockwitness.edges` row.
    let outer = vertica_spark_fabric::parking_lot::Mutex::new(());
    let inner = vertica_spark_fabric::parking_lot::Mutex::new(());
    {
        let _o = outer.lock();
        let _i = inner.lock();
    }
    // And some real fabric work for good measure.
    s.execute("SELECT * FROM v_nodes").unwrap();

    assert!(
        witness::edge_count() > 0,
        "instrumented locks recorded no edges"
    );
    assert_eq!(
        witness::cycle_count(),
        0,
        "clean run found lock-order cycles: {:?}",
        witness::snapshot().cycles
    );

    let counters = s
        .execute("SELECT * FROM dc_counters")
        .unwrap()
        .rows()
        .unwrap();
    let counter = |name: &str| {
        counters.rows.iter().find_map(|r| {
            (r.get(0) == &Value::Varchar(name.into())).then(|| r.get(1).as_i64().unwrap())
        })
    };
    assert!(
        counter(obs::names::LOCKWITNESS_EDGES).unwrap_or(0) >= 1,
        "lockwitness.edges missing from dc_counters"
    );
    assert_eq!(
        counter(obs::names::LOCKWITNESS_CYCLES).unwrap_or(0),
        0,
        "lockwitness.cycles must stay zero on a clean run"
    );

    // The acquisition graph is queryable over SQL, and the edge this
    // test manufactured resolves to this file's creation sites.
    let edges = s
        .execute("SELECT * FROM dc_lock_edges")
        .unwrap()
        .rows()
        .unwrap();
    assert!(!edges.rows.is_empty());
    assert!(
        edges.rows.iter().any(|r| {
            matches!(
                (r.get(0), r.get(1)),
                (Value::Varchar(from), Value::Varchar(to))
                    if from.contains("resilience.rs") && to.contains("resilience.rs")
            )
        }),
        "manufactured outer->inner edge not visible in dc_lock_edges"
    );
}

/// Holding an instrumented lock across an injected-latency sleep is a
/// convoy hazard: every other thread needing that lock stalls for the
/// full injected delay. The fault injector tells the witness before it
/// sleeps, and the witness attributes the hazard to the held lock's
/// creation site under `lockwitness.hazards`.
#[test]
fn fault_injector_sleep_under_lock_is_a_hazard() {
    let _g = lock();
    if !vertica_spark_fabric::parking_lot::witness::active() {
        return;
    }
    use vertica_spark_fabric::parking_lot::witness;

    let db = Cluster::new(ClusterConfig::default());
    db.faults()
        .set_latency_profile(mppdb::fault::LatencyProfile::uniform(
            Duration::from_micros(200),
        ));
    db.faults().slow_node(0, 30.0);

    let before = witness::hazard_count();
    let guard = vertica_spark_fabric::parking_lot::Mutex::new(());
    {
        // Deliberately hold a lock across a connect that the latency
        // profile stalls: the injector's sleep must be attributed.
        let _held = guard.lock();
        let _s = db.connect(0).unwrap();
    }
    db.faults()
        .set_latency_profile(mppdb::fault::LatencyProfile::default());
    assert!(
        witness::hazard_count() > before,
        "sleep under a held lock was not recorded as a hazard"
    );
}
