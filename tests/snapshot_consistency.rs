//! Epoch-pinned snapshot consistency under live concurrent writers —
//! the paper's Sec. 3.1.2 guarantee and the ablation DESIGN.md calls
//! out (pinned vs unpinned reads).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use vertica_spark_fabric::prelude::*;

/// Writers insert whole batches of a fixed size transactionally; any
/// consistent snapshot therefore holds a multiple of the batch size.
const BATCH: usize = 50;

#[test]
fn v2s_sees_whole_batches_despite_concurrent_commits() {
    let db = Cluster::new(ClusterConfig::default());
    let ctx = SparkContext::new(SparkConf {
        nodes: 4,
        cores_per_node: 4,
        max_task_attempts: 4,
        thread_cap: 8,
        ..SparkConf::default()
    });
    DefaultSource::register(&ctx, db.clone());
    {
        let mut s = db.connect(0).unwrap();
        s.execute("CREATE TABLE live (id INT, batch INT)").unwrap();
        s.insert("live", (0..BATCH).map(|i| row![i as i64, 0i64]).collect())
            .unwrap();
    }

    let stop = Arc::new(AtomicBool::new(false));
    let writer_db = Arc::clone(&db);
    let writer_stop = Arc::clone(&stop);
    let writer = std::thread::spawn(move || {
        let mut s = writer_db.connect(1).unwrap();
        let mut batch = 1i64;
        while !writer_stop.load(Ordering::Acquire) {
            let rows: Vec<Row> = (0..BATCH)
                .map(|i| row![(batch * BATCH as i64) + i as i64, batch])
                .collect();
            s.insert("live", rows).unwrap();
            batch += 1;
        }
        batch
    });

    // Loads racing the writer: each must see a whole number of batches.
    for round in 0..20 {
        let loaded = ctx
            .read()
            .format(DEFAULT_SOURCE)
            .option("table", "live")
            .option("numPartitions", 8)
            .load()
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(
            loaded.len() % BATCH,
            0,
            "round {round}: saw {} rows — a torn batch",
            loaded.len()
        );
        // And within the snapshot, batches are complete.
        let mut per_batch = std::collections::HashMap::new();
        for r in &loaded {
            *per_batch
                .entry(r.get(1).as_i64().unwrap())
                .or_insert(0usize) += 1;
        }
        for (batch, count) in per_batch {
            assert_eq!(count, BATCH, "round {round}: batch {batch} torn");
        }
    }
    stop.store(true, Ordering::Release);
    let batches = writer.join().unwrap();
    assert!(batches > 1, "the writer actually ran");
}

#[test]
fn pinned_epoch_is_stable_across_the_whole_load() {
    // The relation pins its epoch at open; mutations between open and
    // scan are invisible (contrast with the JDBC baseline's unpinned
    // reads, demonstrated in the baselines test suite).
    let db = Cluster::new(ClusterConfig::default());
    let ctx = SparkContext::new(SparkConf::default());
    DefaultSource::register(&ctx, db.clone());
    {
        let mut s = db.connect(0).unwrap();
        s.execute("CREATE TABLE pinned (id INT)").unwrap();
        s.insert("pinned", (0..200).map(|i| row![i as i64]).collect())
            .unwrap();
    }
    let relation = ctx
        .read()
        .format(DEFAULT_SOURCE)
        .option("table", "pinned")
        .option("numPartitions", 8)
        .load()
        .unwrap();
    {
        let mut s = db.connect(2).unwrap();
        s.execute("DELETE FROM pinned WHERE id < 100").unwrap();
    }
    // Count and collect agree with the pinned snapshot, not the mutated
    // table.
    assert_eq!(relation.count().unwrap(), 200);
    assert_eq!(relation.collect().unwrap().len(), 200);
    // A new relation sees the new epoch.
    let fresh = ctx
        .read()
        .format(DEFAULT_SOURCE)
        .option("table", "pinned")
        .load()
        .unwrap();
    assert_eq!(fresh.count().unwrap(), 100);
}
