//! Distributed-tracing integration suite.
//!
//! * **Determinism**: the same seeded workload (scripted faults, one
//!   partition) run twice produces byte-identical span-tree shape
//!   digests and critical-path name sequences — span ids and wall
//!   times differ, structure must not.
//! * **Diagnostics**: orphaned and unclosed spans are detected, both
//!   on hand-crafted records and on a real save whose setup phase
//!   dies with its span open.
//! * **Quantiles**: the log-linear histogram agrees with a sorted
//!   reference — exactly under the linear cutoff, within one bucket
//!   above it.
//! * **Acceptance**: a save with one scripted mid-COPY crash yields a
//!   span tree holding both attempts with the failed one tagged, a
//!   `dc_trace_summary` row with its critical path, and
//!   `dc_histograms` P50/P99 for `s2v.phase3` matching a reference
//!   computed from the very spans that fed it.
//!
//! Tests share the process-global `obs` collector and are serialized
//! behind one mutex so span trees and histograms stay attributable.

use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use vertica_spark_fabric::prelude::*;
use vertica_spark_fabric::{connector, mppdb, obs};

use connector::ConnectorOptions;
use mppdb::FaultSite;
use obs::trace::TraceIssue;

static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn setup() -> (SparkContext, Arc<mppdb::Cluster>) {
    let db = Cluster::new(ClusterConfig::default());
    let ctx = SparkContext::new(SparkConf {
        nodes: 4,
        cores_per_node: 4,
        max_task_attempts: 6,
        thread_cap: 8,
        ..SparkConf::default()
    });
    DefaultSource::register(&ctx, db.clone());
    (ctx, db)
}

fn make_df(ctx: &SparkContext, rows: usize, partitions: usize) -> DataFrame {
    let schema = Schema::from_pairs(&[("id", DataType::Int64), ("x", DataType::Float64)]);
    let data: Vec<Row> = (0..rows).map(|i| row![i as i64, i as f64]).collect();
    ctx.create_dataframe(data, schema, partitions).unwrap()
}

/// Run one seeded save — a single partition so the attempt sequence is
/// a deterministic function of the scripted faults — and return the
/// trace's shape digest and critical-path names.
fn seeded_save(seed: u64, table: &str) -> (String, Vec<&'static str>) {
    let (ctx, db) = setup();
    // The fault script is the only seed-dependent input: `seed % 3`
    // mid-COPY crashes, each consumed by one task attempt.
    for _ in 0..(seed % 3) {
        db.faults().inject_once(FaultSite::MidCopy);
    }
    let rows = 60 + (seed as usize % 5) * 20;
    let df = make_df(&ctx, rows, 1);
    let opts = ConnectorOptions::builder(table)
        .num_partitions(1)
        .retry_max_attempts(8)
        .build()
        .unwrap();
    let report = connector::SaveRequest::new(&ctx, &db, &df, &opts)
        .mode(SaveMode::Overwrite)
        .submit()
        .unwrap();
    assert_eq!(report.rows_loaded, rows as u64);
    let spans = obs::global().trace_spans(report.trace);
    assert!(!spans.is_empty(), "trace must be retained");
    let digest = obs::trace::shape_digest(&spans);
    let path = obs::trace::critical_path(&spans)
        .into_iter()
        .map(|s| s.name)
        .collect();
    (digest, path)
}

/// Same seed ⇒ identical tree shape and critical path, across 20
/// seeds covering zero, one, and two scripted crashes.
#[test]
fn span_trees_are_deterministic_across_20_seeds() {
    let _g = lock();
    for seed in 0..20u64 {
        let (digest_a, path_a) = seeded_save(seed, &format!("det_a_{seed}"));
        let (digest_b, path_b) = seeded_save(seed, &format!("det_b_{seed}"));
        assert_eq!(digest_a, digest_b, "shape diverged for seed {seed}");
        assert_eq!(path_a, path_b, "critical path diverged for seed {seed}");
        // The digest reflects the script: a seed with crashes carries
        // failed attempts a clean seed does not.
        if seed % 3 == 0 {
            assert!(!digest_a.contains("#failed"), "seed {seed}: {digest_a}");
        } else {
            assert!(digest_a.contains("#failed"), "seed {seed}: {digest_a}");
        }
    }
}

/// Orphan detection on crafted records: a span pointing at a parent id
/// absent from the snapshot.
#[test]
fn validate_detects_orphan_spans() {
    let mk = |id: u64, parent: Option<u64>, name: &'static str| obs::SpanRecord {
        trace: obs::TraceId(7),
        span: obs::SpanId(id),
        parent: parent.map(obs::SpanId),
        name,
        start_us: 0,
        end_us: Some(10),
        node: None,
        task: None,
        attempt: 0,
        rows: 0,
        bytes: 0,
        failed: false,
        detail: String::new(),
    };
    let spans = vec![
        mk(1, None, "s2v.job"),
        mk(2, Some(1), "s2v.setup"),
        mk(3, Some(99), "db.copy"),
    ];
    let issues = obs::trace::validate(&spans);
    assert_eq!(
        issues,
        vec![TraceIssue::Orphan {
            span: obs::SpanId(3),
            name: "db.copy",
        }]
    );
}

/// A save whose setup connections are all refused dies with the setup
/// span open: the root is closed (and tagged failed) by the
/// `save_to_db` wrapper, the abandoned setup span surfaces as
/// `Unclosed`.
#[test]
fn failed_save_leaves_tagged_root_and_unclosed_setup_span() {
    let _g = lock();
    let (ctx, db) = setup();
    let df = make_df(&ctx, 50, 1);
    // One retry attempt scans every failover candidate, so refusing
    // setup outright takes attempts × nodes scripted faults.
    for _ in 0..8 {
        db.faults().inject_once(FaultSite::Connect);
    }
    let opts = ConnectorOptions::builder("refused_tgt")
        .num_partitions(1)
        .retry_max_attempts(2)
        .build()
        .unwrap();
    let err = connector::SaveRequest::new(&ctx, &db, &df, &opts)
        .mode(SaveMode::Overwrite)
        .submit();
    assert!(err.is_err(), "setup must exhaust its retry budget");

    // The failed job is the newest retained trace.
    let trace = *obs::global().trace_ids().last().unwrap();
    let spans = obs::global().trace_spans(trace);
    let root = spans.iter().find(|s| s.parent.is_none()).unwrap();
    assert_eq!(root.name, "s2v.job");
    assert!(root.failed, "root must be tagged failed");
    assert!(root.end_us.is_some(), "the wrapper closes the root");
    let issues = obs::trace::validate(&spans);
    assert!(
        issues
            .iter()
            .any(|i| matches!(i, TraceIssue::Unclosed { name, .. } if *name == "s2v.setup")),
        "setup span must be reported unclosed: {issues:?}"
    );
    // Both refused connection attempts were closed and tagged.
    let attempts: Vec<_> = spans.iter().filter(|s| s.name == "retry.attempt").collect();
    assert_eq!(attempts.len(), 2);
    assert!(attempts.iter().all(|s| s.failed && s.end_us.is_some()));
}

/// Histogram quantiles against a sorted reference over seeded values:
/// exact below the linear cutoff (64), within one log-linear bucket
/// (1/64 relative) above it.
#[test]
fn histogram_quantiles_match_sorted_reference() {
    let mut rng = StdRng::seed_from_u64(0xfab);
    let mut small = Vec::new();
    let mut wide = Vec::new();
    for _ in 0..500 {
        small.push(rng.random_range(1u64..64));
        wide.push(rng.random_range(1u64..2_000_000));
    }
    let reference = |sorted: &[u64], q: f64| {
        let rank = ((sorted.len() as f64) * q).ceil().max(1.0) as usize;
        sorted[rank - 1]
    };
    for (values, exact) in [(small, true), (wide, false)] {
        let mut h = obs::Histo::new();
        let mut sorted = values.clone();
        for v in values {
            h.record(v);
        }
        sorted.sort_unstable();
        for q in [0.5, 0.95, 0.99] {
            let truth = reference(&sorted, q);
            let got = h.quantile(q);
            if exact {
                assert_eq!(got, truth, "q={q}");
            } else {
                assert!(got >= truth, "q={q}: {got} < {truth}");
                assert!(
                    got <= truth + truth / 64 + 1,
                    "q={q}: {got} beyond bucket bound of {truth}"
                );
            }
        }
    }
}

/// The end-to-end acceptance scenario: a chaos-seeded save with one
/// mid-COPY crash.
#[test]
fn crashed_copy_save_yields_tagged_tree_summary_and_exact_quantiles() {
    let _g = lock();
    let (ctx, db) = setup();
    let df = make_df(&ctx, 120, 1);
    db.faults().inject_once(FaultSite::MidCopy);
    let opts = ConnectorOptions::builder("acceptance_tgt")
        .num_partitions(1)
        .retry_max_attempts(8)
        .build()
        .unwrap();
    let report = connector::SaveRequest::new(&ctx, &db, &df, &opts)
        .mode(SaveMode::Overwrite)
        .submit()
        .unwrap();
    assert_eq!(report.rows_loaded, 120);

    // Both protocol attempts are in the tree; the crashed one is
    // tagged at both the retry layer and the phase span.
    let spans = obs::global().trace_spans(report.trace);
    let attempts: Vec<_> = spans.iter().filter(|s| s.name == "retry.attempt").collect();
    assert!(
        attempts.len() >= 2,
        "crash and recovery: {}",
        attempts.len()
    );
    assert!(attempts.iter().any(|s| s.failed));
    assert!(attempts.iter().any(|s| !s.failed));
    let phase1: Vec<_> = spans.iter().filter(|s| s.name == "s2v.phase1").collect();
    assert!(phase1.iter().any(|s| s.failed), "crashed COPY phase tagged");
    assert!(phase1.iter().any(|s| !s.failed), "recovered COPY present");
    // The report renders the same tree.
    let profile = report.profile();
    assert!(profile.contains("s2v.job"), "{profile}");
    assert!(profile.contains("FAILED"), "{profile}");
    assert!(profile.contains("critical path"), "{profile}");

    // dc_trace_summary carries the job's critical path.
    let mut session = db.connect(0).unwrap();
    let summary = session
        .query(&QuerySpec::scan("dc_trace_summary"))
        .unwrap()
        .into_rows();
    let row = summary
        .iter()
        .find(|r| r.values()[0] == Value::Int64(report.trace.0 as i64))
        .expect("summary row for the save's trace");
    let Value::Varchar(path) = &row.values()[7] else {
        panic!("critical_path must be text: {row:?}")
    };
    assert!(!path.is_empty());
    assert!(path.contains('%'), "attributed percentages: {path}");

    // dc_histograms must agree exactly with a reference histogram fed
    // by the same durations the spans recorded — every closed
    // s2v.phase3 span in the retained store, since span_finish is the
    // histogram's only writer for that name.
    let mut reference = obs::Histo::new();
    for s in obs::global().all_spans() {
        if s.name == "s2v.phase3" && s.end_us.is_some() {
            reference.record(s.dur_us());
        }
    }
    assert!(reference.count() > 0);
    let histos = session
        .query(&QuerySpec::scan("dc_histograms"))
        .unwrap()
        .into_rows();
    let row = histos
        .iter()
        .find(|r| r.values()[0] == Value::Varchar("s2v.phase3".to_string()))
        .expect("s2v.phase3 histogram row");
    assert_eq!(row.values()[1], Value::Int64(reference.count() as i64));
    assert_eq!(
        row.values()[5],
        Value::Int64(reference.quantile(0.5) as i64)
    );
    assert_eq!(
        row.values()[7],
        Value::Int64(reference.quantile(0.99) as i64)
    );
}
