//! Tuple Mover gate: moveout and mergeout must be invisible to every
//! reader at every epoch, mover-created containers must carry the same
//! statistics COPY-created ones do, every operation must surface in
//! `dc_tuple_mover` / `tm.*`, and the background mover thread must run
//! with zero lock-order cycles while DML and scans hammer the table.

use std::sync::Mutex;
use std::time::Duration;

mod common;

use vertica_spark_fabric::prelude::*;
use vertica_spark_fabric::{mppdb, obs};

use mppdb::QuerySpec;

static GATE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    GATE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A cluster whose commit path never auto-moves rows: every moveout in
/// these tests is one this file triggered, so the differential
/// assertions know exactly when storage may change shape.
fn cluster() -> std::sync::Arc<mppdb::Cluster> {
    Cluster::new(ClusterConfig {
        moveout_threshold: usize::MAX,
        ..ClusterConfig::default()
    })
}

/// Trickle `batches` INSERT batches of `per_batch` sequential rows into
/// a fresh `t`, returning the next unused id.
fn trickle(s: &mut Session, batches: usize, per_batch: usize) -> i64 {
    s.execute("CREATE TABLE t (id INT NOT NULL, x FLOAT) SEGMENTED BY HASH(id) ALL NODES")
        .unwrap();
    let mut next = 0i64;
    for _ in 0..batches {
        let values: Vec<String> = (0..per_batch)
            .map(|i| format!("({}, {}.5)", next + i as i64, next + i as i64))
            .collect();
        s.execute(&format!("INSERT INTO t VALUES {}", values.join(", ")))
            .unwrap();
        next += per_batch as i64;
    }
    next
}

/// The core differential: scans — full, filtered, and epoch-pinned —
/// are byte-identical before, between, and after moveout and mergeout,
/// deletes included.
#[test]
fn mover_passes_are_invisible_to_scans_at_every_epoch() {
    let _g = lock();
    let db = cluster();
    let mut s = db.connect(0).unwrap();
    s.execute("CREATE TABLE t (id INT NOT NULL, x FLOAT) SEGMENTED BY HASH(id) ALL NODES")
        .unwrap();
    // Trickle with a moveout between batches: half the rows end up as
    // small same-stratum ROS containers (mergeout's diet), the rest
    // stay in the WOS (moveout's).
    let mut next = 0i64;
    for batch in 0..6 {
        let values: Vec<String> = (0..40)
            .map(|i| format!("({}, {}.5)", next + i as i64, next + i as i64))
            .collect();
        s.execute(&format!("INSERT INTO t VALUES {}", values.join(", ")))
            .unwrap();
        next += 40;
        if batch < 4 {
            // Four same-sized containers: enough for a full
            // same-stratum mergeout run under the default policy.
            assert!(db.moveout_all() > 0, "batch {batch} must drain to ROS");
        }
    }

    // Pin the pre-delete snapshot, then delete a slice of rows spanning
    // both moved containers and the live WOS.
    let pre_delete_epoch = db.current_epoch();
    s.execute("DELETE FROM t WHERE id >= 100 AND id < 140")
        .unwrap();

    let probes = |db: &std::sync::Arc<mppdb::Cluster>| {
        let mut s = db.connect(0).unwrap();
        [
            QuerySpec::scan("t"),
            QuerySpec::scan("t").filter(Expr::col("id").lt(Expr::lit(60i64))),
            QuerySpec::scan("t").at_epoch(pre_delete_epoch),
        ]
        .map(|spec| s.query(&spec).unwrap())
    };
    let baseline = probes(&db);
    assert_eq!(baseline[0].rows.len(), 200, "240 inserted minus 40 deleted");
    assert_eq!(
        baseline[2].rows.len(),
        240,
        "pinned epoch predates the delete"
    );

    // Interleave moveout and mergeout, probing after every step. Each
    // pass may reshape storage (WOS drained, containers rewritten), but
    // no reader at any epoch may see rows, order, or bytes change.
    for step in 0..4 {
        if step % 2 == 0 {
            db.moveout_all();
        } else {
            db.mergeout_all();
        }
        let now = probes(&db);
        for (i, (before, after)) in baseline.iter().zip(&now).enumerate() {
            assert_eq!(before.rows, after.rows, "step {step}, probe {i}: rows");
            assert_eq!(
                before.wire_bytes(),
                after.wire_bytes(),
                "step {step}, probe {i}: wire volume"
            );
        }
    }

    // The mover actually did something — this differential is not
    // vacuously passing over a WOS-only table.
    let ops = db.mover_ops();
    assert!(
        ops.iter().any(|o| o.op == "moveout"),
        "no moveout ran: {ops:?}"
    );
    assert!(
        ops.iter().any(|o| o.op == "mergeout"),
        "no mergeout ran: {ops:?}"
    );
}

/// Mergeout's compaction policy: trickled WOS batches moved out one by
/// one leave a trail of small same-stratum containers; one mergeout
/// collapses them and scans still see every row exactly once.
#[test]
fn mergeout_compacts_trickle_containers() {
    let _g = lock();
    let db = cluster();
    let mut s = db.connect(0).unwrap();
    s.execute("CREATE TABLE t (id INT NOT NULL, x FLOAT) SEGMENTED BY HASH(id) ALL NODES")
        .unwrap();
    // Move out after every batch: one small ROS container per batch.
    let mut next = 0i64;
    for _ in 0..8 {
        let values: Vec<String> = (0..32).map(|i| format!("({}, 0.25)", next + i)).collect();
        s.execute(&format!("INSERT INTO t VALUES {}", values.join(", ")))
            .unwrap();
        next += 32;
        assert!(db.moveout_all() > 0, "each batch must drain to ROS");
    }

    let containers = |db: &std::sync::Arc<mppdb::Cluster>| {
        let mut s = db.connect(0).unwrap();
        let rows = s
            .execute("SELECT * FROM dc_column_stats")
            .unwrap()
            .rows()
            .unwrap();
        // Distinct (node, container) pairs for table t.
        let mut ids: Vec<(i64, i64)> = rows
            .rows
            .iter()
            .filter(|r| r.get(1) == &Value::Varchar("t".into()))
            .map(|r| (r.get(0).as_i64().unwrap(), r.get(2).as_i64().unwrap()))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    };
    let before = containers(&db);
    let merged = db.mergeout_all();
    assert!(merged > 0, "mergeout must rewrite the trickle containers");
    let after = containers(&db);
    assert!(
        after < before,
        "mergeout must shrink the container count ({before} -> {after})"
    );

    let mut ids: Vec<i64> = s
        .query(&QuerySpec::scan("t"))
        .unwrap()
        .rows
        .iter()
        .map(|r| r.get(0).as_i64().unwrap())
        .collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..next).collect::<Vec<_>>(), "every row exactly once");
}

/// The stats-parity fix: a moveout-created ROS container must carry
/// per-column statistics through the same build path COPY DIRECT uses —
/// row counts, null counts, NDV, and zone-map endpoints all present in
/// `dc_column_stats`.
#[test]
fn moveout_containers_carry_copy_grade_column_stats() {
    let _g = lock();
    let db = cluster();
    let mut s = db.connect(0).unwrap();
    trickle(&mut s, 1, 50);
    assert!(db.moveout_all() > 0);

    let stats = s
        .execute("SELECT * FROM dc_column_stats")
        .unwrap()
        .rows()
        .unwrap();
    // Schema: node, table_name, container_id, column_idx, encoding,
    // row_count, null_count, ndv, min, max.
    let t_rows: Vec<_> = stats
        .rows
        .iter()
        .filter(|r| r.get(1) == &Value::Varchar("t".into()))
        .collect();
    assert!(
        !t_rows.is_empty(),
        "moved containers must appear in dc_column_stats"
    );
    let mut id_col_min = i64::MAX;
    let mut id_col_max = i64::MIN;
    let mut rows_seen = 0;
    for r in &t_rows {
        assert!(r.get(5).as_i64().unwrap() > 0, "row_count present");
        assert_eq!(r.get(6).as_i64().unwrap(), 0, "no nulls inserted");
        assert!(r.get(7).as_i64().unwrap() > 0, "ndv present");
        if r.get(3).as_i64().unwrap() == 0 {
            // The id column: zone-map endpoints are real values, and the
            // per-node ranges must tile 0..50.
            rows_seen += r.get(5).as_i64().unwrap();
            let min: i64 = r.get(8).as_str().unwrap().parse().unwrap();
            let max: i64 = r.get(9).as_str().unwrap().parse().unwrap();
            assert!(min <= max);
            id_col_min = id_col_min.min(min);
            id_col_max = id_col_max.max(max);
        }
    }
    assert_eq!(rows_seen, 50, "every moved row is covered by a container");
    assert_eq!((id_col_min, id_col_max), (0, 49), "zone maps span the data");
}

/// Every mover operation surfaces in the `dc_tuple_mover` system table
/// with consistent fields, and the `tm.*` counters move with it.
#[test]
fn dc_tuple_mover_and_counters_record_operations() {
    let _g = lock();
    let db = cluster();
    let before = obs::global().snapshot();
    let mut s = db.connect(0).unwrap();
    trickle(&mut s, 4, 32);
    let moved = db.moveout_all();
    assert!(moved > 0);
    let report = db.mover_pass();
    assert!(
        !report.crashed && report.sheds == 0,
        "clean pass: {report:?}"
    );

    let rows = s
        .execute("SELECT * FROM dc_tuple_mover")
        .unwrap()
        .rows()
        .unwrap();
    // Schema: seq, op, node, table_name, rows, containers_in,
    // containers_out, epoch, dur_us.
    assert!(!rows.rows.is_empty(), "mover ops must be queryable");
    let mut seqs = Vec::new();
    let mut moveout_rows = 0i64;
    for r in &rows.rows {
        seqs.push(r.get(0).as_i64().unwrap());
        let op = r.get(1).as_str().unwrap();
        assert!(op == "moveout" || op == "mergeout", "op {op}");
        if op == "moveout" && r.get(3) == &Value::Varchar("t".into()) {
            moveout_rows += r.get(4).as_i64().unwrap();
            assert_eq!(r.get(5).as_i64().unwrap(), 0, "moveout consumes the WOS");
            assert_eq!(r.get(6).as_i64().unwrap(), 1, "moveout emits one container");
        }
    }
    assert_eq!(
        moveout_rows as usize, moved,
        "op log rows match moveout_all"
    );
    let mut sorted = seqs.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(seqs, sorted, "seq is monotonic and unique");

    let delta = obs::global().snapshot().counters_since(&before);
    assert_eq!(
        delta.get("tm.rows_moved").copied().unwrap_or(0),
        moved as u64,
        "tm.rows_moved: {delta:?}"
    );
    assert!(
        delta.get("tm.moveout_runs").copied().unwrap_or(0) >= 1,
        "tm.moveout_runs: {delta:?}"
    );
}

/// The deadlock gate with the mover in play: a background mover thread
/// ticking at full speed while a writer inserts, deletes, and scans
/// must finish with the lock-order witness reporting zero cycles, and
/// the data exactly once. This pins the mover's lock discipline (table
/// lock shared, stores.write() after, release before op-log) against
/// every lock the DML path takes.
#[test]
fn background_mover_with_concurrent_dml_has_zero_lock_cycles() {
    let _g = lock();
    let db = cluster();
    let mut s = db.connect(0).unwrap();
    s.execute("CREATE TABLE t (id INT NOT NULL, x FLOAT) SEGMENTED BY HASH(id) ALL NODES")
        .unwrap();

    db.start_mover(Duration::from_millis(1));
    let mut next = 0i64;
    for round in 0..30 {
        let values: Vec<String> = (0..16).map(|i| format!("({}, 1.0)", next + i)).collect();
        s.execute(&format!("INSERT INTO t VALUES {}", values.join(", ")))
            .unwrap();
        next += 16;
        if round % 5 == 4 {
            // Deletes take the exclusive table lock the mover's shared
            // lock must coexist with.
            s.execute(&format!("DELETE FROM t WHERE id = {}", next - 1))
                .unwrap();
        }
        let count = s.query(&QuerySpec::scan("t").count()).unwrap().count;
        assert_eq!(count, next as u64 - (round as u64 + 1) / 5, "round {round}");
        std::thread::sleep(Duration::from_millis(1));
    }
    db.stop_mover();

    // Exactly once, whatever the mover got up to in the background.
    let deleted: Vec<i64> = (0..30 / 5).map(|k| (k + 1) * 5 * 16 - 1).collect();
    let mut ids: Vec<i64> = s
        .query(&QuerySpec::scan("t"))
        .unwrap()
        .rows
        .iter()
        .map(|r| r.get(0).as_i64().unwrap())
        .collect();
    ids.sort_unstable();
    let expected: Vec<i64> = (0..next).filter(|i| !deleted.contains(i)).collect();
    assert_eq!(ids, expected);

    if vertica_spark_fabric::parking_lot::witness::active() {
        use vertica_spark_fabric::parking_lot::witness;
        assert_eq!(
            witness::cycle_count(),
            0,
            "mover + DML produced a lock-order cycle: {:?}",
            witness::snapshot().cycles
        );
    }
}

/// Static/dynamic lock-graph cross-check over the tuple-mover paths:
/// trickle, moveout, and mergeout, then every runtime-witnessed
/// lock-order edge must be statically derivable (see tests/common).
#[test]
fn witnessed_lock_edges_are_statically_derivable() {
    let _g = lock();
    let db = cluster();
    let mut s = db.connect(0).unwrap();
    trickle(&mut s, 4, 40);
    db.moveout_all();
    db.mergeout_all();
    common::assert_witness_subgraph("tuple_mover");
}
