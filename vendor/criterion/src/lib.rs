//! Offline stand-in for the `criterion` crate.
//!
//! Provides the `criterion_group!` / `criterion_main!` /
//! `bench_function` / `iter` / `iter_batched` surface this workspace's
//! benches use. Measurement is deliberately simple: a short warm-up,
//! then timed batches until a wall-clock budget is spent, reporting
//! mean time per iteration. No statistics, plots, or CLI parsing —
//! just comparable numbers from `cargo bench`.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// How per-iteration setup cost relates to the routine (accepted for
/// API compatibility; all variants measure the same way here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// The benchmark registry/driver.
pub struct Criterion {
    /// Wall-clock budget spent measuring each benchmark.
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: self.measurement_time,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mean = if b.iters > 0 {
            b.elapsed / b.iters as u32
        } else {
            Duration::ZERO
        };
        println!("bench {id:<40} {:>12.3?}/iter ({} iters)", mean, b.iters);
        self
    }
}

/// Timer handle passed to the measured closure.
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up iteration, not counted.
        std_black_box(routine());
        while self.elapsed < self.budget {
            let start = Instant::now();
            std_black_box(routine());
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std_black_box(routine(setup()));
        while self.elapsed < self.budget {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Group benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_counts_iterations() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut n = 0u64;
        c.bench_function("noop", |b| b.iter(|| n += 1));
        assert!(n > 1, "routine should run more than the warm-up");
        let mut m = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(|| 2u64, |x| m += x, BatchSize::PerIteration)
        });
        assert!(m >= 4);
    }
}
