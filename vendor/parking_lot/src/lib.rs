//! Offline stand-in for the `parking_lot` crate.
//!
//! Build environments for this repository have no access to a crate
//! registry, so the workspace vendors the exact subset of parking_lot
//! it uses, implemented over `std::sync`. Semantics match parking_lot
//! where they differ from std:
//!
//! * no lock poisoning — a panic while holding a lock does not poison
//!   it for other threads;
//! * `Condvar::wait` takes the guard by `&mut` rather than by value;
//! * `Condvar::wait_until` takes an [`std::time::Instant`] deadline.

use std::fmt;
use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};
use std::panic::Location;
use std::time::Instant;

pub mod witness;

/// Address of a lock's protected value: the per-instance identity the
/// lock-order witness keys its held-lock stacks on.
fn data_addr<T: ?Sized>(value: &T) -> usize {
    (value as *const T).cast::<()>() as usize
}

/// A mutual exclusion primitive (non-poisoning).
pub struct Mutex<T: ?Sized> {
    /// Creation site: the witness groups locks into classes by it.
    site: &'static Location<'static>,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    #[track_caller]
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            site: Location::caller(),
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        witness::on_acquire(data_addr(&*guard), self.site);
        MutexGuard {
            inner: ManuallyDrop::new(guard),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let guard = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        witness::on_acquire(data_addr(&*guard), self.site);
        Some(MutexGuard {
            inner: ManuallyDrop::new(guard),
        })
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard for [`Mutex`]. Wraps the std guard in `ManuallyDrop` so
/// [`Condvar::wait`] can temporarily take ownership through `&mut`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: ManuallyDrop<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        witness::on_release(data_addr(&**self));
        // SAFETY: the guard is only taken transiently inside
        // `Condvar::wait*`, which always restores it before returning;
        // here at drop time it is therefore always present.
        unsafe { ManuallyDrop::drop(&mut self.inner) }
    }
}

/// A reader-writer lock (non-poisoning).
pub struct RwLock<T: ?Sized> {
    /// Creation site: the witness groups locks into classes by it.
    site: &'static Location<'static>,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    #[track_caller]
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            site: Location::caller(),
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = self.inner.read().unwrap_or_else(|e| e.into_inner());
        witness::on_acquire(data_addr(&*guard), self.site);
        RwLockReadGuard { inner: guard }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = self.inner.write().unwrap_or_else(|e| e.into_inner());
        witness::on_acquire(data_addr(&*guard), self.site);
        RwLockWriteGuard { inner: guard }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        witness::on_release(data_addr(&**self));
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        witness::on_release(data_addr(&**self));
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable whose wait methods borrow the guard mutably
/// (parking_lot style) instead of consuming it.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // The lock is released for the duration of the wait; tell the
        // witness so the held-lock stack reflects reality.
        let addr = data_addr(&**guard);
        let class = witness::on_wait_release(addr);
        // SAFETY: ownership of the std guard is taken for the duration
        // of the wait and restored immediately after; `unwrap_or_else`
        // ensures we get a guard back even if another thread panicked.
        let inner = unsafe { ManuallyDrop::take(&mut guard.inner) };
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = ManuallyDrop::new(inner);
        witness::on_wait_reacquire(addr, class);
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        let addr = data_addr(&**guard);
        let class = witness::on_wait_release(addr);
        // SAFETY: as in `wait` — the guard is restored before returning.
        let inner = unsafe { ManuallyDrop::take(&mut guard.inner) };
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => e.into_inner(),
        };
        guard.inner = ManuallyDrop::new(inner);
        witness::on_wait_reacquire(addr, class);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*p2;
            *lock.lock() = true;
            cvar.notify_one();
        });
        let (lock, cvar) = &*pair;
        let mut done = lock.lock();
        while !*done {
            cvar.wait(&mut done);
        }
        assert!(*done);
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let lock = Mutex::new(());
        let cvar = Condvar::new();
        let mut g = lock.lock();
        let res = cvar.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
