//! A process-wide lock-order witness (lockdep-style dynamic analysis).
//!
//! Debug/test builds instrument every [`crate::Mutex`] and
//! [`crate::RwLock`] acquisition. Locks are grouped into *classes* by
//! their creation site (`file:line`, captured with `#[track_caller]`),
//! and each thread keeps a stack of the locks it currently holds. When
//! a thread acquires lock `B` while holding lock `A`, the witness
//! records the directed edge `class(A) → class(B)`. Two findings fall
//! out of the edge graph:
//!
//! * **cycles** — if the graph ever contains `A → … → B` and `B → … →
//!   A`, two threads interleaving those paths can deadlock, even if no
//!   run has deadlocked yet;
//! * **sleep hazards** — the fault injector calls [`note_sleep`]
//!   before an injected delay; sleeping while holding any instrumented
//!   lock stretches that lock's hold time by the injected latency and
//!   is reported as a hazard.
//!
//! Findings are *pulled*, never pushed: the mppdb system-table layer
//! folds [`edge_count`] / [`cycle_count`] / [`hazard_count`] into
//! `dc_counters` as the `lockwitness.*` rows and materialises
//! [`snapshot`] as `dc_lock_edges`, and the chaos/resilience gates read
//! the same accessors directly. A push callback (bump an `obs` counter
//! from inside [`on_acquire`]) would run collector code while the
//! freshly acquired guard is still held — if that guard *is* a
//! collector lock, the callback re-enters the collector and
//! self-deadlocks — so the witness deliberately has no reporter hook.
//!
//! The witness's own bookkeeping uses `std::sync` primitives directly
//! and its registry lock is a leaf (nothing else is acquired while it
//! is held), so it never instruments or deadlocks itself. In release
//! builds ([`active`] is false) every hook is a branch on a constant.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::Location;
use std::sync::{Mutex, OnceLock};

/// Whether the witness records anything in this build.
pub const fn active() -> bool {
    cfg!(debug_assertions)
}

/// One thread's record of a lock it currently holds.
#[derive(Clone, Copy)]
struct Held {
    /// Address of the protected value: stable per lock instance.
    addr: usize,
    class: u32,
}

struct Registry {
    /// Class id → "file:line" creation site.
    classes: Vec<String>,
    class_by_site: HashMap<(&'static str, u32, u32), u32>,
    /// (holder class, acquired class) → times observed.
    edges: HashMap<(u32, u32), u64>,
    /// Adjacency over distinct non-self edges, for cycle detection.
    adj: HashMap<u32, Vec<u32>>,
    /// Each detected cycle as the class path that closes it.
    cycles: Vec<Vec<u32>>,
    /// (held class, sleep tag) → times a sleep ran under that lock.
    hazards: HashMap<(u32, &'static str), u64>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            classes: Vec::new(),
            class_by_site: HashMap::new(),
            edges: HashMap::new(),
            adj: HashMap::new(),
            cycles: Vec::new(),
            hazards: HashMap::new(),
        })
    })
}

thread_local! {
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    /// Per-thread creation-site → class-id cache, so uncontended
    /// acquisitions never touch the global registry.
    static CLASS_CACHE: RefCell<HashMap<(usize, u32, u32), u32>> =
        RefCell::new(HashMap::new());
}

fn lock_registry(reg: &'static Mutex<Registry>) -> std::sync::MutexGuard<'static, Registry> {
    reg.lock().unwrap_or_else(|e| e.into_inner())
}

fn class_id(site: &'static Location<'static>) -> u32 {
    let key = (site.file().as_ptr() as usize, site.line(), site.column());
    CLASS_CACHE.with(|cache| {
        if let Some(&id) = cache.borrow().get(&key) {
            return id;
        }
        let mut reg = lock_registry(registry());
        let gkey = (site.file(), site.line(), site.column());
        let next = reg.classes.len() as u32;
        let id = *reg.class_by_site.entry(gkey).or_insert(next);
        if id == next {
            reg.classes.push(format!("{}:{}", site.file(), site.line()));
        }
        drop(reg);
        cache.borrow_mut().insert(key, id);
        id
    })
}

/// Depth-first search for a path `from → … → to` over recorded edges.
/// Returns the class path including both endpoints when one exists.
fn find_path(reg: &Registry, from: u32, to: u32) -> Option<Vec<u32>> {
    let mut stack = vec![vec![from]];
    let mut visited = vec![false; reg.classes.len()];
    while let Some(path) = stack.pop() {
        let last = *path.last().unwrap_or(&from);
        if last == to {
            return Some(path);
        }
        if visited[last as usize] {
            continue;
        }
        visited[last as usize] = true;
        for &next in reg.adj.get(&last).into_iter().flatten() {
            let mut p = path.clone();
            p.push(next);
            stack.push(p);
        }
    }
    None
}

/// Hook: `guard` for the lock created at `site`, protecting the value
/// at `addr`, was just acquired by this thread.
pub(crate) fn on_acquire(addr: usize, site: &'static Location<'static>) {
    if !active() {
        return;
    }
    let class = class_id(site);
    let holder = HELD.with(|held| {
        let mut held = held.borrow_mut();
        let top = held.last().map(|h| h.class);
        held.push(Held { addr, class });
        top
    });
    if let Some(from) = holder {
        let mut reg = lock_registry(registry());
        let count = reg.edges.entry((from, class)).or_insert(0);
        *count += 1;
        if *count == 1 && from != class {
            // A cycle exists iff the reverse direction was already
            // reachable before this edge went in.
            if let Some(mut path) = find_path(&reg, class, from) {
                path.insert(0, from);
                reg.cycles.push(path);
            }
            reg.adj.entry(from).or_default().push(class);
        }
    }
}

/// Hook: the guard for the value at `addr` was dropped by this thread.
pub(crate) fn on_release(addr: usize) {
    if !active() {
        return;
    }
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(pos) = held.iter().rposition(|h| h.addr == addr) {
            held.remove(pos);
        }
    });
}

/// Hook: a `Condvar` wait is releasing the lock at `addr` for its
/// duration. Returns the class to restore with [`on_wait_reacquire`].
pub(crate) fn on_wait_release(addr: usize) -> Option<u32> {
    if !active() {
        return None;
    }
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        held.iter()
            .rposition(|h| h.addr == addr)
            .map(|pos| held.remove(pos).class)
    })
}

/// Hook: the `Condvar` wait re-acquired the lock it released.
pub(crate) fn on_wait_reacquire(addr: usize, class: Option<u32>) {
    let Some(class) = class else { return };
    if !active() {
        return;
    }
    HELD.with(|held| held.borrow_mut().push(Held { addr, class }));
}

/// Called by fault-injection code before an injected sleep: sleeping
/// while holding an instrumented lock stretches the lock's hold time by
/// the injected latency, which turns a local slowdown into global
/// convoying — exactly the grey failure the chaos gate hunts.
pub fn note_sleep(tag: &'static str) {
    if !active() {
        return;
    }
    let top = HELD.with(|held| held.borrow().last().copied());
    let Some(top) = top else { return };
    let mut reg = lock_registry(registry());
    *reg.hazards.entry((top.class, tag)).or_insert(0) += 1;
}

/// One acquisition-order edge, resolved to creation sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeSnapshot {
    pub from_site: String,
    pub to_site: String,
    pub count: u64,
}

/// One sleep-under-lock hazard, resolved to the held lock's site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HazardSnapshot {
    pub held_site: String,
    pub tag: &'static str,
    pub count: u64,
}

/// Point-in-time copy of the witness state.
#[derive(Debug, Clone, Default)]
pub struct WitnessSnapshot {
    pub edges: Vec<EdgeSnapshot>,
    /// Each cycle as the creation-site path that closes it.
    pub cycles: Vec<Vec<String>>,
    pub hazards: Vec<HazardSnapshot>,
}

/// Copy out the recorded edges, cycles, and hazards, in stable order.
pub fn snapshot() -> WitnessSnapshot {
    if !active() {
        return WitnessSnapshot::default();
    }
    let reg = lock_registry(registry());
    let site = |id: u32| reg.classes[id as usize].clone();
    let mut edges: Vec<EdgeSnapshot> = reg
        .edges
        .iter()
        .map(|(&(from, to), &count)| EdgeSnapshot {
            from_site: site(from),
            to_site: site(to),
            count,
        })
        .collect();
    edges.sort_by(|a, b| (&a.from_site, &a.to_site).cmp(&(&b.from_site, &b.to_site)));
    let cycles = reg
        .cycles
        .iter()
        .map(|path| path.iter().map(|&id| site(id)).collect())
        .collect();
    let mut hazards: Vec<HazardSnapshot> = reg
        .hazards
        .iter()
        .map(|(&(class, tag), &count)| HazardSnapshot {
            held_site: site(class),
            tag,
            count,
        })
        .collect();
    hazards.sort_by(|a, b| (&a.held_site, a.tag).cmp(&(&b.held_site, b.tag)));
    WitnessSnapshot {
        edges,
        cycles,
        hazards,
    }
}

/// The recorded edge set in the interchange text format the static
/// analyzer's `--lock-graph` mode diffs against: one
/// `from-site<TAB>to-site<TAB>count` line per distinct edge, sorted.
/// Suites write this next to their artifacts (e.g.
/// `target/lockwitness-chaos.edges`) so the lint CLI can cross-check
/// that every witnessed edge is statically derivable.
pub fn export_edges_text() -> String {
    let snap = snapshot();
    let mut s = String::new();
    for e in &snap.edges {
        s.push_str(&e.from_site);
        s.push('\t');
        s.push_str(&e.to_site);
        s.push('\t');
        s.push_str(&e.count.to_string());
        s.push('\n');
    }
    s
}

/// Number of distinct lock classes (creation sites) registered.
pub fn class_count() -> u64 {
    if !active() {
        return 0;
    }
    lock_registry(registry()).classes.len() as u64
}

/// Number of distinct acquisition-order edges recorded.
pub fn edge_count() -> u64 {
    if !active() {
        return 0;
    }
    lock_registry(registry()).edges.len() as u64
}

/// Number of lock-order cycles detected since start (or [`reset`]).
pub fn cycle_count() -> u64 {
    if !active() {
        return 0;
    }
    lock_registry(registry()).cycles.len() as u64
}

/// Number of distinct sleep-under-lock hazards recorded.
pub fn hazard_count() -> u64 {
    if !active() {
        return 0;
    }
    lock_registry(registry()).hazards.len() as u64
}

/// Clear recorded edges, cycles, and hazards (classes survive so
/// cached class ids stay valid). Test-only hygiene; live held-lock
/// stacks on other threads are untouched.
pub fn reset() {
    if !active() {
        return;
    }
    let mut reg = lock_registry(registry());
    reg.edges.clear();
    reg.adj.clear();
    reg.cycles.clear();
    reg.hazards.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// The witness registry is process-global and other tests in this
    /// binary take locks too, so every assertion filters to this
    /// test's own creation sites (matched by `file:line` suffix)
    /// instead of asserting global totals.
    fn site_tag(line: u32) -> String {
        format!("witness.rs:{line}")
    }

    fn edge_between(from_line: u32, to_line: u32) -> Option<EdgeSnapshot> {
        let (from, to) = (site_tag(from_line), site_tag(to_line));
        snapshot()
            .edges
            .into_iter()
            .find(|e| e.from_site.ends_with(&from) && e.to_site.ends_with(&to))
    }

    #[test]
    fn nested_acquisition_records_an_edge_and_no_cycle() {
        let outer_line = line!() + 1;
        let outer = Arc::new(crate::Mutex::new(0u32));
        let inner_line = line!() + 1;
        let inner = Arc::new(crate::Mutex::new(0u32));
        for _ in 0..2 {
            let _a = outer.lock();
            let _b = inner.lock();
        }
        // Same order twice: the count grows, the edge stays unique.
        let edge = edge_between(outer_line, inner_line)
            .unwrap_or_else(|| panic!("missing edge {outer_line}->{inner_line}"));
        assert!(edge.count >= 2, "repeated nesting should count: {edge:?}");
        let tag = site_tag(outer_line);
        for cycle in &snapshot().cycles {
            assert!(
                !cycle.iter().any(|s| s.ends_with(&tag)),
                "consistent ordering must not report a cycle: {cycle:?}"
            );
        }
    }

    #[test]
    fn inverted_acquisition_order_reports_a_cycle() {
        let a_line = line!() + 1;
        let a = Arc::new(crate::Mutex::new('a'));
        let b_line = line!() + 1;
        let b = Arc::new(crate::Mutex::new('b'));
        // Seeded two-thread schedule, serialized so it cannot actually
        // deadlock: thread 1 takes A then B and fully finishes before
        // thread 2 takes B then A. The *order* inversion is still
        // recorded and must be flagged as a potential deadlock.
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        std::thread::spawn(move || {
            let _ga = a1.lock();
            let _gb = b1.lock();
        })
        .join()
        .unwrap();
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        std::thread::spawn(move || {
            let _gb = b2.lock();
            let _ga = a2.lock();
        })
        .join()
        .unwrap();
        let (tag_a, tag_b) = (site_tag(a_line), site_tag(b_line));
        assert!(
            snapshot().cycles.iter().any(|path| {
                path.iter().any(|s| s.ends_with(&tag_a)) && path.iter().any(|s| s.ends_with(&tag_b))
            }),
            "A→B then B→A inversion must be detected as a cycle over both sites"
        );
    }

    #[test]
    fn sequential_acquisitions_record_no_edges() {
        let rw_line = line!() + 1;
        let rw = Arc::new(crate::RwLock::new(1u8));
        let m_line = line!() + 1;
        let m = Arc::new(crate::Mutex::new(false));
        {
            let _r = rw.read();
            let _g = m.lock();
        }
        // The guards dropped, so the held stack is empty again: these
        // bare acquisitions must not chain onto leftover state.
        drop(m.lock());
        drop(rw.write());
        assert!(
            edge_between(m_line, rw_line).is_none(),
            "sequential (non-nested) acquisitions must not record an edge"
        );
        assert!(
            edge_between(rw_line, m_line).is_some(),
            "the genuinely nested read-then-lock pair should be recorded"
        );
    }

    #[test]
    fn sleeping_with_a_lock_held_is_a_hazard() {
        let m = crate::Mutex::new(());
        note_sleep("witness_test_unlocked");
        let snap = snapshot();
        assert!(
            !snap
                .hazards
                .iter()
                .any(|h| h.tag == "witness_test_unlocked"),
            "no hazard without a held lock"
        );
        let _g = m.lock();
        note_sleep("witness_test_locked");
        let snap = snapshot();
        assert!(
            snap.hazards
                .iter()
                .any(|h| h.tag == "witness_test_locked" && h.count >= 1),
            "sleep under a held lock must be recorded: {:?}",
            snap.hazards
        );
    }
}
