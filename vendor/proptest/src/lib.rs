//! Offline stand-in for the `proptest` crate.
//!
//! Build environments for this repository have no registry access, so
//! this vendored crate reimplements the subset of proptest the test
//! suite uses: the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_flat_map` / `prop_filter` / `prop_recursive` / `boxed`,
//! [`arbitrary::any`], [`collection::vec`], [`option::of`], string
//! pattern strategies, tuple and `Range` strategies, and the
//! `proptest!` / `prop_assert*!` / `prop_oneof!` macros.
//!
//! The one deliberate simplification: **no shrinking**. Failing cases
//! report the case number and message; inputs are deterministic per
//! test (seeded from the test's name), so failures reproduce exactly.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use std::fmt;

    /// Deterministic source of randomness for generation.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeded from the owning test's name, so every test draws an
        /// independent but reproducible stream.
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// A failed property within a test case (from `prop_assert*!`).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Runner configuration; only `cases` is meaningful here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
        /// Accepted for API compatibility; shrinking is not implemented,
        /// so this is never consulted.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: 96,
                max_shrink_iters: 0,
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking — a
    /// strategy is just a composable random generator.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                f,
            }
        }

        /// Recursive strategies: at each of `depth` levels, generate
        /// either a leaf (`self`) or one application of `recurse` over
        /// the level below. `_desired_size` and `_expected_branch_size`
        /// are accepted for API compatibility and ignored.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Clone + 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let mut strat = self.clone().boxed();
            for _ in 0..depth {
                strat = Union::new(vec![self.clone().boxed(), recurse(strat).boxed()]).boxed();
            }
            strat
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> BoxedStrategy<T> {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            // Rejection sampling; the call sites filter rare outliers
            // (e.g. non-finite floats), so exhaustion means the filter
            // is effectively unsatisfiable.
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter {:?} rejected 10000 candidates", self.reason);
        }
    }

    /// Uniform choice between heterogeneous strategies of one value
    /// type (what `prop_oneof!` builds).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Union<T> {
            Union(self.0.clone())
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.random_range(0..self.0.len());
            self.0[i].generate(rng)
        }
    }

    /// `Vec<S>` generates one value per element strategy — used for
    /// "one column strategy per field" row generators.
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    /// String pattern strategies: a `&str` is interpreted as a tiny
    /// regex subset — a sequence of atoms (`.`, `[class]` with ranges
    /// and `\`-escapes, or a literal character), each with an optional
    /// `{n}` / `{a,b}` repetition. This covers the patterns the test
    /// suite uses (e.g. `".{0,40}"`); anything unparseable is treated
    /// as a literal.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a character class, wildcard, or literal.
            let alphabet: Vec<char> = match chars[i] {
                '[' => {
                    let close = match chars[i + 1..].iter().position(|&c| c == ']') {
                        Some(off) => i + 1 + off,
                        None => {
                            out.push('[');
                            i += 1;
                            continue;
                        }
                    };
                    let class = expand_class(&chars[i + 1..close]);
                    i = close + 1;
                    class
                }
                '.' => {
                    i += 1;
                    // Printable ASCII, as a stand-in for "any char".
                    (32u8..127).map(char::from).collect()
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // Optional repetition suffix.
            let (lo, hi) = match parse_repeat(&chars, i) {
                Some((lo, hi, next)) => {
                    i = next;
                    (lo, hi)
                }
                None => (1, 1),
            };
            let n = if lo == hi {
                lo
            } else {
                rng.random_range(lo..hi + 1)
            };
            for _ in 0..n {
                out.push(alphabet[rng.random_range(0..alphabet.len())]);
            }
        }
        out
    }

    fn expand_class(body: &[char]) -> Vec<char> {
        let mut set = Vec::new();
        let mut i = 0;
        while i < body.len() {
            match body[i] {
                '\\' if i + 1 < body.len() => {
                    set.push(body[i + 1]);
                    i += 2;
                }
                c if i + 2 < body.len() && body[i + 1] == '-' => {
                    for x in c..=body[i + 2] {
                        set.push(x);
                    }
                    i += 3;
                }
                c => {
                    set.push(c);
                    i += 1;
                }
            }
        }
        if set.is_empty() {
            set.push('?');
        }
        set
    }

    /// Parse `{n}` or `{a,b}` at position `i`; returns `(lo, hi, next)`.
    fn parse_repeat(chars: &[char], i: usize) -> Option<(usize, usize, usize)> {
        if chars.get(i) != Some(&'{') {
            return None;
        }
        let close = i + chars[i..].iter().position(|&c| c == '}')?;
        let body: String = chars[i + 1..close].iter().collect();
        let (lo, hi) = match body.split_once(',') {
            Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
            None => {
                let n = body.trim().parse().ok()?;
                (n, n)
            }
        };
        Some((lo, hi, close + 1))
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait ArbitraryValue {
        fn random(rng: &mut TestRng) -> Self;
    }

    impl ArbitraryValue for bool {
        fn random(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl ArbitraryValue for $t {
                fn random(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for f64 {
        fn random(rng: &mut TestRng) -> f64 {
            // Arbitrary bit patterns: exercises NaN/infinity handling,
            // which call sites explicitly filter when unwanted.
            f64::from_bits(rng.next_u64())
        }
    }

    impl ArbitraryValue for f32 {
        fn random(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::random(rng)
        }
    }

    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// Acceptable size arguments for [`vec`].
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.random_range(*self.start()..*self.end() + 1)
        }
    }

    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore;

    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Some-biased, as in real proptest (3:1).
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run($cfg) $($rest)*);
    };
    (@run($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        ::core::panic!("property failed on case {}/{}: {}", case + 1, config.cases, e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert a boolean property inside `proptest!`, with an optional
/// formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::concat!("assertion failed: ", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{:?}` != `{:?}`: {}",
                    left,
                    right,
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left != *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    left,
                    right,
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Uniform choice between strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = TestRng::for_test("string_patterns_match_shape");
        for _ in 0..200 {
            let s = Strategy::generate(&".{0,40}", &mut rng);
            assert!(s.chars().count() <= 40);
            let t = Strategy::generate(&"[a-c]{2,4}", &mut rng);
            assert!((2..=4).contains(&t.len()), "{t:?}");
            assert!(t.chars().all(|c| ('a'..='c').contains(&c)), "{t:?}");
            let lit = Strategy::generate(&"n%", &mut rng);
            assert_eq!(lit, "n%");
        }
    }

    #[test]
    fn ranges_tuples_and_collections_compose() {
        let mut rng = TestRng::for_test("ranges_tuples_and_collections_compose");
        let strat = crate::collection::vec((0usize..5, any::<bool>()), 1..9);
        for _ in 0..100 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((1..9).contains(&v.len()));
            assert!(v.iter().all(|(n, _)| *n < 5));
        }
    }

    #[test]
    fn union_and_filter_generate_valid_values() {
        let mut rng = TestRng::for_test("union_and_filter");
        let strat = prop_oneof![Just(-1i64), (0i64..10).prop_filter("even", |v| v % 2 == 0),];
        let mut saw_neg = false;
        let mut saw_even = false;
        for _ in 0..200 {
            match Strategy::generate(&strat, &mut rng) {
                -1 => saw_neg = true,
                v => {
                    assert!(v % 2 == 0 && (0..10).contains(&v));
                    saw_even = true;
                }
            }
        }
        assert!(saw_neg && saw_even);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_binds_patterns((a, b) in (0usize..10, 0usize..10), flag in any::<bool>()) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(flag, flag, "tautology with message {}", a);
            prop_assert_ne!(a, a + 1);
        }
    }
}
