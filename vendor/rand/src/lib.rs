//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset this workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], the [`RngExt`] extension trait with
//! `random_range`/`random_bool`, and [`seq::SliceRandom::shuffle`].
//! The generator is splitmix64-seeded xoshiro256++ — deterministic,
//! fast, and plenty for tests and simulation workloads (it is not
//! cryptographic, and neither are the call sites).

use std::ops::Range;

/// Low-level uniform source of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construction from a small seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic PRNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    fn sample<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self;
}

/// Uniform `u64` in `[0, n)` by widening multiply (no modulo bias worth
/// speaking of at these magnitudes).
fn below<R: RngCore + ?Sized>(n: u64, rng: &mut R) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_sample_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore + ?Sized>(range: Range<$t>, rng: &mut R) -> $t {
                assert!(range.start < range.end, "empty random_range");
                let span = (range.end as $wide).wrapping_sub(range.start as $wide) as u64;
                (range.start as $wide).wrapping_add(below(span, rng) as $wide) as $t
            }
        }
    )*};
}

impl_sample_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleUniform for f64 {
    fn sample<R: RngCore + ?Sized>(range: Range<f64>, rng: &mut R) -> f64 {
        assert!(range.start < range.end, "empty random_range");
        range.start + rng.next_f64() * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample<R: RngCore + ?Sized>(range: Range<f32>, rng: &mut R) -> f32 {
        assert!(range.start < range.end, "empty random_range");
        range.start + rng.next_f64() as f32 * (range.end - range.start)
    }
}

/// Convenience sampling methods, auto-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(range, self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.next_f64() < p
    }
}

impl<R: RngCore> RngExt for R {}

pub mod seq {
    use super::RngCore;

    /// Slice helpers; only `shuffle` is used in this workspace.
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = super::below(i as u64 + 1, rng) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..u64::MAX),
                b.random_range(0u64..u64::MAX)
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let f = rng.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.random_range(3usize..4);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
